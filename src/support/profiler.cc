// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace tyche {

namespace profiler_internal {

thread_local PhaseScratch tls_scratch{};

}  // namespace profiler_internal

const char* DispatchPhaseName(DispatchPhase phase) {
  switch (phase) {
    case DispatchPhase::kApiLockWait:
      return "api_lock_wait";
    case DispatchPhase::kShardLockWait:
      return "shard_lock_wait";
    case DispatchPhase::kEngine:
      return "engine";
    case DispatchPhase::kBackend:
      return "backend";
    case DispatchPhase::kJournal:
      return "journal";
    case DispatchPhase::kTelemetry:
      return "telemetry";
    case DispatchPhase::kOther:
      return "other";
    case DispatchPhase::kPhaseCount:
      break;
  }
  return "?";
}

namespace {

// Same bucketing as LatencyHistogram::Record: smallest i with value <= 2^i,
// saturating at the last bucket. Keeping the two identical is what makes
// "p99 within one log2 bucket" comparisons between the e2e histogram and
// the phase histograms meaningful.
size_t BucketIndex(uint64_t value) {
  if (value <= 1) {
    return 0;
  }
  return std::min<size_t>(LatencyHistogram::kBuckets - 1,
                          static_cast<size_t>(64 - __builtin_clzll(value - 1)));
}

}  // namespace

DispatchProfiler::DispatchProfiler(size_t op_count)
    : op_count_(op_count == 0 ? 1 : op_count) {}

void DispatchProfiler::set_enabled(bool enabled) {
  if (enabled) {
    std::lock_guard<std::mutex> lock(storage_mu_);
    if (cell_storage_ == nullptr) {
      const size_t total = kMetricStripes * op_count_ * kDispatchPhaseCount * kSlots;
      cell_storage_ = std::make_unique<std::atomic<uint64_t>[]>(total);
      exemplars_ = std::make_unique<ExemplarCell[]>(op_count_ * kDispatchPhaseCount);
      cells_.store(cell_storage_.get(), std::memory_order_release);
    }
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool DispatchProfiler::BeginWindow(uint64_t start_ns) {
  if (!enabled()) {
    return false;
  }
  auto& scratch = profiler_internal::tls_scratch;
  if (scratch.active) {
    return false;  // nested dispatch window: outer one keeps the thread
  }
  scratch.active = true;
  scratch.current = static_cast<uint8_t>(DispatchPhase::kOther);
  scratch.last_ns = start_ns;
  for (uint64_t& ns : scratch.ns) {
    ns = 0;
  }
  return true;
}

void DispatchProfiler::EndWindow(uint16_t op, uint64_t span, uint64_t end_ns) {
  auto& scratch = profiler_internal::tls_scratch;
  scratch.ns[scratch.current] += end_ns - scratch.last_ns;
  scratch.active = false;
  for (size_t phase = 0; phase < kDispatchPhaseCount; ++phase) {
    if (scratch.ns[phase] != 0) {
      RecordSample(op, phase, scratch.ns[phase], span, end_ns);
    }
  }
}

void DispatchProfiler::RecordDetached(uint16_t op, DispatchPhase phase, uint64_t ns,
                                      uint64_t span, uint64_t ts_ns) {
  if (ns == 0) {
    return;
  }
  RecordSample(op, static_cast<size_t>(phase), ns, span, ts_ns);
}

void DispatchProfiler::RecordSample(uint16_t op, size_t phase, uint64_t ns,
                                    uint64_t span, uint64_t ts_ns) {
  std::atomic<uint64_t>* cells = cells_.load(std::memory_order_acquire);
  if (cells == nullptr || op >= op_count_) {
    return;
  }
  size_t stripe = metrics_internal::tls_stripe_plus1;
  if (stripe == 0) {
    stripe = metrics_internal::AssignThisThreadStripe();
  }
  const size_t base = CellBase(stripe - 1, op, phase);
  cells[base + BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  cells[base + kBucketSlots].fetch_add(ns, std::memory_order_relaxed);
  ExemplarCell& exemplar = exemplars_[op * kDispatchPhaseCount + phase];
  if (ns > exemplar.max_ns.load(std::memory_order_relaxed)) [[unlikely]] {
    MaybeUpdateExemplar(exemplar, ns, span, ts_ns);
  }
}

void DispatchProfiler::MaybeUpdateExemplar(ExemplarCell& cell, uint64_t ns,
                                           uint64_t span, uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (ns <= cell.max_ns.load(std::memory_order_relaxed)) {
    return;  // lost the race to a slower sample
  }
  cell.span = span;
  cell.ts_ns = ts_ns;
  cell.max_ns.store(ns, std::memory_order_relaxed);
}

HistogramSnapshot DispatchProfiler::PhaseSnapshot(uint16_t op,
                                                  DispatchPhase phase) const {
  HistogramSnapshot snapshot;
  const std::atomic<uint64_t>* cells = cells_.load(std::memory_order_acquire);
  if (cells == nullptr || op >= op_count_ ||
      phase >= DispatchPhase::kPhaseCount) {
    return snapshot;
  }
  std::array<uint64_t, kBucketSlots> buckets{};
  uint64_t sum = 0;
  for (size_t stripe = 0; stripe < kMetricStripes; ++stripe) {
    const size_t base = CellBase(stripe, op, static_cast<size_t>(phase));
    for (size_t i = 0; i < kBucketSlots; ++i) {
      buckets[i] += cells[base + i].load(std::memory_order_relaxed);
    }
    sum += cells[base + kBucketSlots].load(std::memory_order_relaxed);
  }
  size_t last = kBucketSlots;
  while (last > 0 && buckets[last - 1] == 0) {
    --last;
  }
  for (size_t i = 0; i < last; ++i) {
    snapshot.buckets.emplace_back(LatencyHistogram::BucketUpperBound(i), buckets[i]);
    snapshot.count += buckets[i];
  }
  snapshot.sum = sum;
  return snapshot;
}

DispatchProfiler::ExemplarSample DispatchProfiler::Exemplar(
    uint16_t op, DispatchPhase phase) const {
  ExemplarSample sample;
  if (exemplars_ == nullptr || op >= op_count_ ||
      phase >= DispatchPhase::kPhaseCount) {
    return sample;
  }
  const ExemplarCell& cell =
      exemplars_[op * kDispatchPhaseCount + static_cast<size_t>(phase)];
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  sample.ns = cell.max_ns.load(std::memory_order_relaxed);
  sample.span = cell.span;
  sample.ts_ns = cell.ts_ns;
  return sample;
}

uint64_t DispatchProfiler::TotalSamples() const {
  const std::atomic<uint64_t>* cells = cells_.load(std::memory_order_acquire);
  if (cells == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (size_t stripe = 0; stripe < kMetricStripes; ++stripe) {
    for (size_t op = 0; op < op_count_; ++op) {
      for (size_t phase = 0; phase < kDispatchPhaseCount; ++phase) {
        const size_t base = CellBase(stripe, op, phase);
        for (size_t i = 0; i < kBucketSlots; ++i) {
          total += cells[base + i].load(std::memory_order_relaxed);
        }
      }
    }
  }
  return total;
}

void DispatchProfiler::Reset() {
  std::lock_guard<std::mutex> storage_lock(storage_mu_);
  std::atomic<uint64_t>* cells = cells_.load(std::memory_order_acquire);
  if (cells == nullptr) {
    return;
  }
  const size_t total = kMetricStripes * op_count_ * kDispatchPhaseCount * kSlots;
  for (size_t i = 0; i < total; ++i) {
    cells[i].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  for (size_t i = 0; i < op_count_ * kDispatchPhaseCount; ++i) {
    exemplars_[i].max_ns.store(0, std::memory_order_relaxed);
    exemplars_[i].span = 0;
    exemplars_[i].ts_ns = 0;
  }
}

namespace {

struct AttributionCell {
  uint16_t op = 0;
  DispatchPhase phase = DispatchPhase::kOther;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
};

std::vector<AttributionCell> CollectCells(const DispatchProfiler& profiler) {
  std::vector<AttributionCell> cells;
  for (size_t op = 0; op < profiler.op_count(); ++op) {
    for (size_t phase = 0; phase < kDispatchPhaseCount; ++phase) {
      const auto snapshot = profiler.PhaseSnapshot(static_cast<uint16_t>(op),
                                                   static_cast<DispatchPhase>(phase));
      if (snapshot.count == 0) {
        continue;
      }
      cells.push_back({static_cast<uint16_t>(op), static_cast<DispatchPhase>(phase),
                       snapshot.count, snapshot.sum});
    }
  }
  return cells;
}

}  // namespace

std::string ExportFoldedStacks(const DispatchProfiler& profiler,
                               const std::function<std::string(uint16_t)>& op_name) {
  std::ostringstream out;
  for (const AttributionCell& cell : CollectCells(profiler)) {
    out << op_name(cell.op) << ";" << DispatchPhaseName(cell.phase) << " "
        << cell.sum_ns << "\n";
  }
  return out.str();
}

std::string ExportAttributionTable(const DispatchProfiler& profiler,
                                   const std::function<std::string(uint16_t)>& op_name,
                                   size_t top_n) {
  std::vector<AttributionCell> cells = CollectCells(profiler);
  uint64_t grand_total = 0;
  for (const AttributionCell& cell : cells) {
    grand_total += cell.sum_ns;
  }
  std::sort(cells.begin(), cells.end(),
            [](const AttributionCell& a, const AttributionCell& b) {
              return a.sum_ns > b.sum_ns;
            });
  if (cells.size() > top_n) {
    cells.resize(top_n);
  }
  std::ostringstream out;
  out << "op;phase                                count     total_ns      mean_ns  share\n";
  for (const AttributionCell& cell : cells) {
    std::ostringstream label;
    label << op_name(cell.op) << ";" << DispatchPhaseName(cell.phase);
    const double share =
        grand_total == 0 ? 0.0
                         : 100.0 * static_cast<double>(cell.sum_ns) /
                               static_cast<double>(grand_total);
    out << std::left << std::setw(36) << label.str() << std::right << std::setw(9)
        << cell.count << std::setw(13) << cell.sum_ns << std::setw(13)
        << (cell.count == 0 ? 0 : cell.sum_ns / cell.count) << std::setw(6)
        << std::fixed << std::setprecision(1) << share << "%\n";
  }
  return out.str();
}

}  // namespace tyche
