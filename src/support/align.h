// Copyright 2026 The Tyche Reproduction Authors.
// Alignment and address-range helpers shared by the memory subsystems.

#ifndef SRC_SUPPORT_ALIGN_H_
#define SRC_SUPPORT_ALIGN_H_

#include <cstdint>

namespace tyche {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return AlignDown(value + alignment - 1, alignment);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

constexpr bool IsPageAligned(uint64_t value) { return IsAligned(value, kPageSize); }

// Half-open physical/virtual address range [base, base + size).
struct AddrRange {
  uint64_t base = 0;
  uint64_t size = 0;

  uint64_t end() const { return base + size; }
  bool empty() const { return size == 0; }
  // True when base + size overflows uint64: such a range is never valid and
  // every containment/overlap query treats it as hostile input.
  bool Wraps() const { return base + size < base; }

  bool Contains(uint64_t addr) const {
    return !Wraps() && addr >= base && addr < end();
  }

  bool Contains(const AddrRange& other) const {
    if (Wraps() || other.Wraps()) {
      return false;
    }
    return other.base >= base && other.end() <= end();
  }

  bool Overlaps(const AddrRange& other) const {
    if (empty() || other.empty() || Wraps() || other.Wraps()) {
      return false;
    }
    return base < other.end() && other.base < end();
  }

  bool operator==(const AddrRange& other) const = default;
};

}  // namespace tyche

#endif  // SRC_SUPPORT_ALIGN_H_
