// Copyright 2026 The Tyche Reproduction Authors.
// Append-only, hash-chained audit journal: observability turned into
// evidence. Every security-relevant monitor event becomes one fixed-shape
// record whose `link` field is SHA-256 over the previous record's link and
// the record's canonical serialization. Periodic checkpoints sign the chain
// head under the monitor's attestation key, so a remote party holding the
// (tier-1 verified) monitor public key can check integrity AND freshness of
// the whole history -- not just the current capability-graph snapshot.
//
// Threat model (see DESIGN.md §6):
//  - Any single-bit mutation of a record breaks that record's link.
//  - Dropping or reordering records breaks the seq/index correspondence and
//    the chain.
//  - Truncating the tail is caught because verification requires the FINAL
//    checkpoint to cover the last record.
//  - Rewriting the whole suffix (mutate + recompute links) is caught by the
//    checkpoint signatures, which an attacker without the monitor's private
//    key cannot re-produce.
//  - What is NOT detected: a malicious *monitor* (it holds the key). The
//    journal makes the monitor auditable, not untrusted.
//
// The journal is deliberately independent of monitor types (like telemetry):
// ops and domains are plain integers, named via callbacks when exporting.
// It lives in its own library (tyche_journal) because it needs SHA-256 and
// Schnorr from src/crypto, which itself links tyche_support.

#ifndef SRC_SUPPORT_JOURNAL_H_
#define SRC_SUPPORT_JOURNAL_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/support/metrics.h"
#include "src/support/status.h"

namespace tyche {

// What kind of monitor event a record describes. kDispatch and kEffect are
// context (skipped by replay); everything else is an engine mutation that a
// shadow capability engine can re-apply deterministically.
enum class JournalEvent : uint8_t {
  kDispatch = 0,     // one ABI call crossed Dispatch() (root of a span)
  kRegisterDomain,   // domain registered with the engine
  kSealDomain,       // domain sealed (resource set frozen)
  kMintMemory,       // boot/monitor minted a memory capability
  kMintUnit,         // boot/monitor minted a core/device/handle capability
  kShareMemory,      // duplicate access to a memory sub-range
  kGrantMemory,      // move exclusive control of a memory sub-range
  kShareUnit,        // duplicate a unit capability
  kGrantUnit,        // move a unit capability
  kRevoke,           // explicit revocation (root of a cascade)
  kCascade,          // one capability deactivated by an enclosing cascade
  kRestore,          // revoking a grant returned ownership to the grantor
  kPurgeDomain,      // domain teardown revoked everything it owned
  kEffect,           // one hardware obligation applied by the backend
  kOpAbort,          // an operation failed mid-flight and was rolled back /
                     // contained; context only (the compensating mutations
                     // are journaled as ordinary records before it)
  kRecovery,         // the monitor recovered from a crash; context only
                     // (aux = the last seq the recovery replayed up to)
  kMigrateOut,       // a domain left this monitor: handoff record binding the
                     // frozen domain's payload digest; context only for
                     // replay (the purge that follows is journaled normally)
  kMigrateIn,        // a domain arrived on this monitor: handoff record
                     // binding the same payload digest; context only (the
                     // adopting mutations are journaled as ordinary records)
  kEventCount,       // sentinel
};

const char* JournalEventName(JournalEvent event);

inline constexpr uint8_t kJournalNoOp = 0xff;     // record not tied to an ApiOp
inline constexpr uint32_t kJournalNoDomain = ~0u;

// One journal record. Fixed shape so the canonical serialization (and hence
// the hash chain) is unambiguous; unused fields stay zero for an event kind.
struct JournalRecord {
  uint64_t seq = 0;    // index in the journal, assigned by Append()
  uint64_t tick = 0;   // monotonic tick (simulated cycles), from the source
  uint64_t span = 0;   // causal span id: all records caused by one root op
  uint8_t event = 0;   // JournalEvent
  uint8_t op = kJournalNoOp;  // ApiOp at the dispatch boundary (kDispatch)
  uint32_t domain = kJournalNoDomain;  // acting / owning domain
  uint32_t dst = kJournalNoDomain;     // destination domain (share/grant)
  uint8_t resource = 0;  // ResourceKind
  uint8_t perms = 0;     // Perms mask (memory)
  uint8_t rights = 0;    // CapRights mask
  uint8_t policy = 0;    // RevocationPolicy mask
  uint64_t cap = 0;      // capability created / revoked by this event
  uint64_t parent = 0;   // source capability (share/grant/restore)
  uint64_t base = 0;     // memory base, or unit id for unit events
  uint64_t size = 0;     // memory size
  uint64_t result = 0;   // ErrorCode of the operation (0 = OK)
  uint64_t aux = 0;      // event-specific: cascade size, remainder count, ...
  Digest link;           // SHA-256(prev_link || canonical record bytes)
};

// A signed statement that the chain head at `seq` was `head`, optionally
// binding the digest of an engine snapshot taken at that point. Verifiable
// against the monitor's attestation public key. A zero snapshot digest means
// "no snapshot was taken here".
struct JournalCheckpoint {
  uint64_t seq = 0;  // sequence number of the last record covered
  Digest head;       // link of that record
  Digest snapshot;   // digest of the engine snapshot at seq (zero = none)
  SchnorrSignature signature;  // over JournalCheckpointDigest(seq, head, snapshot)
};

struct ParsedJournal {
  std::vector<JournalRecord> records;
  std::vector<JournalCheckpoint> checkpoints;
};

// Chain constants, shared by writer and verifier.
Digest JournalGenesis();
Digest JournalCheckpointDigest(uint64_t seq, const Digest& head,
                               const Digest& snapshot = Digest{});

// Canonical byte serialization of a record EXCLUDING the link field: the
// exact bytes the chain hashes and the wire format carries.
std::vector<uint8_t> CanonicalRecordBytes(const JournalRecord& record);

// link = SHA-256(prev.bytes || CanonicalRecordBytes(record)).
Digest ChainLink(const Digest& prev, const JournalRecord& record);

// Thread-safe append-only journal. Appends assign seq/tick/link under one
// lock so the chain is total-ordered even under concurrent writers.
//
// Concurrent appends GROUP-COMMIT (flat combining): each caller enqueues its
// record(s) on a pending queue; the first thread to find no combiner running
// becomes the combiner, drains the whole queue under ONE chain-lock
// acquisition, and wakes the waiters. The per-record chain is byte-identical
// to sequential appends — seq, tick, and link are still assigned one record
// at a time in arrival order — so the offline verifier replays batched and
// unbatched histories identically. Under a single writer every "batch" has
// size one and the path reduces to the old lock-append-unlock sequence.
class Journal {
 public:
  static constexpr size_t kDefaultCheckpointInterval = 128;
  static constexpr uint64_t kNoSeq = ~0ull;

  using TickSource = std::function<uint64_t()>;
  using Signer = std::function<SchnorrSignature(const Digest&)>;
  // Called (under the journal lock) when a checkpoint is about to be signed;
  // returns the digest of a durable engine snapshot covering records up to
  // and including `seq`, or a zero digest to skip snapshotting this one.
  // MUST NOT call back into the Journal (the lock is not recursive).
  using SnapshotProvider = std::function<Digest(uint64_t seq)>;

  explicit Journal(size_t checkpoint_interval = kDefaultCheckpointInterval);

  // Recording switch; Append() is a no-op while disabled. The dispatcher
  // reads this with one relaxed load on its fast path.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_tick_source(TickSource tick);
  // Installing a signer enables checkpoints: one every checkpoint_interval
  // records, plus explicit Checkpoint() calls.
  void set_signer(Signer signer);
  // Installing a snapshot provider binds a snapshot digest into every future
  // checkpoint. Costs nothing on the append fast path: it is only consulted
  // when a checkpoint is actually signed.
  void set_snapshot_provider(SnapshotProvider provider);
  void set_checkpoint_interval(size_t interval);

  // Appends one record, assigning seq, tick, and link. Returns the assigned
  // seq, or kNoSeq when disabled.
  uint64_t Append(JournalRecord record);

  // Appends `records` as one ATOMIC group: the records receive contiguous
  // seqs with no concurrent append interleaving between them. Used for
  // record families with adjacency invariants (a revoke and its cascade /
  // restore records must stay contiguous for replay). Returns the seq of the
  // first record, or kNoSeq when disabled or `records` is empty.
  uint64_t AppendGroup(std::span<JournalRecord> records);

  // Group-commit counters (cumulative since construction / Clear()).
  struct GroupCommitStats {
    uint64_t batches = 0;          // combiner drains (lock acquisitions)
    uint64_t batched_records = 0;  // records appended across all batches
    uint64_t max_batch = 0;        // largest single drain, in records
  };
  GroupCommitStats group_commit_stats() const;

  // Group-commit WAIT attribution: how often an appender had to sleep for a
  // running combiner, and the total nanoseconds spent blocked. Measured at
  // the wait itself (striped counters, contended path only), so journal
  // contention is reported, not inferred from throughput. The dispatch
  // profiler sees the same interval inside its kJournal phase.
  struct CommitWaitStats {
    uint64_t waits = 0;    // appenders that blocked on a combiner
    uint64_t wait_ns = 0;  // total nanoseconds those appenders were blocked
  };
  CommitWaitStats commit_wait_stats() const {
    return {commit_waits_.Value(), commit_wait_ns_.Value()};
  }

  // Incremental online chain verification for the invariant watchdog: the
  // caller carries its last verified position across calls so each check
  // only recomputes links for records appended since.
  struct ChainPosition {
    uint64_t next_seq = 0;  // first record seq not yet verified
    Digest head;            // chain head after the verified prefix; callers
                            // initialize it to JournalGenesis()
  };

  // Recomputes every link in [pos->next_seq, size) off pos->head and checks
  // the running digest equals the live chain head. On success advances *pos
  // to the tail. A position invalidated by compaction, Clear(), or Restore()
  // re-anchors at the current tail without error (the skipped prefix is the
  // offline verifier's job). Returns kJournalChainBroken on any mismatch.
  Status VerifyTail(ChainPosition* pos) const;

  // Signs the current head (no-op when empty, unsigned, or already covered).
  // Exporters call this so the tail is always covered by a signature.
  void Checkpoint();

  size_t size() const;
  size_t checkpoint_count() const;
  Digest head() const;  // genesis when empty
  // Seq of the first record still held in memory (0 until TruncateBefore).
  uint64_t base_seq() const;
  uint64_t EventCount(JournalEvent event) const;
  std::vector<JournalRecord> Records() const;
  std::vector<JournalCheckpoint> Checkpoints() const;
  void Clear();  // drops everything and resets the chain to genesis

  // Compaction: drops every record with seq <= checkpoint_seq and every
  // checkpoint before it. The checkpoint AT checkpoint_seq is kept as the
  // anchor the truncated journal verifies against; it must exist and carry a
  // snapshot digest (otherwise the dropped prefix would be unrecoverable).
  // Event counts stay cumulative across compaction — they describe the full
  // history, not the records currently held.
  Status TruncateBefore(uint64_t checkpoint_seq);

  // Reinstalls a parsed (possibly truncated) journal after recovery so the
  // recovered monitor continues the same chain: recomputes head, base seq,
  // and event counts from the given records. Callers verify the chain first.
  void Restore(const std::vector<JournalRecord>& records,
               const std::vector<JournalCheckpoint>& checkpoints);

  // Wire format: magic, version, counts, then records and checkpoints.
  // Deserialization is hardened against truncation and garbage.
  std::vector<uint8_t> Serialize() const;
  static std::vector<uint8_t> SerializeParts(const std::vector<JournalRecord>& records,
                                             const std::vector<JournalCheckpoint>& checkpoints);
  static Result<ParsedJournal> Deserialize(std::span<const uint8_t> bytes);

  // Offline chain verification: recomputes every link, checks seq/index
  // correspondence, every checkpoint signature, and (by default) that the
  // final checkpoint covers the last record (truncation evidence). A journal
  // compacted with TruncateBefore() starts at seq > 0; it is accepted iff the
  // first checkpoint is a signed anchor at exactly first_seq - 1 whose head
  // seeds the chain. `require_covered_tail=false` relaxes only the tail rule
  // — recovery uses it because a crashed monitor cannot sign its own death.
  static Status VerifyChain(const std::vector<JournalRecord>& records,
                            const std::vector<JournalCheckpoint>& checkpoints,
                            const SchnorrPublicKey& key,
                            bool require_covered_tail = true);

 private:
  // One caller's contribution to a group commit. Lives on the caller's
  // stack: the caller blocks until `done`, so the combiner's pointer stays
  // valid without allocation on the append path.
  struct PendingAppend {
    JournalRecord* records = nullptr;  // caller-owned array, written in place
    size_t count = 0;
    uint64_t first_seq = kNoSeq;
    bool done = false;
  };

  void CheckpointLocked();
  void AppendOneLocked(JournalRecord* record);
  uint64_t CommitPending(PendingAppend* own);

  size_t checkpoint_interval_;
  std::atomic<bool> enabled_{true};

  // Group-commit staging. Lock order: queue_mu_ is never held while taking
  // mu_ (the combiner drops it across the chain extension).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingAppend*> pending_;
  bool combiner_active_ = false;

  // Commit-wait attribution; striped atomics, outside both locks.
  StripedCounter commit_waits_;
  StripedCounter commit_wait_ns_;

  mutable std::mutex mu_;  // guards everything below
  GroupCommitStats group_stats_;
  TickSource tick_;
  Signer signer_;
  SnapshotProvider snapshot_provider_;
  std::vector<JournalRecord> records_;
  std::vector<JournalCheckpoint> checkpoints_;
  Digest head_;
  uint64_t base_seq_ = 0;  // seq of records_[0]; nonzero after compaction
  std::array<uint64_t, static_cast<size_t>(JournalEvent::kEventCount)> event_counts_{};
};

// Flamegraph-style causal view: records grouped by span id in first-seen
// order, each span labelled with its root operation (the kDispatch record's
// op when present). `op_name` maps the ApiOp byte to a printable name.
std::string ExportSpanTreeJson(const std::vector<JournalRecord>& records,
                               const std::function<std::string(uint8_t)>& op_name);

}  // namespace tyche

#endif  // SRC_SUPPORT_JOURNAL_H_
