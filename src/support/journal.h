// Copyright 2026 The Tyche Reproduction Authors.
// Append-only, hash-chained audit journal: observability turned into
// evidence. Every security-relevant monitor event becomes one fixed-shape
// record whose `link` field is SHA-256 over the previous record's link and
// the record's canonical serialization. Periodic checkpoints sign the chain
// head under the monitor's attestation key, so a remote party holding the
// (tier-1 verified) monitor public key can check integrity AND freshness of
// the whole history -- not just the current capability-graph snapshot.
//
// Threat model (see DESIGN.md §6):
//  - Any single-bit mutation of a record breaks that record's link.
//  - Dropping or reordering records breaks the seq/index correspondence and
//    the chain.
//  - Truncating the tail is caught because verification requires the FINAL
//    checkpoint to cover the last record.
//  - Rewriting the whole suffix (mutate + recompute links) is caught by the
//    checkpoint signatures, which an attacker without the monitor's private
//    key cannot re-produce.
//  - What is NOT detected: a malicious *monitor* (it holds the key). The
//    journal makes the monitor auditable, not untrusted.
//
// The journal is deliberately independent of monitor types (like telemetry):
// ops and domains are plain integers, named via callbacks when exporting.
// It lives in its own library (tyche_journal) because it needs SHA-256 and
// Schnorr from src/crypto, which itself links tyche_support.

#ifndef SRC_SUPPORT_JOURNAL_H_
#define SRC_SUPPORT_JOURNAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/support/status.h"

namespace tyche {

// What kind of monitor event a record describes. kDispatch and kEffect are
// context (skipped by replay); everything else is an engine mutation that a
// shadow capability engine can re-apply deterministically.
enum class JournalEvent : uint8_t {
  kDispatch = 0,     // one ABI call crossed Dispatch() (root of a span)
  kRegisterDomain,   // domain registered with the engine
  kSealDomain,       // domain sealed (resource set frozen)
  kMintMemory,       // boot/monitor minted a memory capability
  kMintUnit,         // boot/monitor minted a core/device/handle capability
  kShareMemory,      // duplicate access to a memory sub-range
  kGrantMemory,      // move exclusive control of a memory sub-range
  kShareUnit,        // duplicate a unit capability
  kGrantUnit,        // move a unit capability
  kRevoke,           // explicit revocation (root of a cascade)
  kCascade,          // one capability deactivated by an enclosing cascade
  kRestore,          // revoking a grant returned ownership to the grantor
  kPurgeDomain,      // domain teardown revoked everything it owned
  kEffect,           // one hardware obligation applied by the backend
  kOpAbort,          // an operation failed mid-flight and was rolled back /
                     // contained; context only (the compensating mutations
                     // are journaled as ordinary records before it)
  kEventCount,       // sentinel
};

const char* JournalEventName(JournalEvent event);

inline constexpr uint8_t kJournalNoOp = 0xff;     // record not tied to an ApiOp
inline constexpr uint32_t kJournalNoDomain = ~0u;

// One journal record. Fixed shape so the canonical serialization (and hence
// the hash chain) is unambiguous; unused fields stay zero for an event kind.
struct JournalRecord {
  uint64_t seq = 0;    // index in the journal, assigned by Append()
  uint64_t tick = 0;   // monotonic tick (simulated cycles), from the source
  uint64_t span = 0;   // causal span id: all records caused by one root op
  uint8_t event = 0;   // JournalEvent
  uint8_t op = kJournalNoOp;  // ApiOp at the dispatch boundary (kDispatch)
  uint32_t domain = kJournalNoDomain;  // acting / owning domain
  uint32_t dst = kJournalNoDomain;     // destination domain (share/grant)
  uint8_t resource = 0;  // ResourceKind
  uint8_t perms = 0;     // Perms mask (memory)
  uint8_t rights = 0;    // CapRights mask
  uint8_t policy = 0;    // RevocationPolicy mask
  uint64_t cap = 0;      // capability created / revoked by this event
  uint64_t parent = 0;   // source capability (share/grant/restore)
  uint64_t base = 0;     // memory base, or unit id for unit events
  uint64_t size = 0;     // memory size
  uint64_t result = 0;   // ErrorCode of the operation (0 = OK)
  uint64_t aux = 0;      // event-specific: cascade size, remainder count, ...
  Digest link;           // SHA-256(prev_link || canonical record bytes)
};

// A signed statement that the chain head at `seq` was `head`. Verifiable
// against the monitor's attestation public key.
struct JournalCheckpoint {
  uint64_t seq = 0;  // sequence number of the last record covered
  Digest head;       // link of that record
  SchnorrSignature signature;  // over JournalCheckpointDigest(seq, head)
};

struct ParsedJournal {
  std::vector<JournalRecord> records;
  std::vector<JournalCheckpoint> checkpoints;
};

// Chain constants, shared by writer and verifier.
Digest JournalGenesis();
Digest JournalCheckpointDigest(uint64_t seq, const Digest& head);

// Canonical byte serialization of a record EXCLUDING the link field: the
// exact bytes the chain hashes and the wire format carries.
std::vector<uint8_t> CanonicalRecordBytes(const JournalRecord& record);

// link = SHA-256(prev.bytes || CanonicalRecordBytes(record)).
Digest ChainLink(const Digest& prev, const JournalRecord& record);

// Thread-safe append-only journal. Appends assign seq/tick/link under one
// lock so the chain is total-ordered even under concurrent writers.
class Journal {
 public:
  static constexpr size_t kDefaultCheckpointInterval = 128;
  static constexpr uint64_t kNoSeq = ~0ull;

  using TickSource = std::function<uint64_t()>;
  using Signer = std::function<SchnorrSignature(const Digest&)>;

  explicit Journal(size_t checkpoint_interval = kDefaultCheckpointInterval);

  // Recording switch; Append() is a no-op while disabled. The dispatcher
  // reads this with one relaxed load on its fast path.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_tick_source(TickSource tick);
  // Installing a signer enables checkpoints: one every checkpoint_interval
  // records, plus explicit Checkpoint() calls.
  void set_signer(Signer signer);

  // Appends one record, assigning seq, tick, and link. Returns the assigned
  // seq, or kNoSeq when disabled.
  uint64_t Append(JournalRecord record);

  // Signs the current head (no-op when empty, unsigned, or already covered).
  // Exporters call this so the tail is always covered by a signature.
  void Checkpoint();

  size_t size() const;
  size_t checkpoint_count() const;
  Digest head() const;  // genesis when empty
  uint64_t EventCount(JournalEvent event) const;
  std::vector<JournalRecord> Records() const;
  std::vector<JournalCheckpoint> Checkpoints() const;
  void Clear();  // drops everything and resets the chain to genesis

  // Wire format: magic, version, counts, then records and checkpoints.
  // Deserialization is hardened against truncation and garbage.
  std::vector<uint8_t> Serialize() const;
  static std::vector<uint8_t> SerializeParts(const std::vector<JournalRecord>& records,
                                             const std::vector<JournalCheckpoint>& checkpoints);
  static Result<ParsedJournal> Deserialize(std::span<const uint8_t> bytes);

  // Offline chain verification: recomputes every link from genesis, checks
  // seq/index correspondence, every checkpoint signature, and that the final
  // checkpoint covers the last record (truncation evidence).
  static Status VerifyChain(const std::vector<JournalRecord>& records,
                            const std::vector<JournalCheckpoint>& checkpoints,
                            const SchnorrPublicKey& key);

 private:
  void CheckpointLocked();

  const size_t checkpoint_interval_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  // guards everything below
  TickSource tick_;
  Signer signer_;
  std::vector<JournalRecord> records_;
  std::vector<JournalCheckpoint> checkpoints_;
  Digest head_;
  std::array<uint64_t, static_cast<size_t>(JournalEvent::kEventCount)> event_counts_{};
};

// Flamegraph-style causal view: records grouped by span id in first-seen
// order, each span labelled with its root operation (the kDispatch record's
// op when present). `op_name` maps the ApiOp byte to a printable name.
std::string ExportSpanTreeJson(const std::vector<JournalRecord>& records,
                               const std::function<std::string(uint8_t)>& op_name);

}  // namespace tyche

#endif  // SRC_SUPPORT_JOURNAL_H_
