// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/status.h"

namespace tyche {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kCapabilityRevoked:
      return "CAPABILITY_REVOKED";
    case ErrorCode::kCapabilityRightsViolation:
      return "CAPABILITY_RIGHTS_VIOLATION";
    case ErrorCode::kCapabilityNotOwned:
      return "CAPABILITY_NOT_OWNED";
    case ErrorCode::kDomainSealed:
      return "DOMAIN_SEALED";
    case ErrorCode::kDomainNotSealed:
      return "DOMAIN_NOT_SEALED";
    case ErrorCode::kDomainDead:
      return "DOMAIN_DEAD";
    case ErrorCode::kPolicyViolation:
      return "POLICY_VIOLATION";
    case ErrorCode::kTransitionDenied:
      return "TRANSITION_DENIED";
    case ErrorCode::kAccessViolation:
      return "ACCESS_VIOLATION";
    case ErrorCode::kPmpExhausted:
      return "PMP_EXHAUSTED";
    case ErrorCode::kPmpLayoutUnsupported:
      return "PMP_LAYOUT_UNSUPPORTED";
    case ErrorCode::kIommuFault:
      return "IOMMU_FAULT";
    case ErrorCode::kAttestationMismatch:
      return "ATTESTATION_MISMATCH";
    case ErrorCode::kSignatureInvalid:
      return "SIGNATURE_INVALID";
    case ErrorCode::kJournalChainBroken:
      return "JOURNAL_CHAIN_BROKEN";
    case ErrorCode::kJournalSignatureInvalid:
      return "JOURNAL_SIGNATURE_INVALID";
    case ErrorCode::kJournalReplayDivergence:
      return "JOURNAL_REPLAY_DIVERGENCE";
    case ErrorCode::kMigrating:
      return "MIGRATING";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tyche
