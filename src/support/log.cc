// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/log.h"

#include <cstdio>

namespace tyche {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

Logger::Logger() { sink_ = DefaultSink(); }

Logger::Sink Logger::DefaultSink() {
  return [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    default_sink_ = false;
  } else {
    sink_ = DefaultSink();
    default_sink_ = true;
  }
}

void Logger::Write(LogLevel level, const std::string& message) {
  sink_(level, message);
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to keep log lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

}  // namespace log_internal

}  // namespace tyche
