// Copyright 2026 The Tyche Reproduction Authors.
// Deterministic PRNG (splitmix64 + xoshiro256**) for workload generation in
// benches and property tests. Not a cryptographic source; the crypto library
// derives its nonces deterministically instead.

#ifndef SRC_SUPPORT_PRNG_H_
#define SRC_SUPPORT_PRNG_H_

#include <cstdint>

namespace tyche {

class Prng {
 public:
  explicit Prng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound); returns 0 for bound == 0.
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform value in [lo, hi] inclusive. The full 64-bit span is handled
  // explicitly: `hi - lo + 1` would overflow to 0 there, and Below(0) would
  // pin every draw to `lo`.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    const uint64_t span = hi - lo;
    return span == ~0ull ? Next() : lo + Below(span + 1);
  }

  // Bernoulli draw with probability numerator/denominator.
  bool Chance(uint64_t numerator, uint64_t denominator) {
    return Below(denominator) < numerator;
  }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace tyche

#endif  // SRC_SUPPORT_PRNG_H_
