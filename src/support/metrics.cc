// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/metrics.h"

#include <algorithm>
#include <sstream>

namespace tyche {

namespace metrics_internal {

thread_local size_t tls_stripe_plus1 = 0;

size_t AssignThisThreadStripe() {
  static std::atomic<size_t> next_stripe{0};
  tls_stripe_plus1 =
      next_stripe.fetch_add(1, std::memory_order_relaxed) % kMetricStripes + 1;
  return tls_stripe_plus1;
}

}  // namespace metrics_internal

std::string PromEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderSeriesName(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += key;
    out += "=\"";
    out += PromEscapeLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

// Renders a label set with one extra label appended (for histogram "le").
std::string RenderWithExtraLabel(const std::string& name, const MetricLabels& labels,
                                 const std::string& key, const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return RenderSeriesName(name, extended);
}

}  // namespace

MetricsRegistry::Child* MetricsRegistry::FindOrAddChild(const std::string& name,
                                                        const std::string& help, Type type,
                                                        const MetricLabels& labels) {
  Family& family = families_[name];
  if (family.children.empty()) {
    family.help = help;
    family.type = type;
  }
  for (Child& child : family.children) {
    if (child.labels == labels) {
      return &child;
    }
  }
  family.children.emplace_back();
  family.children.back().labels = labels;
  return &family.children.back();
}

StripedCounter* MetricsRegistry::AddCounter(const std::string& name, const std::string& help,
                                            const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = FindOrAddChild(name, help, Type::kCounter, labels);
  if (child->counter == nullptr) {
    child->counter = std::make_unique<StripedCounter>();
  }
  return child->counter.get();
}

MetricGauge* MetricsRegistry::AddGauge(const std::string& name, const std::string& help,
                                       const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = FindOrAddChild(name, help, Type::kGauge, labels);
  if (child->gauge == nullptr) {
    child->gauge = std::make_unique<MetricGauge>();
  }
  return child->gauge.get();
}

void MetricsRegistry::AddCallback(const std::string& name, const std::string& help,
                                  bool counter, const MetricLabels& labels,
                                  std::function<uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child =
      FindOrAddChild(name, help, counter ? Type::kCounter : Type::kGauge, labels);
  child->read = std::move(read);
}

void MetricsRegistry::AddHistogram(const std::string& name, const std::string& help,
                                   const MetricLabels& labels,
                                   std::function<HistogramSnapshot()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = FindOrAddChild(name, help, Type::kHistogram, labels);
  child->histogram = std::move(read);
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    const char* type_name = family.type == Type::kCounter    ? "counter"
                            : family.type == Type::kGauge    ? "gauge"
                                                             : "histogram";
    out << "# HELP " << name << " " << PromEscapeHelp(family.help) << "\n";
    out << "# TYPE " << name << " " << type_name << "\n";
    for (const Child& child : family.children) {
      if (family.type == Type::kHistogram) {
        if (!child.histogram) {
          continue;
        }
        const HistogramSnapshot snapshot = child.histogram();
        uint64_t cumulative = 0;
        for (const auto& [bound, count] : snapshot.buckets) {
          cumulative += count;
          out << RenderWithExtraLabel(name + "_bucket", child.labels, "le",
                                      std::to_string(bound))
              << " " << cumulative << "\n";
        }
        out << RenderWithExtraLabel(name + "_bucket", child.labels, "le", "+Inf") << " "
            << snapshot.count << "\n";
        out << RenderSeriesName(name + "_sum", child.labels) << " " << snapshot.sum << "\n";
        out << RenderSeriesName(name + "_count", child.labels) << " " << snapshot.count
            << "\n";
        continue;
      }
      uint64_t value = 0;
      if (child.counter != nullptr) {
        value = child.counter->Value();
      } else if (child.gauge != nullptr) {
        value = static_cast<uint64_t>(child.gauge->Value());
      } else if (child.read) {
        value = child.read();
      }
      out << RenderSeriesName(name, child.labels) << " " << value << "\n";
    }
  }
  return out.str();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::ScalarValues(
    bool include_callbacks) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> values;
  for (const auto& [name, family] : families_) {
    if (family.type == Type::kHistogram) {
      continue;
    }
    for (const Child& child : family.children) {
      uint64_t value = 0;
      if (child.counter != nullptr) {
        value = child.counter->Value();
      } else if (child.gauge != nullptr) {
        value = static_cast<uint64_t>(child.gauge->Value());
      } else if (child.read) {
        if (!include_callbacks) {
          continue;
        }
        value = child.read();
      }
      values.emplace_back(RenderSeriesName(name, child.labels), value);
    }
  }
  return values;
}

}  // namespace tyche
