// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/journal.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/support/faults.h"
#include "src/support/profiler.h"

namespace tyche {

namespace {

constexpr char kMagic[4] = {'T', 'Y', 'J', 'L'};
// v2 added a snapshot digest to every checkpoint (and to the signed
// checkpoint statement). v1 journals are rejected rather than silently
// upgraded: a v1 checkpoint signature does not cover a snapshot binding.
constexpr uint32_t kVersion = 2;

// Little-endian scalar append; the wire format and the hashed canonical
// bytes share these helpers so they cannot drift apart.
template <typename T>
void AppendValue(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_integral_v<T>);
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendDigest(std::vector<uint8_t>* out, const Digest& digest) {
  out->insert(out->end(), digest.bytes.begin(), digest.bytes.end());
}

// Bounds-checked cursor over the wire bytes.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_integral_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      return false;
    }
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(bytes_[pos_ + i]) << (8 * i));
    }
    *value = out;
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDigest(Digest* digest) {
    if (pos_ + digest->bytes.size() > bytes_.size()) {
      return false;
    }
    std::memcpy(digest->bytes.data(), bytes_.data() + pos_, digest->bytes.size());
    pos_ += digest->bytes.size();
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

void AppendHex(std::ostringstream* out, const Digest& digest, size_t bytes) {
  static const char kHex[] = "0123456789abcdef";
  for (size_t i = 0; i < bytes && i < digest.bytes.size(); ++i) {
    *out << kHex[digest.bytes[i] >> 4] << kHex[digest.bytes[i] & 0xf];
  }
}

}  // namespace

const char* JournalEventName(JournalEvent event) {
  switch (event) {
    case JournalEvent::kDispatch:
      return "dispatch";
    case JournalEvent::kRegisterDomain:
      return "register_domain";
    case JournalEvent::kSealDomain:
      return "seal_domain";
    case JournalEvent::kMintMemory:
      return "mint_memory";
    case JournalEvent::kMintUnit:
      return "mint_unit";
    case JournalEvent::kShareMemory:
      return "share_memory";
    case JournalEvent::kGrantMemory:
      return "grant_memory";
    case JournalEvent::kShareUnit:
      return "share_unit";
    case JournalEvent::kGrantUnit:
      return "grant_unit";
    case JournalEvent::kRevoke:
      return "revoke";
    case JournalEvent::kCascade:
      return "cascade";
    case JournalEvent::kRestore:
      return "restore";
    case JournalEvent::kPurgeDomain:
      return "purge_domain";
    case JournalEvent::kEffect:
      return "effect";
    case JournalEvent::kOpAbort:
      return "op_abort";
    case JournalEvent::kRecovery:
      return "recovery";
    case JournalEvent::kMigrateOut:
      return "migrate_out";
    case JournalEvent::kMigrateIn:
      return "migrate_in";
    case JournalEvent::kEventCount:
      break;
  }
  return "?";
}

Digest JournalGenesis() { return Sha256::Hash("tyche-journal-genesis-v1"); }

Digest JournalCheckpointDigest(uint64_t seq, const Digest& head,
                               const Digest& snapshot) {
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-journal-checkpoint-v2"));
  ctx.UpdateValue(seq);
  ctx.Update(std::span<const uint8_t>(head.bytes.data(), head.bytes.size()));
  ctx.Update(std::span<const uint8_t>(snapshot.bytes.data(), snapshot.bytes.size()));
  return ctx.Finalize();
}

std::vector<uint8_t> CanonicalRecordBytes(const JournalRecord& record) {
  std::vector<uint8_t> out;
  out.reserve(84);
  AppendValue(&out, record.seq);
  AppendValue(&out, record.tick);
  AppendValue(&out, record.span);
  AppendValue(&out, record.event);
  AppendValue(&out, record.op);
  AppendValue(&out, record.domain);
  AppendValue(&out, record.dst);
  AppendValue(&out, record.resource);
  AppendValue(&out, record.perms);
  AppendValue(&out, record.rights);
  AppendValue(&out, record.policy);
  AppendValue(&out, record.cap);
  AppendValue(&out, record.parent);
  AppendValue(&out, record.base);
  AppendValue(&out, record.size);
  AppendValue(&out, record.result);
  AppendValue(&out, record.aux);
  return out;
}

Digest ChainLink(const Digest& prev, const JournalRecord& record) {
  Sha256 ctx;
  ctx.Update(std::span<const uint8_t>(prev.bytes.data(), prev.bytes.size()));
  const std::vector<uint8_t> canon = CanonicalRecordBytes(record);
  ctx.Update(std::span<const uint8_t>(canon.data(), canon.size()));
  return ctx.Finalize();
}

Journal::Journal(size_t checkpoint_interval)
    : checkpoint_interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval),
      head_(JournalGenesis()) {}

void Journal::set_tick_source(TickSource tick) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_ = std::move(tick);
}

void Journal::set_signer(Signer signer) {
  std::lock_guard<std::mutex> lock(mu_);
  signer_ = std::move(signer);
}

void Journal::set_snapshot_provider(SnapshotProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_provider_ = std::move(provider);
}

void Journal::set_checkpoint_interval(size_t interval) {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoint_interval_ = interval == 0 ? 1 : interval;
}

uint64_t Journal::Append(JournalRecord record) {
  if (!enabled()) {
    return kNoSeq;
  }
  // Dispatch-profiler attribution: ALL journal work reached from a dispatch
  // -- the boundary record, engine-mutation records appended mid-op, and
  // any group-commit wait inside CommitPending -- lands in the kJournal
  // phase. A bare TLS load when no window is open.
  const ScopedPhase phase(DispatchPhase::kJournal);
  PendingAppend slot;
  slot.records = &record;
  slot.count = 1;
  return CommitPending(&slot);
}

uint64_t Journal::AppendGroup(std::span<JournalRecord> records) {
  if (!enabled() || records.empty()) {
    return kNoSeq;
  }
  const ScopedPhase phase(DispatchPhase::kJournal);
  PendingAppend slot;
  slot.records = records.data();
  slot.count = records.size();
  return CommitPending(&slot);
}

// Flat-combining group commit. The caller enqueues its stack-resident slot;
// whichever thread finds no combiner running takes the role and drains the
// whole queue under one mu_ acquisition, extending the chain one record at a
// time (AppendOneLocked) so the bytes are identical to sequential appends.
// Everyone else sleeps until the combiner marks their slot done. With a single
// writer the queue always holds exactly one slot and this collapses to
// lock-append-unlock.
uint64_t Journal::CommitPending(PendingAppend* own) {
  std::unique_lock<std::mutex> queue_lock(queue_mu_);
  pending_.push_back(own);
  if (combiner_active_) {
    // Already off the fast path: this thread is about to sleep, so two
    // clock reads attribute the group-commit wait exactly.
    const uint64_t blocked_at = ProfilerNowNs();
    queue_cv_.wait(queue_lock, [own] { return own->done; });
    commit_waits_.Add();
    commit_wait_ns_.Add(ProfilerNowNs() - blocked_at);
    return own->first_seq;
  }
  combiner_active_ = true;
  while (!pending_.empty()) {
    std::deque<PendingAppend*> batch;
    batch.swap(pending_);
    queue_lock.unlock();
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t batch_records = 0;
      for (PendingAppend* slot : batch) {
        slot->first_seq = base_seq_ + records_.size();
        for (size_t i = 0; i < slot->count; ++i) {
          AppendOneLocked(&slot->records[i]);
        }
        batch_records += slot->count;
      }
      ++group_stats_.batches;
      group_stats_.batched_records += batch_records;
      group_stats_.max_batch = std::max(group_stats_.max_batch, batch_records);
    }
    queue_lock.lock();
    for (PendingAppend* slot : batch) {
      slot->done = true;
    }
    queue_cv_.notify_all();
  }
  combiner_active_ = false;
  return own->first_seq;
}

void Journal::AppendOneLocked(JournalRecord* record) {
  record->seq = base_seq_ + records_.size();
  record->tick = tick_ ? tick_() : 0;
  record->link = ChainLink(head_, *record);
  head_ = record->link;
  // Silent-corruption injection for the invariant watchdog: flips a bit in
  // the live chain head the way a memory-corruption bug would, WITHOUT
  // failing the append. Not a canonical sweep site (the sweep expects sites
  // that surface typed errors); see faults::kJournalHeadTamper.
  if (FaultInjector::active()) [[unlikely]] {
    if (!FaultInjector::Instance().Check(faults::kJournalHeadTamper).ok()) {
      head_.bytes[0] ^= 0x80;
    }
  }
  if (record->event < static_cast<uint8_t>(JournalEvent::kEventCount)) {
    ++event_counts_[record->event];
  }
  records_.push_back(*record);
  if (signer_ && records_.size() % checkpoint_interval_ == 0) {
    CheckpointLocked();
  }
}

Journal::GroupCommitStats Journal::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_stats_;
}

Status Journal::VerifyTail(ChainPosition* pos) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t tail_seq = base_seq_ + records_.size();
  if (pos->next_seq < base_seq_ || pos->next_seq > tail_seq) {
    // Compaction dropped the verified prefix, or Clear()/Restore() rewound
    // the chain under the caller. Re-anchor at the live tail: continuity of
    // the skipped prefix is the offline verifier's job (it has the signed
    // anchor checkpoint; we only have a stale in-memory position).
    pos->next_seq = tail_seq;
    pos->head = head_;
    return OkStatus();
  }
  Digest running = pos->head;
  for (uint64_t seq = pos->next_seq; seq < tail_seq; ++seq) {
    const JournalRecord& record = records_[seq - base_seq_];
    if (record.seq != seq) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: watchdog found seq " + std::to_string(record.seq) +
                       " at index " + std::to_string(seq) + " (drop or reorder)");
    }
    if (ChainLink(running, record) != record.link) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: watchdog found broken link at seq " + std::to_string(seq));
    }
    running = record.link;
  }
  if (!(running == head_)) {
    return Error(ErrorCode::kJournalChainBroken,
                 "journal: watchdog found head/tail mismatch at seq " +
                     std::to_string(tail_seq));
  }
  pos->next_seq = tail_seq;
  pos->head = running;
  return OkStatus();
}

void Journal::CheckpointLocked() {
  if (!signer_ || records_.empty()) {
    return;
  }
  const uint64_t seq = base_seq_ + records_.size() - 1;
  if (!checkpoints_.empty() && checkpoints_.back().seq == seq) {
    return;  // head already covered
  }
  JournalCheckpoint checkpoint;
  checkpoint.seq = seq;
  checkpoint.head = head_;
  if (snapshot_provider_) {
    checkpoint.snapshot = snapshot_provider_(seq);
  }
  checkpoint.signature =
      signer_(JournalCheckpointDigest(seq, head_, checkpoint.snapshot));
  checkpoints_.push_back(checkpoint);
}

void Journal::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointLocked();
}

size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

size_t Journal::checkpoint_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_.size();
}

Digest Journal::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

uint64_t Journal::base_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_seq_;
}

uint64_t Journal::EventCount(JournalEvent event) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto index = static_cast<size_t>(event);
  return index < event_counts_.size() ? event_counts_[index] : 0;
}

std::vector<JournalRecord> Journal::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<JournalCheckpoint> Journal::Checkpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

void Journal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  checkpoints_.clear();
  head_ = JournalGenesis();
  base_seq_ = 0;
  event_counts_ = {};
  group_stats_ = {};
  commit_waits_.Reset();
  commit_wait_ns_.Reset();
}

Status Journal::TruncateBefore(uint64_t checkpoint_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (checkpoint_seq < base_seq_ ||
      checkpoint_seq >= base_seq_ + records_.size()) {
    return Error(ErrorCode::kOutOfRange,
                 "journal: truncate seq " + std::to_string(checkpoint_seq) +
                     " outside held records");
  }
  const JournalCheckpoint* anchor = nullptr;
  for (const JournalCheckpoint& checkpoint : checkpoints_) {
    if (checkpoint.seq == checkpoint_seq) {
      anchor = &checkpoint;
      break;
    }
  }
  if (anchor == nullptr) {
    return Error(ErrorCode::kFailedPrecondition,
                 "journal: no checkpoint at seq " + std::to_string(checkpoint_seq));
  }
  if (anchor->snapshot.IsZero()) {
    // Without a snapshot the dropped prefix would be unrecoverable: nothing
    // could reconstruct the engine state the surviving suffix builds on.
    return Error(ErrorCode::kFailedPrecondition,
                 "journal: checkpoint at seq " + std::to_string(checkpoint_seq) +
                     " carries no snapshot");
  }
  const size_t drop = static_cast<size_t>(checkpoint_seq - base_seq_) + 1;
  records_.erase(records_.begin(), records_.begin() + drop);
  std::vector<JournalCheckpoint> kept;
  for (const JournalCheckpoint& checkpoint : checkpoints_) {
    if (checkpoint.seq >= checkpoint_seq) {
      kept.push_back(checkpoint);  // the anchor itself is kept
    }
  }
  checkpoints_ = std::move(kept);
  base_seq_ = checkpoint_seq + 1;
  // head_ is unchanged: it is the link of the newest record, which survives
  // (or equals the anchor head when everything was compacted away).
  // event_counts_ stay cumulative: they describe the full history.
  return OkStatus();
}

void Journal::Restore(const std::vector<JournalRecord>& records,
                      const std::vector<JournalCheckpoint>& checkpoints) {
  std::lock_guard<std::mutex> lock(mu_);
  records_ = records;
  checkpoints_ = checkpoints;
  event_counts_ = {};
  for (const JournalRecord& record : records_) {
    if (record.event < static_cast<uint8_t>(JournalEvent::kEventCount)) {
      ++event_counts_[record.event];
    }
  }
  if (!records_.empty()) {
    base_seq_ = records_.front().seq;
    head_ = records_.back().link;
  } else if (!checkpoints_.empty()) {
    base_seq_ = checkpoints_.back().seq + 1;
    head_ = checkpoints_.back().head;
  } else {
    base_seq_ = 0;
    head_ = JournalGenesis();
  }
}

std::vector<uint8_t> Journal::SerializeParts(
    const std::vector<JournalRecord>& records,
    const std::vector<JournalCheckpoint>& checkpoints) {
  std::vector<uint8_t> out;
  out.reserve(16 + records.size() * 116 + checkpoints.size() * 80);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<uint64_t>(records.size()));
  AppendValue(&out, static_cast<uint64_t>(checkpoints.size()));
  for (const JournalRecord& record : records) {
    const std::vector<uint8_t> canon = CanonicalRecordBytes(record);
    out.insert(out.end(), canon.begin(), canon.end());
    AppendDigest(&out, record.link);
  }
  for (const JournalCheckpoint& checkpoint : checkpoints) {
    AppendValue(&out, checkpoint.seq);
    AppendDigest(&out, checkpoint.head);
    AppendDigest(&out, checkpoint.snapshot);
    AppendValue(&out, checkpoint.signature.s);
    AppendDigest(&out, checkpoint.signature.e);
  }
  return out;
}

std::vector<uint8_t> Journal::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SerializeParts(records_, checkpoints_);
}

Result<ParsedJournal> Journal::Deserialize(std::span<const uint8_t> bytes) {
  Reader reader(bytes);
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error(ErrorCode::kInvalidArgument, "journal: bad magic");
  }
  uint32_t skip_magic = 0;
  (void)reader.Read(&skip_magic);  // consumes the 4 magic bytes
  uint32_t version = 0;
  if (!reader.Read(&version) || version != kVersion) {
    return Error(ErrorCode::kInvalidArgument, "journal: unsupported version");
  }
  uint64_t record_count = 0;
  uint64_t checkpoint_count = 0;
  if (!reader.Read(&record_count) || !reader.Read(&checkpoint_count)) {
    return Error(ErrorCode::kInvalidArgument, "journal: truncated header");
  }
  // A record is at least 84 + 32 bytes on the wire; reject absurd counts
  // before allocating.
  if (record_count > bytes.size() || checkpoint_count > bytes.size()) {
    return Error(ErrorCode::kInvalidArgument, "journal: implausible counts");
  }
  ParsedJournal parsed;
  parsed.records.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    JournalRecord record;
    const bool ok = reader.Read(&record.seq) && reader.Read(&record.tick) &&
                    reader.Read(&record.span) && reader.Read(&record.event) &&
                    reader.Read(&record.op) && reader.Read(&record.domain) &&
                    reader.Read(&record.dst) && reader.Read(&record.resource) &&
                    reader.Read(&record.perms) && reader.Read(&record.rights) &&
                    reader.Read(&record.policy) && reader.Read(&record.cap) &&
                    reader.Read(&record.parent) && reader.Read(&record.base) &&
                    reader.Read(&record.size) && reader.Read(&record.result) &&
                    reader.Read(&record.aux) && reader.ReadDigest(&record.link);
    if (!ok) {
      return Error(ErrorCode::kInvalidArgument, "journal: truncated record");
    }
    parsed.records.push_back(record);
  }
  parsed.checkpoints.reserve(checkpoint_count);
  for (uint64_t i = 0; i < checkpoint_count; ++i) {
    JournalCheckpoint checkpoint;
    const bool ok = reader.Read(&checkpoint.seq) && reader.ReadDigest(&checkpoint.head) &&
                    reader.ReadDigest(&checkpoint.snapshot) &&
                    reader.Read(&checkpoint.signature.s) &&
                    reader.ReadDigest(&checkpoint.signature.e);
    if (!ok) {
      return Error(ErrorCode::kInvalidArgument, "journal: truncated checkpoint");
    }
    parsed.checkpoints.push_back(checkpoint);
  }
  if (reader.remaining() != 0) {
    return Error(ErrorCode::kInvalidArgument, "journal: trailing bytes");
  }
  return parsed;
}

Status Journal::VerifyChain(const std::vector<JournalRecord>& records,
                            const std::vector<JournalCheckpoint>& checkpoints,
                            const SchnorrPublicKey& key,
                            bool require_covered_tail) {
  Digest prev = JournalGenesis();
  uint64_t base = 0;
  size_t first_checkpoint = 0;
  if (!records.empty() && records.front().seq != 0) {
    // Compacted journal: the first surviving record must chain off a SIGNED
    // anchor checkpoint at exactly first_seq - 1. Without the signature an
    // attacker could truncate anywhere and invent a matching head.
    base = records.front().seq;
    if (checkpoints.empty() || checkpoints.front().seq != base - 1) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: truncated journal lacks an anchor checkpoint at seq " +
                       std::to_string(base - 1));
    }
    const JournalCheckpoint& anchor = checkpoints.front();
    if (!SchnorrVerify(key,
                       JournalCheckpointDigest(anchor.seq, anchor.head, anchor.snapshot),
                       anchor.signature)) {
      return Error(ErrorCode::kJournalSignatureInvalid,
                   "journal: anchor checkpoint signature invalid");
    }
    prev = anchor.head;
    first_checkpoint = 1;  // the anchor has no backing record to cross-check
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& record = records[i];
    if (record.seq != base + i) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: record " + std::to_string(base + i) + " has seq " +
                       std::to_string(record.seq) + " (drop or reorder)");
    }
    if (ChainLink(prev, record) != record.link) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: hash chain broken at seq " + std::to_string(base + i));
    }
    prev = record.link;
  }
  uint64_t last_seq = 0;
  bool have_checkpoint = false;
  for (size_t c = first_checkpoint; c < checkpoints.size(); ++c) {
    const JournalCheckpoint& checkpoint = checkpoints[c];
    if ((have_checkpoint && checkpoint.seq <= last_seq) ||
        (first_checkpoint == 1 && checkpoint.seq <= base - 1)) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: checkpoints out of order");
    }
    if (checkpoint.seq < base || checkpoint.seq - base >= records.size()) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: checkpoint beyond the last record");
    }
    if (records[checkpoint.seq - base].link != checkpoint.head) {
      return Error(ErrorCode::kJournalChainBroken,
                   "journal: checkpoint head does not match the chain");
    }
    if (!SchnorrVerify(key,
                       JournalCheckpointDigest(checkpoint.seq, checkpoint.head,
                                               checkpoint.snapshot),
                       checkpoint.signature)) {
      return Error(ErrorCode::kJournalSignatureInvalid,
                   "journal: checkpoint signature invalid");
    }
    last_seq = checkpoint.seq;
    have_checkpoint = true;
  }
  // Freshness / truncation: the tail must be covered by a signature, or an
  // attacker could silently drop the most recent history. Recovery relaxes
  // this (a crashed monitor cannot sign its own death).
  if (require_covered_tail && !records.empty() &&
      (!have_checkpoint || last_seq != base + records.size() - 1)) {
    return Error(ErrorCode::kJournalChainBroken,
                 "journal: tail not covered by a signed checkpoint");
  }
  return OkStatus();
}

std::string ExportSpanTreeJson(const std::vector<JournalRecord>& records,
                               const std::function<std::string(uint8_t)>& op_name) {
  // Group by span id, preserving first-seen order. Spans are small (one root
  // op plus its cascade/effects), so a linear scan with an index map is fine.
  std::vector<uint64_t> order;
  std::vector<std::vector<const JournalRecord*>> groups;
  for (const JournalRecord& record : records) {
    size_t slot = order.size();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == record.span) {
        slot = i;
        break;
      }
    }
    if (slot == order.size()) {
      order.push_back(record.span);
      groups.emplace_back();
    }
    groups[slot].push_back(&record);
  }

  std::ostringstream out;
  out << "{\"spans\":[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    // Root label: the dispatch record's op when the span crossed Dispatch(),
    // otherwise the first record's event (direct monitor call / boot).
    std::string root;
    for (const JournalRecord* record : groups[i]) {
      if (record->event == static_cast<uint8_t>(JournalEvent::kDispatch)) {
        root = op_name(record->op);
        break;
      }
    }
    if (root.empty()) {
      root = JournalEventName(static_cast<JournalEvent>(groups[i][0]->event));
    }
    out << "{\"span\":" << order[i] << ",\"root\":\"" << root
        << "\",\"records\":[";
    for (size_t j = 0; j < groups[i].size(); ++j) {
      const JournalRecord& record = *groups[i][j];
      if (j != 0) {
        out << ",";
      }
      out << "{\"seq\":" << record.seq << ",\"event\":\""
          << JournalEventName(static_cast<JournalEvent>(record.event)) << "\"";
      if (record.op != kJournalNoOp) {
        out << ",\"op\":\"" << op_name(record.op) << "\"";
      }
      if (record.cap != 0) {
        out << ",\"cap\":" << record.cap;
      }
      if (record.result != 0) {
        out << ",\"error\":" << record.result;
      }
      out << "}";
    }
    out << "]}";
  }
  out << "]}";

  // Head digest prefix so two span trees from the same chain are linkable.
  if (!records.empty()) {
    std::ostringstream head;
    AppendHex(&head, records.back().link, 8);
    std::string body = out.str();
    body.pop_back();  // trailing '}'
    return body + ",\"head\":\"" + head.str() + "\"}";
  }
  return out.str();
}

}  // namespace tyche
