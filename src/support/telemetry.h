// Copyright 2026 The Tyche Reproduction Authors.
// Zero-dependency observability primitives for the monitor stack.
//
// The paper's auditability story needs more than enforcement: every policy
// decision the monitor takes must be *observable and attributable*. This
// layer provides the measurement substrate:
//
//  - TraceRing: a lock-protected, fixed-capacity ring buffer recording one
//    entry per ABI call crossing Dispatch() -- op, core, caller domain, an
//    FNV-1a digest of the argument registers, the error code, and the
//    wall-clock nanoseconds the monitor spent on the call. Old entries are
//    overwritten (and counted as dropped) so tracing never allocates on the
//    hot path after construction.
//  - LatencyHistogram: log2-bucketed, mergeable. Bucket i counts values v
//    with 2^(i-1) < v <= 2^i (bucket 0 counts 0 and 1). Good enough for
//    p50/p99 at power-of-two resolution without storing samples.
//  - Telemetry: per-op histograms plus the ring, with independent enable
//    switches so the instrumentation cost itself can be benchmarked
//    (bench_telemetry) and turned off on production hot paths.
//
// Everything here is deliberately independent of the monitor's types: the
// per-op dimension is just an index, named via a caller-provided callback
// when dumping. This keeps src/support free of upward dependencies.

#ifndef SRC_SUPPORT_TELEMETRY_H_
#define SRC_SUPPORT_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/metrics.h"

namespace tyche {

// FNV-1a over an array of 64-bit words; used to attribute a trace entry to
// its arguments without storing (possibly sensitive) raw register values.
uint64_t Fnv1aDigest(const uint64_t* words, size_t count);

// One record per monitor ABI call.
struct TraceEntry {
  uint64_t seq = 0;          // monotonically increasing, first call = 0
  uint16_t op = 0;           // ApiOp value at the dispatch boundary
  uint32_t core = 0;
  uint32_t domain = 0;       // caller domain (~0u when unresolvable)
  uint64_t span = 0;         // causal span id shared with journal records
  uint64_t args_digest = 0;  // FNV-1a of the six argument registers
  uint64_t error = 0;        // ErrorCode (0 = OK)
  uint64_t duration_ns = 0;  // monitor-side wall-clock time
  uint64_t start_ns = 0;     // steady-clock start of the call (0 = unknown);
                             // places the entry on the trace_export timeline
};

inline constexpr uint32_t kTraceNoDomain = ~0u;

// Fixed-capacity, lock-protected ring of TraceEntry. Thread-safe.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceRing(size_t capacity = kDefaultCapacity);

  // Start / stop recording. Record() is a no-op while stopped.
  void Start() { enabled_.store(true, std::memory_order_relaxed); }
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records one entry, assigning its sequence number. Overwrites the oldest
  // entry when full.
  void Record(TraceEntry entry);

  // Entries currently held, oldest first.
  std::vector<TraceEntry> Snapshot() const;

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;  // total Record() calls that took effect
  uint64_t dropped() const;   // of those, how many overwrote an older entry
  void Clear();

  // Human-readable dump, one line per entry (oldest first).
  std::string DumpText(const std::function<std::string(uint16_t)>& op_name) const;
  // JSON array of entry objects.
  std::string DumpJson(const std::function<std::string(uint16_t)>& op_name) const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEntry> ring_;  // size capacity_, slot = seq % capacity_
  uint64_t next_seq_ = 0;
};

// Log2-bucketed histogram of non-negative 64-bit values. Not thread-safe by
// itself (Telemetry serializes access); plain data so it copies and merges.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);
  void Merge(const LatencyHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Upper bound of the bucket containing the p-th percentile (p in [0,100]).
  // Returns 0 on an empty histogram. Percentile(50) / Percentile(99) are the
  // p50/p99 used in telemetry summaries.
  uint64_t Percentile(double p) const;

  // Inclusive upper bound of values landing in bucket i.
  static uint64_t BucketUpperBound(size_t i);

 private:
  std::array<uint64_t, kBuckets> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

// The aggregate carried by the monitor: one latency histogram per ABI op
// plus the trace ring. Thread-safe.
class Telemetry {
 public:
  explicit Telemetry(size_t op_count, size_t ring_capacity = TraceRing::kDefaultCapacity);

  // Independent switches: the ring and the histograms can be costed apart.
  void set_trace_enabled(bool enabled);
  void set_histograms_enabled(bool enabled) {
    histograms_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool trace_enabled() const { return ring_.enabled(); }
  bool histograms_enabled() const {
    return histograms_enabled_.load(std::memory_order_relaxed);
  }
  // True when any instrumentation is live; the dispatcher skips clock reads
  // entirely when this is false, so disabled telemetry costs two loads.
  bool any_enabled() const { return trace_enabled() || histograms_enabled(); }

  // Records one ABI call into the ring (if tracing) and the op's histogram
  // (if histograms are on). `entry.seq` is assigned by the ring.
  void RecordCall(const TraceEntry& entry);

  size_t op_count() const { return op_count_; }
  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }

  LatencyHistogram OpHistogram(size_t op) const;
  std::vector<LatencyHistogram> AllHistograms() const;
  // All per-op histograms merged into one.
  LatencyHistogram MergedHistogram() const;
  void ClearHistograms();

  // Per-op latency table: "op  count  p50  p99  max  total_ns" lines for
  // ops with at least one sample.
  std::string SummaryText(const std::function<std::string(uint16_t)>& op_name) const;

  // Lock-contention counters for concurrent dispatch: bumped by the monitor's
  // conditional guards whenever a try_lock fails and the thread has to block
  // (see src/support/locking.h). Always-on striped counters — a contended
  // acquisition already paid for a cache miss, and striping keeps eight
  // blocking threads from fighting over the counter line too.
  StripedCounter* exclusive_contention() { return &exclusive_contention_; }
  StripedCounter* shared_contention() { return &shared_contention_; }
  uint64_t exclusive_contention_count() const { return exclusive_contention_.Value(); }
  uint64_t shared_contention_count() const { return shared_contention_.Value(); }

  // Wait-TIME companions to the counters above: total nanoseconds threads
  // spent blocked in each guard class (api exclusive, api shared, domain
  // shard). Contention is thereby attributed, not inferred from throughput:
  // the guards measure the block and add the delta here, and the dispatch
  // profiler charges the same interval to its lock-wait phases.
  StripedCounter* exclusive_wait_ns() { return &exclusive_wait_ns_; }
  StripedCounter* shared_wait_ns() { return &shared_wait_ns_; }
  StripedCounter* shard_wait_ns() { return &shard_wait_ns_; }
  uint64_t exclusive_wait_ns_total() const { return exclusive_wait_ns_.Value(); }
  uint64_t shared_wait_ns_total() const { return shared_wait_ns_.Value(); }
  uint64_t shard_wait_ns_total() const { return shard_wait_ns_.Value(); }

 private:
  const size_t op_count_;
  std::atomic<bool> histograms_enabled_{true};
  StripedCounter exclusive_contention_;
  StripedCounter shared_contention_;
  StripedCounter exclusive_wait_ns_;
  StripedCounter shared_wait_ns_;
  StripedCounter shard_wait_ns_;
  mutable std::mutex mu_;  // guards per_op_
  std::vector<LatencyHistogram> per_op_;
  TraceRing ring_;
};

}  // namespace tyche

#endif  // SRC_SUPPORT_TELEMETRY_H_
