// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/faults.h"

#include <utility>

#include "src/support/prng.h"

namespace tyche {

const std::vector<std::string_view>& AllFaultSites() {
  static const std::vector<std::string_view> kSites = {
      faults::kFrameAlloc,       faults::kIommuAttach,
      faults::kRangeAlloc,       faults::kAeadOpen,
      faults::kVtxCreateContext, faults::kVtxSyncMemory,
      faults::kVtxAttachDevice,  faults::kVtxDetachDevice,
      faults::kVtxBindCore,      faults::kPmpCreateContext,
      faults::kPmpRecompile,     faults::kPmpBindCore,
      faults::kPmpSyncDevice,    faults::kPmpAttachDevice,
      faults::kPmpDetachDevice,  faults::kEnginePurgeRevoke,
      faults::kMigrateFreeze,    faults::kMigrateCapture,
      faults::kMigrateTransfer,  faults::kMigrateRestore,
      faults::kMigrateResync,    faults::kMigrateCommit,
      faults::kChannelDrop,      faults::kChannelDup,
      faults::kChannelReorder,   faults::kFleetNodeCrash,
      faults::kFleetVerifyTimeout, faults::kFleetBreakerProbe,
      faults::kFleetCachePoison, faults::kFleetQueueOverflow,
      faults::kFleetBatchForge,
  };
  return kSites;
}

ErrorCode DefaultFaultCode(std::string_view site) {
  if (site == faults::kFrameAlloc || site == faults::kRangeAlloc) {
    return ErrorCode::kResourceExhausted;
  }
  if (site == faults::kIommuAttach || site == faults::kVtxAttachDevice ||
      site == faults::kVtxDetachDevice || site == faults::kPmpAttachDevice ||
      site == faults::kPmpDetachDevice || site == faults::kPmpSyncDevice) {
    return ErrorCode::kIommuFault;
  }
  if (site == faults::kAeadOpen) {
    return ErrorCode::kSignatureInvalid;
  }
  if (site == faults::kPmpRecompile) {
    return ErrorCode::kPmpExhausted;
  }
  if (site == faults::kVtxSyncMemory) {
    return ErrorCode::kAccessViolation;
  }
  if (site == faults::kMigrateFreeze || site == faults::kMigrateCapture ||
      site == faults::kMigrateTransfer || site == faults::kMigrateRestore ||
      site == faults::kMigrateResync || site == faults::kMigrateCommit) {
    // A killed migration stage surfaces as a precondition failure of the
    // staged commit; the protocol converts it into a journaled abort.
    return ErrorCode::kFailedPrecondition;
  }
  if (site == faults::kFleetNodeCrash || site == faults::kFleetBreakerProbe) {
    return ErrorCode::kUnavailable;
  }
  if (site == faults::kFleetVerifyTimeout) {
    return ErrorCode::kDeadlineExceeded;
  }
  if (site == faults::kFleetCachePoison) {
    return ErrorCode::kAttestationMismatch;
  }
  if (site == faults::kFleetBatchForge) {
    return ErrorCode::kSignatureInvalid;
  }
  if (site == faults::kFleetQueueOverflow) {
    return ErrorCode::kOverloaded;
  }
  return ErrorCode::kInternal;
}

FaultPlan FaultPlan::Single(std::string_view site, uint64_t trigger,
                            ErrorCode code) {
  FaultPlan plan;
  plan.Add(FaultSpec{std::string(site), trigger, code, /*repeat=*/false});
  return plan;
}

FaultPlan FaultPlan::FromSeed(
    uint64_t seed, const std::map<std::string, uint64_t>& occurrences) {
  // Weight sites by occurrence count so every (site, occurrence) pair in the
  // workload is equally likely, not every site.
  uint64_t total = 0;
  for (const auto& [site, count] : occurrences) {
    total += count;
  }
  FaultPlan plan;
  if (total == 0) {
    return plan;
  }
  Prng prng(seed);
  uint64_t pick = prng.Below(total);
  for (const auto& [site, count] : occurrences) {
    if (pick < count) {
      plan.Add(FaultSpec{site, /*trigger=*/pick + 1, DefaultFaultCode(site),
                         /*repeat=*/false});
      break;
    }
    pick -= count;
  }
  return plan;
}

FaultPlan& FaultPlan::Add(FaultSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

std::string FaultPlan::ToString() const {
  std::string out = "{";
  for (const FaultSpec& spec : specs_) {
    if (out.size() > 1) {
      out += ", ";
    }
    out += spec.site;
    out += "@";
    out += std::to_string(spec.trigger);
    if (spec.repeat) {
      out += "+";
    }
    out += "->";
    out += std::string(ErrorCodeName(spec.code));
  }
  out += "}";
  return out;
}

std::atomic<bool> FaultInjector::active_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::UpdateActiveLocked() {
  active_.store(armed_ || counting_, std::memory_order_relaxed);
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  armed_ = true;
  hits_.clear();
  fired_.clear();
  UpdateActiveLocked();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  plan_ = FaultPlan();
  hits_.clear();
  UpdateActiveLocked();
}

void FaultInjector::StartCounting() {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = true;
  hits_.clear();
  UpdateActiveLocked();
}

std::map<std::string, uint64_t> FaultInjector::StopCounting() {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = false;
  std::map<std::string, uint64_t> counts(hits_.begin(), hits_.end());
  hits_.clear();
  UpdateActiveLocked();
  return counts;
}

Status FaultInjector::Check(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  if (it == hits_.end()) {
    it = hits_.emplace(std::string(site), 0).first;
  }
  const uint64_t occurrence = ++it->second;
  if (!armed_) {
    return OkStatus();
  }
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.site != site) {
      continue;
    }
    const bool hit =
        spec.repeat ? occurrence >= spec.trigger : occurrence == spec.trigger;
    if (hit) {
      fired_.push_back(std::string(site));
      lifetime_fired_.fetch_add(1, std::memory_order_relaxed);
      return Error(spec.code, "injected fault: " + std::string(site) + "#" +
                                  std::to_string(occurrence));
    }
  }
  return OkStatus();
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_.size();
}

std::vector<std::string> FaultInjector::fired_sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t FaultInjector::total_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, count] : hits_) {
    total += count;
  }
  return total;
}

}  // namespace tyche
