// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/flight_recorder.h"

#include <sstream>

namespace tyche {

namespace {

uint64_t DedupKey(uint16_t op, uint64_t error) {
  // Non-zero even for (0, 0): key 0 marks an empty slot.
  return (static_cast<uint64_t>(op) << 48) ^ (error + 1);
}

void AppendJsonString(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

FlightRecorder::FlightRecorder(const TraceRing* ring, const MetricsRegistry* registry,
                               size_t capacity, size_t last_n)
    : ring_(ring), registry_(registry), capacity_(capacity), last_n_(last_n) {}

bool FlightRecorder::OnDispatchError(uint16_t op, uint64_t span, uint64_t error) {
  if (!enabled()) {
    return false;
  }
  const uint64_t key = DedupKey(op, error);
  std::atomic<uint64_t>& slot = seen_[key % kDedupSlots];
  if (slot.load(std::memory_order_relaxed) == key) {
    return false;  // this failure shape is already on record
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (slot.load(std::memory_order_relaxed) == key) {
    return false;
  }
  slot.store(key, std::memory_order_relaxed);
  CaptureLocked("dispatch_error", op, span, error, "");
  return true;
}

void FlightRecorder::Capture(const std::string& reason, uint16_t op, uint64_t span,
                             uint64_t error, const std::string& detail) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  CaptureLocked(reason, op, span, error, detail);
}

void FlightRecorder::CaptureLocked(const std::string& reason, uint16_t op, uint64_t span,
                                   uint64_t error, const std::string& detail) {
  FlightRecord record;
  record.id = captures_.fetch_add(1, std::memory_order_relaxed);
  record.reason = reason;
  record.op = op;
  record.span = span;
  record.error = error;
  record.detail = detail;
  if (ring_ != nullptr) {
    record.trace = ring_->Snapshot();
    if (record.trace.size() > last_n_) {
      record.trace.erase(record.trace.begin(),
                         record.trace.end() - static_cast<ptrdiff_t>(last_n_));
    }
  }
  if (registry_ != nullptr) {
    // Native series only: captures run on dispatch threads, and callback
    // metrics read state that another thread may be mutating under its own
    // lock. Striped counters and gauges are atomic, so they are always safe.
    for (const auto& [name, value] : registry_->ScalarValues(/*include_callbacks=*/false)) {
      const auto it = last_values_.find(name);
      const uint64_t previous = it == last_values_.end() ? 0 : it->second;
      if (value != previous) {
        record.metrics_delta.emplace_back(
            name, static_cast<int64_t>(value) - static_cast<int64_t>(previous));
      }
      last_values_[name] = value;
    }
  }
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
  }
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  last_values_.clear();
  for (std::atomic<uint64_t>& slot : seen_) {
    slot.store(0, std::memory_order_relaxed);
  }
}

std::string FlightRecorder::DumpJson(
    const std::function<std::string(uint16_t)>& op_name) const {
  const std::vector<FlightRecord> records = Snapshot();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const FlightRecord& record = records[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"id\":" << record.id << ",\"reason\":";
    AppendJsonString(out, record.reason);
    out << ",\"op\":";
    AppendJsonString(out, op_name ? op_name(record.op) : std::to_string(record.op));
    out << ",\"span\":" << record.span << ",\"error\":" << record.error << ",\"detail\":";
    AppendJsonString(out, record.detail);
    out << ",\"trace\":[";
    for (size_t j = 0; j < record.trace.size(); ++j) {
      const TraceEntry& entry = record.trace[j];
      if (j > 0) {
        out << ",";
      }
      out << "{\"seq\":" << entry.seq << ",\"op\":";
      AppendJsonString(out, op_name ? op_name(entry.op) : std::to_string(entry.op));
      out << ",\"core\":" << entry.core << ",\"domain\":" << entry.domain
          << ",\"span\":" << entry.span << ",\"error\":" << entry.error
          << ",\"duration_ns\":" << entry.duration_ns << "}";
    }
    out << "],\"metrics_delta\":{";
    for (size_t j = 0; j < record.metrics_delta.size(); ++j) {
      if (j > 0) {
        out << ",";
      }
      AppendJsonString(out, record.metrics_delta[j].first);
      out << ":" << record.metrics_delta[j].second;
    }
    out << "}}";
  }
  out << "]";
  return out.str();
}

}  // namespace tyche
