// Copyright 2026 The Tyche Reproduction Authors.
// Error codes and a lightweight Result<T> used across the whole stack.
//
// The isolation monitor never throws: every fallible operation returns a
// Status or a Result<T>. Error codes mirror the failure classes the paper's
// monitor must distinguish (invalid policies, capability violations,
// hardware-backend exhaustion, attestation mismatches).

#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tyche {

enum class ErrorCode : uint8_t {
  kOk = 0,
  // Generic argument / state errors.
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Capability-model errors.
  kCapabilityRevoked,
  kCapabilityRightsViolation,
  kCapabilityNotOwned,
  // Monitor / domain errors.
  kDomainSealed,
  kDomainNotSealed,
  kDomainDead,
  kPolicyViolation,
  kTransitionDenied,
  // Hardware-backend errors.
  kAccessViolation,
  kPmpExhausted,
  kPmpLayoutUnsupported,
  kIommuFault,
  // Attestation errors.
  kAttestationMismatch,
  kSignatureInvalid,
  // Journal / recovery errors. Distinguished so an operator (and the
  // journal_verify exit code) can tell "history was mutated" from "signature
  // does not check out" from "replay disagrees with the claimed state".
  kJournalChainBroken,
  kJournalSignatureInvalid,
  kJournalReplayDivergence,
  // Migration errors. A frozen domain rejects operations with kMigrating so
  // callers degrade gracefully instead of stalling on a lock.
  kMigrating,
  // Fleet / verification-front-end errors (DESIGN.md §12). These are the
  // typed availability verdicts a client can act on: kUnavailable and
  // kOverloaded are retryable after backoff, kDeadlineExceeded means the
  // caller's own deadline lapsed first. None of them ever stands in for a
  // failed measurement check — integrity failures keep their own codes.
  kUnavailable,       // monitor down, mid-recovery, or breaker open
  kOverloaded,        // admission queue full; request shed, not dropped
  kDeadlineExceeded,  // no verdict before the request's deadline
  kQuotaExceeded,     // the TENANT's token bucket is empty — distinct from
                      // kOverloaded (the shared queue is full): retrying
                      // sooner will not help, waiting for refill will
};

// Human-readable name for an error code (stable, used in logs and tests).
std::string_view ErrorCodeName(ErrorCode code);

// A status: either OK or an error code plus a context message.
//
// [[nodiscard]]: a dropped Status is a swallowed failure — exactly the class
// of bug that tears capability state from hardware state. Call sites that
// genuinely cannot act on an error must route it through a logging helper
// (see Monitor's BestEffort) rather than discarding it.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status Error(ErrorCode code, std::string message = "") {
  return Status(code, std::move(message));
}

// Result<T>: either a value or an error Status. Minimal analogue of
// absl::StatusOr<T>, sufficient for the monitor's no-exception style.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` works in functions
  // returning Result<T>.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)), status_(Status::Ok()) {}
  Result(Status status)                          // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}
  Result(ErrorCode code, std::string message = "")
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_{ErrorCode::kInternal, "result not initialized"};
};

// Propagation helpers.
#define TYCHE_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::tyche::Status _status = (expr);        \
    if (!_status.ok()) {                     \
      return _status;                        \
    }                                        \
  } while (0)

#define TYCHE_ASSIGN_OR_RETURN(lhs, expr)    \
  TYCHE_ASSIGN_OR_RETURN_IMPL(               \
      TYCHE_CONCAT_(_result_, __LINE__), lhs, expr)

#define TYCHE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define TYCHE_CONCAT_INNER_(a, b) a##b
#define TYCHE_CONCAT_(a, b) TYCHE_CONCAT_INNER_(a, b)

}  // namespace tyche

#endif  // SRC_SUPPORT_STATUS_H_
