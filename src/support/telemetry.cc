// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/telemetry.h"

#include <algorithm>
#include <sstream>

namespace tyche {

uint64_t Fnv1aDigest(const uint64_t* words, size_t count) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < count; ++i) {
    uint64_t word = words[i];
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= word & 0xff;
      hash *= 0x100000001b3ull;
      word >>= 8;
    }
  }
  return hash;
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceRing::Record(TraceEntry entry) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  ring_[entry.seq % capacity_] = entry;
}

std::vector<TraceEntry> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEntry> out;
  const uint64_t held = std::min<uint64_t>(next_seq_, capacity_);
  out.reserve(held);
  for (uint64_t seq = next_seq_ - held; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = 0;
  std::fill(ring_.begin(), ring_.end(), TraceEntry{});
}

std::string TraceRing::DumpText(
    const std::function<std::string(uint16_t)>& op_name) const {
  std::ostringstream out;
  for (const TraceEntry& entry : Snapshot()) {
    out << "#" << entry.seq << " " << op_name(entry.op) << " core=" << entry.core;
    if (entry.domain == kTraceNoDomain) {
      out << " domain=?";
    } else {
      out << " domain=" << entry.domain;
    }
    out << " span=" << entry.span << " args=0x" << std::hex << entry.args_digest
        << std::dec << " err=" << entry.error << " ns=" << entry.duration_ns << "\n";
  }
  return out.str();
}

std::string TraceRing::DumpJson(
    const std::function<std::string(uint16_t)>& op_name) const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TraceEntry& entry : Snapshot()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"seq\":" << entry.seq << ",\"op\":\"" << op_name(entry.op)
        << "\",\"core\":" << entry.core << ",\"domain\":";
    if (entry.domain == kTraceNoDomain) {
      out << "null";
    } else {
      out << entry.domain;
    }
    out << ",\"span\":" << entry.span << ",\"args_digest\":" << entry.args_digest
        << ",\"error\":" << entry.error << ",\"duration_ns\":" << entry.duration_ns << "}";
  }
  out << "]";
  return out.str();
}

namespace {

size_t BucketIndex(uint64_t value) {
  if (value <= 1) {
    return 0;
  }
  // Smallest i with value <= 2^i, i.e. ceil(log2(value)). Values above 2^63
  // have no power-of-two upper bound in 64 bits; they land in the last
  // bucket (whose upper bound saturates to ~0) instead of indexing past it.
  return std::min<size_t>(LatencyHistogram::kBuckets - 1,
                          static_cast<size_t>(64 - __builtin_clzll(value - 1)));
}

}  // namespace

void LatencyHistogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Clear() { *this = LatencyHistogram{}; }

uint64_t LatencyHistogram::BucketUpperBound(size_t i) {
  return i >= 63 ? ~0ull : (1ull << i);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based (nearest-rank definition).
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(p / 100.0 * count_ + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return max_;
}

Telemetry::Telemetry(size_t op_count, size_t ring_capacity)
    : op_count_(op_count), per_op_(op_count), ring_(ring_capacity) {}

void Telemetry::set_trace_enabled(bool enabled) {
  if (enabled) {
    ring_.Start();
  } else {
    ring_.Stop();
  }
}

void Telemetry::RecordCall(const TraceEntry& entry) {
  if (histograms_enabled() && entry.op < op_count_) {
    std::lock_guard<std::mutex> lock(mu_);
    per_op_[entry.op].Record(entry.duration_ns);
  }
  ring_.Record(entry);
}

LatencyHistogram Telemetry::OpHistogram(size_t op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return op < op_count_ ? per_op_[op] : LatencyHistogram{};
}

std::vector<LatencyHistogram> Telemetry::AllHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_op_;
}

LatencyHistogram Telemetry::MergedHistogram() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencyHistogram merged;
  for (const LatencyHistogram& histogram : per_op_) {
    merged.Merge(histogram);
  }
  return merged;
}

void Telemetry::ClearHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (LatencyHistogram& histogram : per_op_) {
    histogram.Clear();
  }
}

std::string Telemetry::SummaryText(
    const std::function<std::string(uint16_t)>& op_name) const {
  const std::vector<LatencyHistogram> histograms = AllHistograms();
  std::ostringstream out;
  out << "op                         calls       p50(ns)     p99(ns)     max(ns)\n";
  for (size_t op = 0; op < histograms.size(); ++op) {
    const LatencyHistogram& histogram = histograms[op];
    if (histogram.count() == 0) {
      continue;
    }
    std::string name = op_name(static_cast<uint16_t>(op));
    name.resize(24, ' ');
    out << name << " " << histogram.count();
    for (const uint64_t value :
         {histogram.Percentile(50), histogram.Percentile(99), histogram.max()}) {
      out << "  " << value;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tyche
