// Copyright 2026 The Tyche Reproduction Authors.

#include "src/baseline/monopoly.h"

namespace tyche {

CommodityStack::CommodityStack() {
  MonopolyActor hypervisor;
  hypervisor.id = 0;
  hypervisor.name = "hypervisor";
  hypervisor.level = PrivLevel::kHypervisor;
  hypervisor.parent = 0;
  actors_[0] = hypervisor;
}

uint32_t CommodityStack::AddActor(const std::string& name, PrivLevel level,
                                  uint32_t parent) {
  const uint32_t id = next_id_++;
  MonopolyActor actor;
  actor.id = id;
  actor.name = name;
  actor.level = level;
  actor.parent = parent;
  actors_[id] = actor;
  return id;
}

Status CommodityStack::Assign(uint32_t parent, uint32_t child, AddrRange range) {
  const auto child_it = actors_.find(child);
  if (child_it == actors_.end()) {
    return Error(ErrorCode::kNotFound, "no such actor");
  }
  if (child_it->second.parent != parent) {
    return Error(ErrorCode::kPolicyViolation, "only the parent assigns resources");
  }
  assignments_[child].push_back(range);
  return OkStatus();
}

bool CommodityStack::IsAncestorOrSelf(uint32_t ancestor, uint32_t actor) const {
  uint32_t current = actor;
  for (int depth = 0; depth < 16; ++depth) {
    if (current == ancestor) {
      return true;
    }
    const auto it = actors_.find(current);
    if (it == actors_.end() || it->second.parent == current) {
      return false;
    }
    current = it->second.parent;
  }
  return false;
}

bool CommodityStack::CanAccess(uint32_t actor, AddrRange range) const {
  // The actor reaches every range assigned to itself or to anything it
  // transitively supervises.
  for (const auto& [holder, ranges] : assignments_) {
    if (!IsAncestorOrSelf(actor, holder)) {
      continue;
    }
    for (const AddrRange& assigned : ranges) {
      if (assigned.Contains(range)) {
        return true;
      }
    }
  }
  return false;
}

Status CommodityStack::ProtectFromAncestors(uint32_t actor, AddrRange range) {
  (void)actor;
  (void)range;
  // Page tables and EPTs are owned by the level above; a child has no
  // mechanism to retract its ancestors' mappings.
  return Error(ErrorCode::kUnimplemented,
               "privilege hierarchies cannot isolate a child from its ancestors");
}

Status CommodityStack::Attest(uint32_t actor) const {
  (void)actor;
  return Error(ErrorCode::kUnimplemented,
               "commodity systems provide no verifiable isolation evidence");
}

const MonopolyActor* CommodityStack::GetActor(uint32_t id) const {
  const auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : &it->second;
}

}  // namespace tyche
