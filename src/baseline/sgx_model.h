// Copyright 2026 The Tyche Reproduction Authors.
// A behavioural model of SGX-style enclaves: the baseline Tyche-enclaves are
// compared against in §4.2. The model captures the ARCHITECTURAL contract
// (life cycle, EPC scarcity, measurement) and, deliberately, the three
// limitations the paper calls out:
//   1. implicit host-address-space access: enclave code can read/write ALL
//      of its host process's memory, so leakage needs no explicit sharing;
//   2. one enclave virtual range per process, no overlap, no address reuse
//      after teardown (ELRANGE is fixed at build time);
//   3. no nesting and no enclave-to-enclave sharing.
// Cycle costs follow published measurements (EENTER+EEXIT ~ 7-8k cycles).

#ifndef SRC_BASELINE_SGX_MODEL_H_
#define SRC_BASELINE_SGX_MODEL_H_

#include <map>
#include <set>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/hw/cost_model.h"
#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

using SgxEnclaveId = uint32_t;

struct SgxCosts {
  uint64_t ecreate = 20000;
  uint64_t eadd_per_page = 4500;   // copy + EPCM update + EEXTEND x2
  uint64_t einit = 60000;          // launch token + sigstruct checks
  uint64_t eenter = 3800;
  uint64_t eexit = 3300;
  uint64_t eremove_per_page = 1200;
};

class SgxProcessor {
 public:
  // `epc_pages`: size of the Enclave Page Cache (the scarce resource; 93.5
  // MiB usable on classic client parts).
  SgxProcessor(uint64_t epc_pages, CycleAccount* cycles);

  // Creates an enclave in `process` covering virtual range `elrange`.
  // Fails if the range overlaps any live or PREVIOUSLY USED range in the
  // process (no address reuse), or if called from enclave mode (no nesting).
  Result<SgxEnclaveId> Ecreate(uint32_t process, AddrRange elrange);

  // Adds one page of initial content (consumes EPC; extends MRENCLAVE).
  Status Eadd(SgxEnclaveId enclave, uint64_t page_offset,
              std::span<const uint8_t> content);

  // Finalizes the measurement; the enclave becomes enterable.
  Status Einit(SgxEnclaveId enclave);

  // Synchronous enclave call. While inside, the processor is "in enclave
  // mode" for that process.
  Status Eenter(SgxEnclaveId enclave);
  Status Eexit(SgxEnclaveId enclave);

  // Tears the enclave down, freeing EPC. The ELRANGE remains burned.
  Status Eremove(SgxEnclaveId enclave);

  Result<Digest> MrEnclave(SgxEnclaveId enclave) const;

  // The §4.2 deltas, exposed explicitly so benches can show them failing:
  // enclave-to-enclave page sharing does not exist in the model's contract.
  Status ShareBetweenEnclaves(SgxEnclaveId from, SgxEnclaveId to, AddrRange range);

  // Whether enclave code implicitly reaches host memory (always true: this
  // is the accidental-leakage channel Tyche closes).
  static constexpr bool kEnclaveSeesHostMemory = true;

  uint64_t epc_free_pages() const { return epc_free_; }
  uint64_t live_enclaves() const;
  const SgxCosts& costs() const { return costs_; }

 private:
  struct SgxEnclave {
    uint32_t process = 0;
    AddrRange elrange;
    bool initialized = false;
    bool removed = false;
    uint64_t epc_pages = 0;
    Sha256 mrenclave_ctx;
    Digest mrenclave;
  };

  Result<SgxEnclave*> Get(SgxEnclaveId enclave);

  CycleAccount* cycles_;
  SgxCosts costs_;
  uint64_t epc_free_;
  std::map<SgxEnclaveId, SgxEnclave> enclaves_;
  // Per process: all ELRANGEs ever used (reuse forbidden).
  std::map<uint32_t, std::vector<AddrRange>> used_ranges_;
  // Which enclave (if any) the processor is currently executing.
  std::set<SgxEnclaveId> entered_;
  SgxEnclaveId next_id_ = 1;
};

}  // namespace tyche

#endif  // SRC_BASELINE_SGX_MODEL_H_
