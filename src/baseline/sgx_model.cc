// Copyright 2026 The Tyche Reproduction Authors.

#include "src/baseline/sgx_model.h"

namespace tyche {

SgxProcessor::SgxProcessor(uint64_t epc_pages, CycleAccount* cycles)
    : cycles_(cycles), epc_free_(epc_pages) {}

Result<SgxProcessor::SgxEnclave*> SgxProcessor::Get(SgxEnclaveId enclave) {
  const auto it = enclaves_.find(enclave);
  if (it == enclaves_.end() || it->second.removed) {
    return Error(ErrorCode::kNotFound, "no such enclave");
  }
  return &it->second;
}

Result<SgxEnclaveId> SgxProcessor::Ecreate(uint32_t process, AddrRange elrange) {
  if (!entered_.empty()) {
    // ECREATE is a privileged (ring-0) instruction; enclave mode cannot
    // issue it: no nesting, ever.
    return Error(ErrorCode::kUnimplemented, "SGX enclaves cannot nest");
  }
  if (elrange.empty() || !IsPowerOfTwo(elrange.size) ||
      !IsAligned(elrange.base, elrange.size)) {
    return Error(ErrorCode::kInvalidArgument, "ELRANGE must be naturally aligned pow2");
  }
  // One enclave range per process; no overlap with any live or past range.
  for (const AddrRange& used : used_ranges_[process]) {
    if (used.Overlaps(elrange)) {
      return Error(ErrorCode::kAlreadyExists,
                   "ELRANGE overlaps a previously used enclave range (no address reuse)");
    }
  }
  used_ranges_[process].push_back(elrange);
  const SgxEnclaveId id = next_id_++;
  SgxEnclave& enclave = enclaves_[id];
  enclave.process = process;
  enclave.elrange = elrange;
  enclave.mrenclave_ctx.Update(std::string_view("sgx-mrenclave-v1"));
  enclave.mrenclave_ctx.UpdateValue(elrange.base);
  enclave.mrenclave_ctx.UpdateValue(elrange.size);
  cycles_->Charge(costs_.ecreate);
  return id;
}

Status SgxProcessor::Eadd(SgxEnclaveId id, uint64_t page_offset,
                          std::span<const uint8_t> content) {
  TYCHE_ASSIGN_OR_RETURN(SgxEnclave * enclave, Get(id));
  if (enclave->initialized) {
    return Error(ErrorCode::kFailedPrecondition, "EADD after EINIT");
  }
  if (!IsPageAligned(page_offset) || page_offset >= enclave->elrange.size) {
    return Error(ErrorCode::kOutOfRange, "page outside ELRANGE");
  }
  if (content.size() > kPageSize) {
    return Error(ErrorCode::kInvalidArgument, "EADD takes at most one page");
  }
  if (epc_free_ == 0) {
    return Error(ErrorCode::kResourceExhausted, "EPC exhausted");
  }
  --epc_free_;
  ++enclave->epc_pages;
  enclave->mrenclave_ctx.UpdateValue(page_offset);
  std::vector<uint8_t> page(kPageSize, 0);
  std::copy(content.begin(), content.end(), page.begin());
  enclave->mrenclave_ctx.Update(std::span<const uint8_t>(page));
  cycles_->Charge(costs_.eadd_per_page);
  return OkStatus();
}

Status SgxProcessor::Einit(SgxEnclaveId id) {
  TYCHE_ASSIGN_OR_RETURN(SgxEnclave * enclave, Get(id));
  if (enclave->initialized) {
    return Error(ErrorCode::kFailedPrecondition, "already initialized");
  }
  enclave->initialized = true;
  enclave->mrenclave = enclave->mrenclave_ctx.Finalize();
  cycles_->Charge(costs_.einit);
  return OkStatus();
}

Status SgxProcessor::Eenter(SgxEnclaveId id) {
  TYCHE_ASSIGN_OR_RETURN(SgxEnclave * enclave, Get(id));
  if (!enclave->initialized) {
    return Error(ErrorCode::kFailedPrecondition, "EENTER before EINIT");
  }
  if (entered_.contains(id)) {
    return Error(ErrorCode::kFailedPrecondition, "already in enclave");
  }
  entered_.insert(id);
  cycles_->Charge(costs_.eenter);
  return OkStatus();
}

Status SgxProcessor::Eexit(SgxEnclaveId id) {
  if (entered_.erase(id) == 0) {
    return Error(ErrorCode::kFailedPrecondition, "not in enclave");
  }
  cycles_->Charge(costs_.eexit);
  return OkStatus();
}

Status SgxProcessor::Eremove(SgxEnclaveId id) {
  TYCHE_ASSIGN_OR_RETURN(SgxEnclave * enclave, Get(id));
  if (entered_.contains(id)) {
    return Error(ErrorCode::kFailedPrecondition, "enclave is executing");
  }
  epc_free_ += enclave->epc_pages;
  cycles_->Charge(costs_.eremove_per_page * enclave->epc_pages);
  enclave->epc_pages = 0;
  enclave->removed = true;
  // NOTE: the ELRANGE stays in used_ranges_: addresses are not reusable.
  return OkStatus();
}

Result<Digest> SgxProcessor::MrEnclave(SgxEnclaveId id) const {
  const auto it = enclaves_.find(id);
  if (it == enclaves_.end() || !it->second.initialized) {
    return Error(ErrorCode::kFailedPrecondition, "no measurement before EINIT");
  }
  return it->second.mrenclave;
}

Status SgxProcessor::ShareBetweenEnclaves(SgxEnclaveId from, SgxEnclaveId to,
                                          AddrRange range) {
  (void)from;
  (void)to;
  (void)range;
  // EPC pages belong to exactly one enclave; there is no architectural
  // sharing primitive. (Real deployments bounce through untrusted host
  // memory, which is exactly the leakage channel the paper criticizes.)
  return Error(ErrorCode::kUnimplemented, "SGX has no enclave-to-enclave sharing");
}

uint64_t SgxProcessor::live_enclaves() const {
  uint64_t count = 0;
  for (const auto& [id, enclave] : enclaves_) {
    if (!enclave.removed) {
      ++count;
    }
  }
  return count;
}

}  // namespace tyche
