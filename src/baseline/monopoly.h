// Copyright 2026 The Tyche Reproduction Authors.
// The commodity "monopoly" baseline (§2.2): a hierarchical stack in which
// each privilege level has unconditional access to everything at lower
// levels, isolation policies are whatever the level above says, and nothing
// is attestable. Used by the threat-model tests and the isolation-strength
// bench to show which attacks succeed without an isolation monitor.

#ifndef SRC_BASELINE_MONOPOLY_H_
#define SRC_BASELINE_MONOPOLY_H_

#include <map>
#include <string>
#include <vector>

#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

// Privilege levels of the commodity stack, most privileged first.
enum class PrivLevel : uint8_t {
  kHypervisor = 0,
  kGuestKernel = 1,
  kUserProcess = 2,
};

struct MonopolyActor {
  uint32_t id = 0;
  std::string name;
  PrivLevel level = PrivLevel::kUserProcess;
  uint32_t parent = 0;  // enforcing authority (kernel for processes, ...)
};

// A model of who-can-access-what under the privilege hierarchy. Memory is
// ASSIGNED to actors by their parent, but assignment is bookkeeping only:
// any ancestor in the privilege chain can access (and reassign) it at will.
class CommodityStack {
 public:
  CommodityStack();

  // Adds an actor below `parent`. The hypervisor is actor 0, pre-created.
  uint32_t AddActor(const std::string& name, PrivLevel level, uint32_t parent);

  // Parent assigns memory to a child (bookkeeping).
  Status Assign(uint32_t parent, uint32_t child, AddrRange range);

  // THE MONOPOLY: access succeeds iff the range is assigned to the actor
  // itself or to any TRANSITIVE descendant -- privileged code sees
  // everything below it, and nothing can opt out.
  bool CanAccess(uint32_t actor, AddrRange range) const;

  // What the hierarchy cannot express (returns an explanatory error):
  // a child isolating memory FROM its ancestors.
  Status ProtectFromAncestors(uint32_t actor, AddrRange range);
  // ... remotely verifiable evidence of the assignment state.
  Status Attest(uint32_t actor) const;

  const MonopolyActor* GetActor(uint32_t id) const;

 private:
  bool IsAncestorOrSelf(uint32_t ancestor, uint32_t actor) const;

  std::map<uint32_t, MonopolyActor> actors_;
  std::map<uint32_t, std::vector<AddrRange>> assignments_;
  uint32_t next_id_ = 1;
};

}  // namespace tyche

#endif  // SRC_BASELINE_MONOPOLY_H_
