// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/phys_memory.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(PhysMemoryTest, ReadWriteRoundTrip) {
  PhysMemory memory(64 * 1024);
  const std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(memory.Write(0x100, std::span<const uint8_t>(data)).ok());
  std::vector<uint8_t> out(5);
  ASSERT_TRUE(memory.Read(0x100, std::span<uint8_t>(out)).ok());
  EXPECT_EQ(out, data);
}

TEST(PhysMemoryTest, OutOfRangeRejected) {
  PhysMemory memory(4096);
  std::vector<uint8_t> buffer(16);
  EXPECT_EQ(memory.Read(4090, std::span<uint8_t>(buffer)).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(memory.Write(4096, std::span<const uint8_t>(buffer)).code(),
            ErrorCode::kOutOfRange);
  // Overflow-safe: addr + size wrapping must not pass the check.
  EXPECT_FALSE(memory.Read(~0ull - 4, std::span<uint8_t>(buffer)).ok());
}

TEST(PhysMemoryTest, Read64Write64) {
  PhysMemory memory(4096);
  ASSERT_TRUE(memory.Write64(8, 0xdeadbeefcafef00dULL).ok());
  const auto value = memory.Read64(8);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0xdeadbeefcafef00dULL);
}

TEST(PhysMemoryTest, ZeroErasesContent) {
  PhysMemory memory(8192);
  const std::vector<uint8_t> data(128, 0xff);
  ASSERT_TRUE(memory.Write(4096, std::span<const uint8_t>(data)).ok());
  ASSERT_TRUE(memory.Zero(4096, 128).ok());
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(memory.Read(4096, std::span<uint8_t>(out)).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(PhysMemoryTest, ViewReflectsMemory) {
  PhysMemory memory(4096);
  ASSERT_TRUE(memory.Write64(0, 0x1122334455667788ULL).ok());
  const auto view = memory.View(0, 8);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)[0], 0x88);
  EXPECT_EQ((*view)[7], 0x11);
  EXPECT_FALSE(memory.View(4000, 200).ok());
}

TEST(FrameAllocatorTest, AllocUnique) {
  FrameAllocator alloc(AddrRange{0x10000, 16 * kPageSize});
  std::set<uint64_t> frames;
  for (int i = 0; i < 16; ++i) {
    const auto frame = alloc.Alloc();
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(IsPageAligned(*frame));
    EXPECT_TRUE(frames.insert(*frame).second) << "duplicate frame";
  }
  EXPECT_EQ(alloc.free_frames(), 0u);
  EXPECT_EQ(alloc.Alloc().code(), ErrorCode::kResourceExhausted);
}

TEST(FrameAllocatorTest, FreeAndReuse) {
  FrameAllocator alloc(AddrRange{0, 2 * kPageSize});
  const uint64_t a = *alloc.Alloc();
  const uint64_t b = *alloc.Alloc();
  ASSERT_FALSE(alloc.Alloc().ok());
  ASSERT_TRUE(alloc.Free(a).ok());
  EXPECT_EQ(*alloc.Alloc(), a);
  (void)b;
}

TEST(FrameAllocatorTest, FreeOutsidePoolRejected) {
  FrameAllocator alloc(AddrRange{0x1000, kPageSize});
  EXPECT_FALSE(alloc.Free(0x100000).ok());
  EXPECT_FALSE(alloc.Free(0x1001).ok());  // unaligned
}

TEST(FrameAllocatorTest, ContiguousAllocation) {
  FrameAllocator alloc(AddrRange{0, 8 * kPageSize});
  const auto base = alloc.AllocContiguous(4);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 0u);
  const auto next = alloc.AllocContiguous(4);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 4 * kPageSize);
  EXPECT_FALSE(alloc.AllocContiguous(1).ok());
  EXPECT_FALSE(alloc.AllocContiguous(0).ok());
}

}  // namespace
}  // namespace tyche
