// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/nested_page_table.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

class NptTest : public ::testing::Test {
 protected:
  NptTest()
      : memory_(16ull << 20),
        frames_(AddrRange{0, 4ull << 20}),
        table_(*NestedPageTable::Create(&memory_, &frames_, &cycles_)) {}

  PhysMemory memory_;
  FrameAllocator frames_;
  CycleAccount cycles_;
  NestedPageTable table_;
};

TEST_F(NptTest, MapAndTranslate) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRW)).ok());
  const auto t = table_.Translate(0x5000, AccessType::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->host_addr, 0x9000u);
  EXPECT_EQ(t->perms.mask, Perms::kRW);
  EXPECT_EQ(t->levels_walked, 4);
  // Offset preserved.
  const auto t2 = table_.Translate(0x5123, AccessType::kWrite);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->host_addr, 0x9123u);
}

TEST_F(NptTest, PermissionEnforced) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  EXPECT_TRUE(table_.Translate(0x5000, AccessType::kRead).ok());
  EXPECT_EQ(table_.Translate(0x5000, AccessType::kWrite).code(),
            ErrorCode::kAccessViolation);
  EXPECT_EQ(table_.Translate(0x5000, AccessType::kExecute).code(),
            ErrorCode::kAccessViolation);
}

TEST_F(NptTest, UnmappedFaults) {
  EXPECT_FALSE(table_.Translate(0x5000, AccessType::kRead).ok());
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  EXPECT_FALSE(table_.Translate(0x6000, AccessType::kRead).ok());
}

TEST_F(NptTest, DoubleMapRejected) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  EXPECT_EQ(table_.MapPage(0x5000, 0xa000, Perms(Perms::kRead)).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(NptTest, UnalignedRejected) {
  EXPECT_FALSE(table_.MapPage(0x5001, 0x9000, Perms(Perms::kRead)).ok());
  EXPECT_FALSE(table_.MapPage(0x5000, 0x9001, Perms(Perms::kRead)).ok());
  EXPECT_FALSE(table_.MapPage(0x5000, 0x9000, Perms{}).ok());
}

TEST_F(NptTest, UnmapRemovesAccess) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRW)).ok());
  ASSERT_TRUE(table_.UnmapPage(0x5000).ok());
  EXPECT_FALSE(table_.Translate(0x5000, AccessType::kRead).ok());
  EXPECT_EQ(table_.UnmapPage(0x5000).code(), ErrorCode::kNotFound);
  EXPECT_EQ(table_.mapped_pages(), 0u);
}

TEST_F(NptTest, ProtectChangesPerms) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRWX)).ok());
  ASSERT_TRUE(table_.ProtectPage(0x5000, Perms(Perms::kRead)).ok());
  EXPECT_TRUE(table_.Translate(0x5000, AccessType::kRead).ok());
  EXPECT_FALSE(table_.Translate(0x5000, AccessType::kWrite).ok());
  // Protecting an unmapped page fails.
  EXPECT_FALSE(table_.ProtectPage(0x8000, Perms(Perms::kRead)).ok());
}

TEST_F(NptTest, MapRangeCoversAllPages) {
  ASSERT_TRUE(table_.MapRange(0x10000, 0x10000, 16 * kPageSize, Perms(Perms::kRW)).ok());
  EXPECT_EQ(table_.mapped_pages(), 16u);
  for (uint64_t off = 0; off < 16 * kPageSize; off += kPageSize) {
    EXPECT_TRUE(table_.Translate(0x10000 + off, AccessType::kRead).ok());
  }
}

TEST_F(NptTest, SparseAddressesAllocateSeparateTables) {
  const uint64_t frames_before = frames_.free_frames();
  // Two GPAs far apart (different L3 entries).
  ASSERT_TRUE(table_.MapPage(0, 0, Perms(Perms::kRead)).ok());
  ASSERT_TRUE(table_.MapPage(1ull << 39, 0x1000, Perms(Perms::kRead)).ok());
  // 3 tables for the first path + 3 for the second (shared root).
  EXPECT_EQ(frames_before - frames_.free_frames(), 6u);
  EXPECT_EQ(table_.table_frames(), 7u);
}

TEST_F(NptTest, ForEachMappingEnumerates) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  ASSERT_TRUE(table_.MapPage(0x7000, 0xb000, Perms(Perms::kRW)).ok());
  std::map<uint64_t, std::pair<uint64_t, uint8_t>> seen;
  table_.ForEachMapping([&](uint64_t gpa, uint64_t hpa, Perms perms) {
    seen[gpa] = {hpa, perms.mask};
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0x5000].first, 0x9000u);
  EXPECT_EQ(seen[0x7000].second, Perms::kRW);
}

TEST_F(NptTest, DestroyReleasesFrames) {
  const uint64_t before = frames_.free_frames();
  ASSERT_TRUE(table_.MapRange(0, 0, 64 * kPageSize, Perms(Perms::kRW)).ok());
  ASSERT_LT(frames_.free_frames(), before);
  ASSERT_TRUE(table_.Destroy().ok());
  // All table frames returned (the root was allocated pre-`before`).
  EXPECT_EQ(frames_.free_frames(), before + 1);
  EXPECT_FALSE(table_.Destroy().ok());
}

TEST_F(NptTest, WalkChargesCycles) {
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  cycles_.Reset();
  ASSERT_TRUE(table_.Translate(0x5000, AccessType::kRead).ok());
  EXPECT_EQ(cycles_.cycles(), 4 * CostModel::Default().page_walk_per_level);
}

}  // namespace
}  // namespace tyche
