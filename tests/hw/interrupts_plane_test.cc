// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/interrupts.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(InterruptPlaneTest, RouteDeliverTake) {
  InterruptPlane plane;
  const PciBdf nic(0, 3, 0);
  plane.Route(nic, /*domain=*/5);
  EXPECT_TRUE(plane.Raise(nic, 11));
  EXPECT_TRUE(plane.Raise(nic, 12));
  EXPECT_EQ(plane.PendingCount(5), 2u);
  const auto first = plane.Take(5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vector, 11u);  // FIFO order
  EXPECT_EQ(first->source, nic);
  EXPECT_EQ(plane.Take(5)->vector, 12u);
  EXPECT_FALSE(plane.Take(5).has_value());
  EXPECT_EQ(plane.stats().delivered, 2u);
}

TEST(InterruptPlaneTest, UnroutedDropsAndCounts) {
  InterruptPlane plane;
  EXPECT_FALSE(plane.Raise(PciBdf(0, 1, 0), 3));
  EXPECT_EQ(plane.stats().dropped, 1u);
  EXPECT_EQ(plane.stats().delivered, 0u);
}

TEST(InterruptPlaneTest, RoutesAreIndependentPerDevice) {
  InterruptPlane plane;
  const PciBdf vf0(0, 3, 1);
  const PciBdf vf1(0, 3, 2);
  plane.Route(vf0, 1);
  plane.Route(vf1, 2);
  EXPECT_TRUE(plane.Raise(vf0, 10));
  EXPECT_TRUE(plane.Raise(vf1, 20));
  EXPECT_EQ(plane.Take(1)->vector, 10u);
  EXPECT_EQ(plane.Take(2)->vector, 20u);
  EXPECT_FALSE(plane.Take(1).has_value());  // no cross-delivery
}

TEST(InterruptPlaneTest, UnrouteStopsDelivery) {
  InterruptPlane plane;
  const PciBdf nic(0, 3, 0);
  plane.Route(nic, 1);
  EXPECT_EQ(*plane.RouteOf(nic), 1u);
  plane.Unroute(nic);
  EXPECT_FALSE(plane.RouteOf(nic).has_value());
  EXPECT_FALSE(plane.Raise(nic, 1));
}

TEST(InterruptPlaneTest, PurgeDomainDropsRoutesAndPending) {
  InterruptPlane plane;
  const PciBdf a(0, 3, 0);
  const PciBdf b(0, 4, 0);
  plane.Route(a, 1);
  plane.Route(b, 2);
  EXPECT_TRUE(plane.Raise(a, 1));
  plane.PurgeDomain(1);
  EXPECT_EQ(plane.PendingCount(1), 0u);
  EXPECT_FALSE(plane.RouteOf(a).has_value());
  EXPECT_TRUE(plane.RouteOf(b).has_value());  // other domains untouched
}

TEST(InterruptPlaneTest, RerouteRedirectsNewInterrupts) {
  InterruptPlane plane;
  const PciBdf nic(0, 3, 0);
  plane.Route(nic, 1);
  EXPECT_TRUE(plane.Raise(nic, 7));
  plane.Route(nic, 2);  // ownership moved
  EXPECT_TRUE(plane.Raise(nic, 8));
  EXPECT_EQ(plane.Take(1)->vector, 7u);  // pre-move interrupt stays
  EXPECT_EQ(plane.Take(2)->vector, 8u);
}

}  // namespace
}  // namespace tyche
