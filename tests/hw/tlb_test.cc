// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/tlb.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(TlbTest, MissThenHit) {
  Tlb tlb;
  uint64_t frame = 0;
  Perms perms;
  EXPECT_FALSE(tlb.Lookup(0x5000, 1, &frame, &perms));
  tlb.Insert(0x5000, 1, 0x9000, Perms(Perms::kRW));
  ASSERT_TRUE(tlb.Lookup(0x5000, 1, &frame, &perms));
  EXPECT_EQ(frame, 0x9000u);
  EXPECT_EQ(perms.mask, Perms::kRW);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, AsidTagsSeparateDomains) {
  Tlb tlb;
  tlb.Insert(0x5000, 1, 0x9000, Perms(Perms::kRW));
  uint64_t frame = 0;
  Perms perms;
  // Same page, different ASID: miss (this is what makes VMFUNC switches
  // safe without a flush).
  EXPECT_FALSE(tlb.Lookup(0x5000, 2, &frame, &perms));
}

TEST(TlbTest, FlushDropsEverything) {
  Tlb tlb;
  CycleAccount cycles;
  tlb.Insert(0x5000, 1, 0x9000, Perms(Perms::kRW));
  tlb.Flush(&cycles);
  uint64_t frame = 0;
  Perms perms;
  EXPECT_FALSE(tlb.Lookup(0x5000, 1, &frame, &perms));
  EXPECT_EQ(tlb.stats().flushes, 1u);
  EXPECT_EQ(cycles.cycles(), CostModel::Default().tlb_flush);
}

TEST(TlbTest, ConflictEvicts) {
  Tlb tlb;
  // Two pages mapping to the same direct-mapped slot: the second insert
  // evicts the first.
  const uint64_t page_a = 0x0;
  const uint64_t page_b = static_cast<uint64_t>(Tlb::kEntries) << kPageShift;
  tlb.Insert(page_a, 1, 0x1000, Perms(Perms::kRead));
  tlb.Insert(page_b, 1, 0x2000, Perms(Perms::kRead));
  uint64_t frame = 0;
  Perms perms;
  EXPECT_FALSE(tlb.Lookup(page_a, 1, &frame, &perms));
  EXPECT_TRUE(tlb.Lookup(page_b, 1, &frame, &perms));
}

TEST(TlbTest, StatsReset) {
  Tlb tlb;
  uint64_t frame = 0;
  Perms perms;
  (void)tlb.Lookup(0, 0, &frame, &perms);
  tlb.ResetStats();
  EXPECT_EQ(tlb.stats().misses, 0u);
  EXPECT_EQ(tlb.stats().hits, 0u);
}

}  // namespace
}  // namespace tyche
