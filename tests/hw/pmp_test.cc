// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/pmp.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

PmpEntry Napot(uint64_t base, uint64_t size, uint8_t perms, bool locked = false) {
  PmpEntry entry;
  entry.mode = PmpAddressMode::kNapot;
  entry.perms = Perms(perms);
  entry.locked = locked;
  entry.addr = *PmpFile::EncodeNapot(base, size);
  return entry;
}

TEST(PmpEncodingTest, NapotRoundTrip) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x10000, 0x10000, Perms::kRW), nullptr).ok());
  const auto range = pmp.EntryRange(0);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->base, 0x10000u);
  EXPECT_EQ(range->size, 0x10000u);
}

TEST(PmpEncodingTest, NapotMinimumEightBytes) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x1000, 8, Perms::kRead), nullptr).ok());
  const auto range = pmp.EntryRange(0);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->base, 0x1000u);
  EXPECT_EQ(range->size, 8u);
}

TEST(PmpEncodingTest, RejectsBadNapot) {
  EXPECT_FALSE(PmpFile::EncodeNapot(0x1000, 4).ok());       // too small
  EXPECT_FALSE(PmpFile::EncodeNapot(0x1000, 3000).ok());    // not a power of two
  EXPECT_FALSE(PmpFile::EncodeNapot(0x1234, 0x1000).ok());  // misaligned base
}

TEST(PmpCheckTest, NapotAllowsContainedAccess) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x10000, 0x1000, Perms::kRW), nullptr).ok());
  EXPECT_TRUE(pmp.Check(0x10000, 8, AccessType::kRead, nullptr).ok());
  EXPECT_TRUE(pmp.Check(0x10ff8, 8, AccessType::kWrite, nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x10000, 8, AccessType::kExecute, nullptr).ok());
}

TEST(PmpCheckTest, NoMatchDenies) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x10000, 0x1000, Perms::kRW), nullptr).ok());
  EXPECT_EQ(pmp.Check(0x20000, 8, AccessType::kRead, nullptr).code(),
            ErrorCode::kAccessViolation);
}

TEST(PmpCheckTest, PartialOverlapFaults) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x10000, 0x1000, Perms::kRW), nullptr).ok());
  // Straddles the top of the region.
  EXPECT_FALSE(pmp.Check(0x10ffc, 8, AccessType::kRead, nullptr).ok());
}

TEST(PmpCheckTest, LowestNumberedEntryWins) {
  PmpFile pmp;
  // Entry 0: deny-all over the region; entry 1: allow. Priority rule says
  // the access is denied.
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x10000, 0x1000, Perms::kNone), nullptr).ok());
  ASSERT_TRUE(pmp.SetEntry(1, Napot(0x10000, 0x1000, Perms::kRW), nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x10000, 8, AccessType::kRead, nullptr).ok());
}

TEST(PmpTorTest, TorPairEnforced) {
  PmpFile pmp;
  PmpEntry bottom;
  bottom.mode = PmpAddressMode::kOff;
  bottom.addr = PmpFile::EncodeTorAddr(0x3000);
  PmpEntry top;
  top.mode = PmpAddressMode::kTor;
  top.perms = Perms(Perms::kRX);
  top.addr = PmpFile::EncodeTorAddr(0x6000);
  ASSERT_TRUE(pmp.SetEntry(4, bottom, nullptr).ok());
  ASSERT_TRUE(pmp.SetEntry(5, top, nullptr).ok());

  EXPECT_TRUE(pmp.Check(0x3000, 8, AccessType::kRead, nullptr).ok());
  EXPECT_TRUE(pmp.Check(0x5ff8, 8, AccessType::kExecute, nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x3000, 8, AccessType::kWrite, nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x2ff8, 8, AccessType::kRead, nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x6000, 8, AccessType::kRead, nullptr).ok());
}

TEST(PmpTorTest, TorAtIndexZeroUsesZeroBase) {
  PmpFile pmp;
  PmpEntry top;
  top.mode = PmpAddressMode::kTor;
  top.perms = Perms(Perms::kRead);
  top.addr = PmpFile::EncodeTorAddr(0x2000);
  ASSERT_TRUE(pmp.SetEntry(0, top, nullptr).ok());
  EXPECT_TRUE(pmp.Check(0x0, 8, AccessType::kRead, nullptr).ok());
  EXPECT_TRUE(pmp.Check(0x1ff8, 8, AccessType::kRead, nullptr).ok());
  EXPECT_FALSE(pmp.Check(0x2000, 8, AccessType::kRead, nullptr).ok());
}

TEST(PmpLockTest, LockedEntryCannotBeReprogrammed) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x0, 0x10000, Perms::kNone, /*locked=*/true), nullptr)
                  .ok());
  EXPECT_EQ(pmp.SetEntry(0, Napot(0x0, 0x10000, Perms::kRW), nullptr).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(pmp.ClearEntry(0, nullptr).ok());
}

TEST(PmpTest, IndexBounds) {
  PmpFile pmp;
  EXPECT_FALSE(pmp.SetEntry(-1, PmpEntry{}, nullptr).ok());
  EXPECT_FALSE(pmp.SetEntry(PmpFile::kNumEntries, PmpEntry{}, nullptr).ok());
  EXPECT_FALSE(pmp.GetEntry(PmpFile::kNumEntries).ok());
}

TEST(PmpTest, UsedEntriesCountsProgrammed) {
  PmpFile pmp;
  EXPECT_EQ(pmp.used_entries(), 0);
  ASSERT_TRUE(pmp.SetEntry(0, Napot(0x1000, 0x1000, Perms::kRead), nullptr).ok());
  ASSERT_TRUE(pmp.SetEntry(3, Napot(0x4000, 0x1000, Perms::kRead), nullptr).ok());
  EXPECT_EQ(pmp.used_entries(), 2);
}

TEST(PmpTest, CheckChargesPerEntryScanned) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(7, Napot(0x1000, 0x1000, Perms::kRead), nullptr).ok());
  CycleAccount cycles;
  ASSERT_TRUE(pmp.Check(0x1000, 8, AccessType::kRead, &cycles).ok());
  EXPECT_EQ(cycles.cycles(), 8 * CostModel::Default().pmp_check_per_entry);
}

TEST(PmpTest, DumpListsEntries) {
  PmpFile pmp;
  ASSERT_TRUE(pmp.SetEntry(2, Napot(0x1000, 0x1000, Perms::kRW), nullptr).ok());
  const std::string dump = pmp.Dump();
  EXPECT_NE(dump.find("pmp2"), std::string::npos);
  EXPECT_NE(dump.find("NAPOT"), std::string::npos);
  EXPECT_NE(dump.find("rw-"), std::string::npos);
}

}  // namespace
}  // namespace tyche
