// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/machine.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

class X86MachineTest : public ::testing::Test {
 protected:
  X86MachineTest()
      : machine_([] {
          MachineConfig config;
          config.arch = IsaArch::kX86_64;
          config.memory_bytes = 32ull << 20;
          config.num_cores = 2;
          return config;
        }()),
        frames_(AddrRange{0, 4ull << 20}),
        table_(*NestedPageTable::Create(&machine_.memory(), &frames_, &machine_.cycles())) {}

  Machine machine_;
  FrameAllocator frames_;
  NestedPageTable table_;
};

TEST_F(X86MachineTest, MonitorModeBypassesProtection) {
  machine_.cpu(0).set_mode(PrivilegeMode::kMonitor);
  EXPECT_TRUE(machine_.CheckedWrite64(0, 16ull << 20, 42).ok());
  EXPECT_EQ(*machine_.CheckedRead64(0, 16ull << 20), 42u);
}

TEST_F(X86MachineTest, NoEptMeansNoAccess) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  EXPECT_EQ(machine_.CheckedRead64(0, 16ull << 20).code(), ErrorCode::kAccessViolation);
}

TEST_F(X86MachineTest, EptGrantsAndDeniesByPage) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  const uint64_t page = 16ull << 20;
  ASSERT_TRUE(table_.MapPage(page, page, Perms(Perms::kRW)).ok());
  machine_.SetCoreEpt(0, &table_, /*flush_tlb=*/true);

  EXPECT_TRUE(machine_.CheckedWrite64(0, page + 8, 7).ok());
  EXPECT_EQ(*machine_.CheckedRead64(0, page + 8), 7u);
  EXPECT_FALSE(machine_.CheckedRead64(0, page + kPageSize).ok());
  EXPECT_FALSE(machine_.CheckedFetch(0, page, 4).ok());  // no exec permission
}

TEST_F(X86MachineTest, TlbCachesTranslation) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  const uint64_t page = 16ull << 20;
  ASSERT_TRUE(table_.MapPage(page, page, Perms(Perms::kRW)).ok());
  machine_.SetCoreEpt(0, &table_, true);

  const auto first = machine_.CheckAccess(0, page, 8, AccessType::kRead);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->tlb_hit);
  const auto second = machine_.CheckAccess(0, page, 8, AccessType::kRead);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->tlb_hit);
}

TEST_F(X86MachineTest, StaleTlbPersistsUntilFlush) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  const uint64_t page = 16ull << 20;
  ASSERT_TRUE(table_.MapPage(page, page, Perms(Perms::kRW)).ok());
  machine_.SetCoreEpt(0, &table_, true);
  ASSERT_TRUE(machine_.CheckAccess(0, page, 8, AccessType::kWrite).ok());

  // Downgrade in the EPT without flushing: the stale TLB entry still allows
  // writes -- exactly the hazard the monitor's revocation must handle.
  ASSERT_TRUE(table_.ProtectPage(page, Perms(Perms::kRead)).ok());
  EXPECT_TRUE(machine_.CheckAccess(0, page, 8, AccessType::kWrite).ok());
  machine_.FlushTlb(0);
  EXPECT_FALSE(machine_.CheckAccess(0, page, 8, AccessType::kWrite).ok());
}

TEST_F(X86MachineTest, StraddlingAccessChecksBothPages) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  const uint64_t page = 16ull << 20;
  ASSERT_TRUE(table_.MapPage(page, page, Perms(Perms::kRW)).ok());
  // Next page unmapped: an access straddling the boundary must fault.
  EXPECT_FALSE(machine_.CheckAccess(0, page + kPageSize - 4, 8, AccessType::kRead).ok());
}

TEST_F(X86MachineTest, DmaRequiresIommuContext) {
  const PciBdf bdf(0, 5, 0);
  std::vector<uint8_t> buffer(8);
  EXPECT_EQ(machine_.DmaRead(bdf, 16ull << 20, std::span<uint8_t>(buffer)).code(),
            ErrorCode::kIommuFault);
  const uint64_t page = 16ull << 20;
  ASSERT_TRUE(table_.MapPage(page, page, Perms(Perms::kRW)).ok());
  ASSERT_TRUE(machine_.iommu().AttachDevice(bdf, &table_).ok());
  EXPECT_TRUE(machine_.DmaRead(bdf, page, std::span<uint8_t>(buffer)).ok());
  EXPECT_TRUE(machine_.DmaWrite(bdf, page, std::span<const uint8_t>(buffer)).ok());
}

TEST_F(X86MachineTest, DeviceRegistry) {
  ASSERT_TRUE(
      machine_.AddDevice(std::make_unique<DmaEngine>(PciBdf(0, 6, 0), "dma0")).ok());
  EXPECT_NE(machine_.FindDevice(PciBdf(0, 6, 0)), nullptr);
  EXPECT_EQ(machine_.FindDevice(PciBdf(0, 7, 0)), nullptr);
  EXPECT_EQ(machine_.AddDevice(std::make_unique<DmaEngine>(PciBdf(0, 6, 0), "dup")).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(X86MachineTest, MeasureRangeIsContentHash) {
  ASSERT_TRUE(machine_.memory().Write64(0x1000, 0x1234).ok());
  const auto a = machine_.MeasureRange(0x1000, 0x100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(machine_.memory().Write64(0x1000, 0x5678).ok());
  const auto b = machine_.MeasureRange(0x1000, 0x100);
  EXPECT_NE(*a, *b);
}

TEST_F(X86MachineTest, ZeroRangeChargesPerPage) {
  const uint64_t before = machine_.cycles().cycles();
  ASSERT_TRUE(machine_.ZeroRange(0x10000, 4 * kPageSize).ok());
  EXPECT_GE(machine_.cycles().cycles() - before, 4 * CostModel::Default().zero_per_page);
}

class RiscVMachineTest : public ::testing::Test {
 protected:
  RiscVMachineTest()
      : machine_([] {
          MachineConfig config;
          config.arch = IsaArch::kRiscV;
          config.memory_bytes = 32ull << 20;
          config.num_cores = 2;
          return config;
        }()) {}

  Machine machine_;
};

TEST_F(RiscVMachineTest, PmpGatesSupervisorAccess) {
  machine_.cpu(0).set_mode(PrivilegeMode::kSupervisor);
  EXPECT_FALSE(machine_.CheckedRead64(0, 0x100000).ok());

  PmpEntry entry;
  entry.mode = PmpAddressMode::kNapot;
  entry.perms = Perms(Perms::kRW);
  entry.addr = *PmpFile::EncodeNapot(0x100000, 0x1000);
  ASSERT_TRUE(machine_.cpu(0).pmp().SetEntry(0, entry, &machine_.cycles()).ok());
  EXPECT_TRUE(machine_.CheckedWrite64(0, 0x100000, 99).ok());
  EXPECT_EQ(*machine_.CheckedRead64(0, 0x100000), 99u);
  // Other core unaffected: PMP is per-hart.
  machine_.cpu(1).set_mode(PrivilegeMode::kSupervisor);
  EXPECT_FALSE(machine_.CheckedRead64(1, 0x100000).ok());
}

TEST_F(RiscVMachineTest, MachineModeBypassesPmp) {
  machine_.cpu(0).set_mode(PrivilegeMode::kMonitor);
  EXPECT_TRUE(machine_.CheckedRead64(0, 0x100000).ok());
}

TEST_F(RiscVMachineTest, DmaGoesThroughIoPmp) {
  const PciBdf bdf(0, 5, 0);
  std::vector<uint8_t> buffer(8);
  EXPECT_FALSE(machine_.DmaRead(bdf, 0x100000, std::span<uint8_t>(buffer)).ok());
  PmpEntry entry;
  entry.mode = PmpAddressMode::kNapot;
  entry.perms = Perms(Perms::kRead);
  entry.addr = *PmpFile::EncodeNapot(0x100000, 0x1000);
  ASSERT_TRUE(machine_.io_pmp().FileFor(bdf).SetEntry(0, entry, nullptr).ok());
  EXPECT_TRUE(machine_.DmaRead(bdf, 0x100000, std::span<uint8_t>(buffer)).ok());
  EXPECT_FALSE(machine_.DmaWrite(bdf, 0x100000, std::span<const uint8_t>(buffer)).ok());
}

}  // namespace
}  // namespace tyche
