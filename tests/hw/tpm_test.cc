// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/tpm.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

class TpmTest : public ::testing::Test {
 protected:
  TpmTest() : tpm_(Bytes("endorsement"), &cycles_) {}

  CycleAccount cycles_;
  Tpm tpm_;
};

TEST_F(TpmTest, PcrsStartZero) {
  for (uint32_t i = 0; i < Tpm::kNumPcrs; ++i) {
    EXPECT_TRUE(tpm_.ReadPcr(i)->IsZero());
  }
  EXPECT_FALSE(tpm_.ReadPcr(Tpm::kNumPcrs).ok());
}

TEST_F(TpmTest, ExtendFoldsDigest) {
  const Digest m = Sha256::Hash(std::string_view("firmware"));
  ASSERT_TRUE(tpm_.Extend(0, m, "firmware").ok());
  // PCR = H(zero || m)
  Sha256 expect;
  expect.Update(std::span<const uint8_t>(Digest{}.bytes.data(), 32));
  expect.Update(std::span<const uint8_t>(m.bytes.data(), 32));
  EXPECT_EQ(*tpm_.ReadPcr(0), expect.Finalize());
}

TEST_F(TpmTest, ExtendIsOrderSensitive) {
  Tpm other(Bytes("endorsement"), &cycles_);
  const Digest a = Sha256::Hash(std::string_view("a"));
  const Digest b = Sha256::Hash(std::string_view("b"));
  ASSERT_TRUE(tpm_.Extend(0, a, "a").ok());
  ASSERT_TRUE(tpm_.Extend(0, b, "b").ok());
  ASSERT_TRUE(other.Extend(0, b, "b").ok());
  ASSERT_TRUE(other.Extend(0, a, "a").ok());
  EXPECT_NE(*tpm_.ReadPcr(0), *other.ReadPcr(0));
}

TEST_F(TpmTest, EventLogRecordsExtends) {
  ASSERT_TRUE(tpm_.Extend(1, Sha256::Hash(std::string_view("x")), "monitor").ok());
  ASSERT_EQ(tpm_.event_log().size(), 1u);
  EXPECT_EQ(tpm_.event_log()[0].pcr_index, 1u);
  EXPECT_EQ(tpm_.event_log()[0].description, "monitor");
}

TEST_F(TpmTest, QuoteVerifies) {
  ASSERT_TRUE(tpm_.Extend(0, Sha256::Hash(std::string_view("fw")), "fw").ok());
  ASSERT_TRUE(tpm_.Extend(1, Sha256::Hash(std::string_view("mon")), "mon").ok());
  const auto quote = tpm_.Quote(/*nonce=*/777, /*pcr_mask=*/0b11);
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->nonce, 777u);
  ASSERT_EQ(quote->pcr_values.size(), 2u);
  EXPECT_EQ(quote->pcr_values[0], *tpm_.ReadPcr(0));
  EXPECT_TRUE(Tpm::VerifyQuote(*quote, tpm_.attestation_key()));
}

TEST_F(TpmTest, QuoteRejectsTamperedPcrValue) {
  ASSERT_TRUE(tpm_.Extend(0, Sha256::Hash(std::string_view("fw")), "fw").ok());
  auto quote = *tpm_.Quote(1, 0b1);
  quote.pcr_values[0].bytes[0] ^= 1;
  EXPECT_FALSE(Tpm::VerifyQuote(quote, tpm_.attestation_key()));
}

TEST_F(TpmTest, QuoteRejectsTamperedNonce) {
  auto quote = *tpm_.Quote(1, 0b1);
  quote.nonce = 2;
  EXPECT_FALSE(Tpm::VerifyQuote(quote, tpm_.attestation_key()));
}

TEST_F(TpmTest, QuoteRejectsWrongKey) {
  Tpm other(Bytes("other-seed"), &cycles_);
  const auto quote = *tpm_.Quote(1, 0b1);
  EXPECT_FALSE(Tpm::VerifyQuote(quote, other.attestation_key()));
}

TEST_F(TpmTest, DifferentSeedsDifferentKeys) {
  Tpm other(Bytes("other-seed"), &cycles_);
  EXPECT_FALSE(tpm_.attestation_key() == other.attestation_key());
}

TEST_F(TpmTest, OperationsChargeCycles) {
  cycles_.Reset();
  ASSERT_TRUE(tpm_.Extend(0, Digest{}, "e").ok());
  EXPECT_EQ(cycles_.cycles(), CostModel::Default().tpm_extend);
  cycles_.Reset();
  ASSERT_TRUE(tpm_.Quote(1, 0b1).ok());
  EXPECT_EQ(cycles_.cycles(), CostModel::Default().tpm_quote);
}

}  // namespace
}  // namespace tyche
