// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/iommu.h"

#include <gtest/gtest.h>

#include "src/hw/io_pmp.h"

namespace tyche {
namespace {

class IommuTest : public ::testing::Test {
 protected:
  IommuTest()
      : memory_(16ull << 20),
        frames_(AddrRange{0, 4ull << 20}),
        table_(*NestedPageTable::Create(&memory_, &frames_, &cycles_)),
        iommu_(&cycles_) {}

  PhysMemory memory_;
  FrameAllocator frames_;
  CycleAccount cycles_;
  NestedPageTable table_;
  Iommu iommu_;
};

TEST_F(IommuTest, UnattachedDeviceFaults) {
  const PciBdf bdf(0, 3, 0);
  EXPECT_EQ(iommu_.Translate(bdf, 0x5000, AccessType::kRead).code(), ErrorCode::kIommuFault);
}

TEST_F(IommuTest, AttachedDeviceTranslates) {
  const PciBdf bdf(0, 3, 0);
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRW)).ok());
  ASSERT_TRUE(iommu_.AttachDevice(bdf, &table_).ok());
  const auto t = iommu_.Translate(bdf, 0x5010, AccessType::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->host_addr, 0x9010u);
}

TEST_F(IommuTest, PermissionViolationIsIommuFault) {
  const PciBdf bdf(0, 3, 0);
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRead)).ok());
  ASSERT_TRUE(iommu_.AttachDevice(bdf, &table_).ok());
  EXPECT_EQ(iommu_.Translate(bdf, 0x5000, AccessType::kWrite).code(),
            ErrorCode::kIommuFault);
}

TEST_F(IommuTest, DetachRestoresDefaultDeny) {
  const PciBdf bdf(0, 3, 0);
  ASSERT_TRUE(table_.MapPage(0x5000, 0x9000, Perms(Perms::kRW)).ok());
  ASSERT_TRUE(iommu_.AttachDevice(bdf, &table_).ok());
  ASSERT_TRUE(iommu_.DetachDevice(bdf).ok());
  EXPECT_FALSE(iommu_.Translate(bdf, 0x5000, AccessType::kRead).ok());
  EXPECT_EQ(iommu_.ContextOf(bdf), nullptr);
}

TEST_F(IommuTest, AttachNullDetaches) {
  const PciBdf bdf(0, 3, 0);
  ASSERT_TRUE(iommu_.AttachDevice(bdf, &table_).ok());
  ASSERT_TRUE(iommu_.AttachDevice(bdf, nullptr).ok());
  EXPECT_FALSE(iommu_.IsAttached(bdf));
}

TEST(PciBdfTest, EncodingIsStable) {
  const PciBdf bdf(1, 2, 3);
  EXPECT_EQ(bdf.value, (1 << 8) | (2 << 3) | 3);
  EXPECT_EQ(PciBdf(bdf.value), bdf);
  EXPECT_LT(PciBdf(0, 1, 0), PciBdf(0, 2, 0));
}

TEST(IoPmpTest, DefaultDenyAndProgrammedAllow) {
  CycleAccount cycles;
  IoPmp io_pmp(&cycles);
  const PciBdf bdf(0, 4, 0);
  EXPECT_EQ(io_pmp.Check(bdf, 0x1000, 8, AccessType::kRead).code(), ErrorCode::kIommuFault);

  PmpEntry entry;
  entry.mode = PmpAddressMode::kNapot;
  entry.perms = Perms(Perms::kRW);
  entry.addr = *PmpFile::EncodeNapot(0x1000, 0x1000);
  ASSERT_TRUE(io_pmp.FileFor(bdf).SetEntry(0, entry, &cycles).ok());
  EXPECT_TRUE(io_pmp.Check(bdf, 0x1000, 8, AccessType::kRead).ok());
  EXPECT_FALSE(io_pmp.Check(bdf, 0x2000, 8, AccessType::kRead).ok());

  io_pmp.Remove(bdf);
  EXPECT_FALSE(io_pmp.Check(bdf, 0x1000, 8, AccessType::kRead).ok());
}

}  // namespace
}  // namespace tyche
