// Copyright 2026 The Tyche Reproduction Authors.
// TraceRing and LatencyHistogram: capacity/overwrite semantics, percentile
// math, merge, enable gating, and multi-threaded recording (the concurrency
// the ASan/UBSan CI job gates).

#include "src/support/telemetry.h"

#include <gtest/gtest.h>

#include <thread>

namespace tyche {
namespace {

TraceEntry MakeEntry(uint16_t op, uint64_t duration_ns) {
  TraceEntry entry;
  entry.op = op;
  entry.duration_ns = duration_ns;
  return entry;
}

TEST(TraceRingTest, AssignsSequenceNumbersOldestFirst) {
  TraceRing ring(8);
  for (uint16_t i = 0; i < 5; ++i) {
    ring.Record(MakeEntry(i, 10 * i));
  }
  const auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 5u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, i);
    EXPECT_EQ(snapshot[i].op, i);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (uint16_t i = 0; i < 10; ++i) {
    ring.Record(MakeEntry(i, 0));
  }
  const auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().op, 6);  // ops 0..5 overwritten
  EXPECT_EQ(snapshot.back().op, 9);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(TraceRingTest, StopGatesRecording) {
  TraceRing ring(4);
  ring.Stop();
  ring.Record(MakeEntry(1, 0));
  EXPECT_EQ(ring.recorded(), 0u);
  ring.Start();
  ring.Record(MakeEntry(2, 0));
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(TraceRingTest, ClearResets) {
  TraceRing ring(4);
  ring.Record(MakeEntry(1, 0));
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceRingTest, DumpFormatsContainOpNames) {
  TraceRing ring(4);
  ring.Record(MakeEntry(3, 42));
  const auto name = [](uint16_t op) { return std::string("op") + std::to_string(op); };
  EXPECT_NE(ring.DumpText(name).find("op3"), std::string::npos);
  const std::string json = ring.DumpJson(name);
  EXPECT_NE(json.find("\"op\":\"op3\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":42"), std::string::npos);
}

TEST(LatencyHistogramTest, BucketsArePowersOfTwo) {
  LatencyHistogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 1030u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 1024u);
  EXPECT_EQ(histogram.buckets()[0], 2u);   // 0, 1
  EXPECT_EQ(histogram.buckets()[1], 1u);   // 2
  EXPECT_EQ(histogram.buckets()[2], 1u);   // 3..4
  EXPECT_EQ(histogram.buckets()[10], 1u);  // 513..1024
}

TEST(LatencyHistogramTest, PercentilesAtBucketResolution) {
  LatencyHistogram histogram;
  // 99 cheap samples and one expensive one: p50 stays in the cheap bucket,
  // p99+ reaches the tail.
  for (int i = 0; i < 99; ++i) {
    histogram.Record(100);  // bucket upper bound 128
  }
  histogram.Record(1u << 20);
  EXPECT_EQ(histogram.Percentile(50), 128u);
  EXPECT_EQ(histogram.Percentile(99), 128u);
  EXPECT_EQ(histogram.Percentile(100), 1u << 20);
  EXPECT_EQ(LatencyHistogram{}.Percentile(99), 0u);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  const LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.Percentile(0), 0u);
  EXPECT_EQ(histogram.Percentile(50), 0u);
  EXPECT_EQ(histogram.Percentile(100), 0u);
}

TEST(LatencyHistogramTest, SingleSampleAnswersEveryPercentile) {
  LatencyHistogram histogram;
  histogram.Record(300);  // bucket upper bound 512
  EXPECT_EQ(histogram.min(), 300u);
  EXPECT_EQ(histogram.max(), 300u);
  // With one sample the nearest rank is 1 for every p, including p=0.
  EXPECT_EQ(histogram.Percentile(0), 512u);
  EXPECT_EQ(histogram.Percentile(50), 512u);
  EXPECT_EQ(histogram.Percentile(100), 512u);
}

TEST(LatencyHistogramTest, HugeValuesClampToTheLastBucket) {
  LatencyHistogram histogram;
  // Values above 2^63 used to compute bucket index 64 -- one past the end.
  histogram.Record(~0ull);
  histogram.Record((1ull << 63) + 1);
  EXPECT_EQ(histogram.buckets()[LatencyHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(histogram.Percentile(100), ~0ull);
  EXPECT_EQ(histogram.max(), ~0ull);
}

TEST(LatencyHistogramTest, DisjointBucketMergeKeepsRanksInRange) {
  LatencyHistogram low;
  LatencyHistogram high;
  for (int i = 0; i < 10; ++i) {
    low.Record(3);  // bucket upper bound 4
  }
  for (int i = 0; i < 10; ++i) {
    high.Record(1ull << 40);
  }
  low.Merge(high);
  ASSERT_EQ(low.count(), 20u);
  // Ranks land inside real buckets on both sides of the empty middle; the
  // nearest-rank scan must terminate inside the table for every p.
  EXPECT_EQ(low.Percentile(0), 4u);
  EXPECT_EQ(low.Percentile(50), 4u);
  EXPECT_EQ(low.Percentile(55), 1ull << 40);
  EXPECT_EQ(low.Percentile(100), 1ull << 40);
  for (double p = 0; p <= 100.0; p += 0.5) {
    const uint64_t value = low.Percentile(p);
    EXPECT_TRUE(value == 4u || value == (1ull << 40)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeAddsCountsAndExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(4);
  b.Record(4096);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 4u);
  EXPECT_EQ(a.max(), 4096u);
  EXPECT_EQ(a.Percentile(100), 4096u);
}

TEST(TelemetryTest, RecordsPerOpHistogramsAndRing) {
  Telemetry telemetry(/*op_count=*/4, /*ring_capacity=*/16);
  TraceEntry entry = MakeEntry(2, 100);
  telemetry.RecordCall(entry);
  telemetry.RecordCall(MakeEntry(2, 200));
  telemetry.RecordCall(MakeEntry(0, 1));
  EXPECT_EQ(telemetry.OpHistogram(2).count(), 2u);
  EXPECT_EQ(telemetry.OpHistogram(0).count(), 1u);
  EXPECT_EQ(telemetry.OpHistogram(1).count(), 0u);
  EXPECT_EQ(telemetry.MergedHistogram().count(), 3u);
  EXPECT_EQ(telemetry.ring().recorded(), 3u);
  // Out-of-range op: traced but not histogrammed.
  telemetry.RecordCall(MakeEntry(9, 5));
  EXPECT_EQ(telemetry.ring().recorded(), 4u);
  EXPECT_EQ(telemetry.MergedHistogram().count(), 3u);
}

TEST(TelemetryTest, EnableSwitchesAreIndependent) {
  Telemetry telemetry(2);
  EXPECT_TRUE(telemetry.any_enabled());
  telemetry.set_trace_enabled(false);
  EXPECT_TRUE(telemetry.any_enabled());  // histograms still on
  telemetry.RecordCall(MakeEntry(0, 1));
  EXPECT_EQ(telemetry.ring().recorded(), 0u);
  EXPECT_EQ(telemetry.OpHistogram(0).count(), 1u);
  telemetry.set_histograms_enabled(false);
  EXPECT_FALSE(telemetry.any_enabled());
  telemetry.RecordCall(MakeEntry(0, 1));
  EXPECT_EQ(telemetry.OpHistogram(0).count(), 1u);
}

TEST(TelemetryTest, SummaryTextListsOpsWithSamples) {
  Telemetry telemetry(3);
  telemetry.RecordCall(MakeEntry(1, 50));
  const std::string summary = telemetry.SummaryText(
      [](uint16_t op) { return std::string("op") + std::to_string(op); });
  EXPECT_NE(summary.find("op1"), std::string::npos);
  EXPECT_EQ(summary.find("op0"), std::string::npos);
}

TEST(TelemetryTest, ConcurrentRecordingIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  Telemetry telemetry(/*op_count=*/4, /*ring_capacity=*/1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        telemetry.RecordCall(MakeEntry(static_cast<uint16_t>(t % 4), i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(telemetry.ring().recorded(), kTotal);
  EXPECT_EQ(telemetry.ring().dropped(), kTotal - 1024);
  EXPECT_EQ(telemetry.MergedHistogram().count(), kTotal);
  // Every sequence number in the snapshot is unique and the snapshot is
  // sorted oldest-first.
  const auto snapshot = telemetry.ring().Snapshot();
  ASSERT_EQ(snapshot.size(), 1024u);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, snapshot[i - 1].seq + 1);
  }
}

TEST(Fnv1aDigestTest, DistinguishesArguments) {
  const uint64_t a[] = {1, 2, 3, 4, 5, 6};
  const uint64_t b[] = {1, 2, 3, 4, 5, 7};
  EXPECT_NE(Fnv1aDigest(a, 6), Fnv1aDigest(b, 6));
  EXPECT_EQ(Fnv1aDigest(a, 6), Fnv1aDigest(a, 6));
}

}  // namespace
}  // namespace tyche
