// Copyright 2026 The Tyche Reproduction Authors.
// Unit tests for the hash-committed snapshot container: round-trips,
// commitment self-check, parse hardening (truncation, duplicate tags,
// trailing bytes), and the section reader/writer primitives.

#include "src/support/snapshot.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tyche {
namespace {

TEST(SnapshotTest, SectionWriterReaderRoundTrip) {
  SectionWriter writer;
  writer.Append<uint64_t>(0xdeadbeefcafef00dull);
  writer.Append<uint32_t>(42);
  writer.Append<uint16_t>(7);
  writer.Append<uint8_t>(1);
  Digest digest;
  digest.bytes[0] = 0xaa;
  digest.bytes[31] = 0x55;
  writer.AppendDigest(digest);
  writer.AppendString("trust-domain");
  const std::vector<uint8_t> bytes = writer.Take();

  SectionReader reader(std::span<const uint8_t>(bytes.data(), bytes.size()));
  uint64_t u64 = 0;
  uint32_t u32 = 0;
  uint16_t u16 = 0;
  uint8_t u8 = 0;
  Digest read_digest;
  std::string name;
  ASSERT_TRUE(reader.Read(&u64));
  ASSERT_TRUE(reader.Read(&u32));
  ASSERT_TRUE(reader.Read(&u16));
  ASSERT_TRUE(reader.Read(&u8));
  ASSERT_TRUE(reader.ReadDigest(&read_digest));
  ASSERT_TRUE(reader.ReadString(&name));
  EXPECT_EQ(u64, 0xdeadbeefcafef00dull);
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(u16, 7u);
  EXPECT_EQ(u8, 1u);
  EXPECT_EQ(read_digest, digest);
  EXPECT_EQ(name, "trust-domain");
  EXPECT_EQ(reader.remaining(), 0u);
  // Reading past the end fails without moving the cursor into garbage.
  EXPECT_FALSE(reader.Read(&u8));
}

TEST(SnapshotTest, ReaderRejectsTruncatedString) {
  SectionWriter writer;
  writer.AppendString("hello");
  std::vector<uint8_t> bytes = writer.Take();
  bytes.resize(bytes.size() - 2);  // cut into the string body
  SectionReader reader(std::span<const uint8_t>(bytes.data(), bytes.size()));
  std::string value;
  EXPECT_FALSE(reader.ReadString(&value));
}

std::vector<uint8_t> SampleSnapshot() {
  SnapshotWriter writer;
  SectionWriter a;
  a.Append<uint64_t>(123);
  writer.AddSection(1, a.Take());
  SectionWriter b;
  b.AppendString("engine");
  writer.AddSection(2, b.Take());
  writer.AddSection(3, {});  // empty section is legal
  return writer.Finish();
}

TEST(SnapshotTest, ContainerRoundTrip) {
  const std::vector<uint8_t> bytes = SampleSnapshot();
  const auto view = SnapshotView::Parse(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->section_count(), 3u);

  const auto section_a = view->Section(1);
  ASSERT_TRUE(section_a.ok());
  SectionReader reader(*section_a);
  uint64_t value = 0;
  ASSERT_TRUE(reader.Read(&value));
  EXPECT_EQ(value, 123u);

  const auto empty = view->Section(3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  EXPECT_EQ(view->Section(99).status().code(), ErrorCode::kNotFound);
}

TEST(SnapshotTest, AnyBitFlipBreaksTheCommitment) {
  const std::vector<uint8_t> pristine = SampleSnapshot();
  ASSERT_TRUE(SnapshotView::Parse(pristine).ok());
  // Flip a bit at several strategic offsets: header, section body, and the
  // commitment itself. Every one must be caught by the self-check.
  for (const size_t offset :
       {size_t{5}, pristine.size() / 2, pristine.size() - 1}) {
    std::vector<uint8_t> tampered = pristine;
    tampered[offset] ^= 0x01;
    EXPECT_FALSE(SnapshotView::Parse(tampered).ok()) << "offset " << offset;
  }
  // And the digest a checkpoint would bind changes with any flip.
  std::vector<uint8_t> tampered = pristine;
  tampered[6] ^= 0x80;
  EXPECT_NE(SnapshotDigest(pristine), SnapshotDigest(tampered));
}

TEST(SnapshotTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SnapshotView::Parse(std::vector<uint8_t>{}).ok());
  EXPECT_FALSE(SnapshotView::Parse(std::vector<uint8_t>{'T', 'Y', 'S', 'N'}).ok());
  std::vector<uint8_t> wrong_magic(128, 0xcd);
  EXPECT_FALSE(SnapshotView::Parse(wrong_magic).ok());
  // Truncation anywhere (here: drop the tail) breaks the commitment.
  std::vector<uint8_t> truncated = SampleSnapshot();
  truncated.resize(truncated.size() - 8);
  EXPECT_FALSE(SnapshotView::Parse(truncated).ok());
}

TEST(SnapshotTest, DuplicateTagsAreRejected) {
  SnapshotWriter writer;
  writer.AddSection(7, {0x01});
  writer.AddSection(7, {0x02});
  const std::vector<uint8_t> bytes = writer.Finish();
  const auto view = SnapshotView::Parse(bytes);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().ToString().find("duplicate"), std::string::npos);
}

TEST(SnapshotTest, DigestIsDeterministic) {
  EXPECT_EQ(SnapshotDigest(SampleSnapshot()), SnapshotDigest(SampleSnapshot()));
}

}  // namespace
}  // namespace tyche
