// Copyright 2026 The Tyche Reproduction Authors.
// Unit tests for the deterministic fault injector: Nth-occurrence firing,
// repeat mode, counting mode, seeded plan derivation, and the disabled
// fast path.

#include "src/support/faults.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace tyche {
namespace {

constexpr std::string_view kSiteA = "test.site_a";
constexpr std::string_view kSiteB = "test.site_b";

// A function body the way production code uses the hook: the macro returns
// the injected Status from the enclosing function.
Status HookedOperation(std::string_view site) {
  TYCHE_FAULT_POINT(site);
  return OkStatus();
}

Result<int> HookedResultOperation(std::string_view site, int value) {
  TYCHE_FAULT_POINT(site);
  return value;
}

class FaultsTest : public ::testing::Test {
 protected:
  ~FaultsTest() override { FaultInjector::Instance().Disarm(); }
};

TEST_F(FaultsTest, DisabledHookIsInvisible) {
  ASSERT_FALSE(FaultInjector::active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(HookedOperation(kSiteA).ok());
  }
  // Nothing was counted: a later counting run starts from zero.
  FaultInjector::Instance().StartCounting();
  EXPECT_TRUE(HookedOperation(kSiteA).ok());
  const auto counts = FaultInjector::Instance().StopCounting();
  ASSERT_TRUE(counts.contains(std::string(kSiteA)));
  EXPECT_EQ(counts.at(std::string(kSiteA)), 1u);
}

TEST_F(FaultsTest, FiresAtExactlyTheNthOccurrence) {
  ScopedFaultPlan plan(
      FaultPlan::Single(kSiteA, /*trigger=*/3, ErrorCode::kIommuFault));
  EXPECT_TRUE(HookedOperation(kSiteA).ok());  // occurrence 1
  EXPECT_TRUE(HookedOperation(kSiteA).ok());  // occurrence 2
  const Status injected = HookedOperation(kSiteA);  // occurrence 3
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), ErrorCode::kIommuFault);
  EXPECT_NE(injected.message().find("injected fault"), std::string::npos);
  EXPECT_TRUE(HookedOperation(kSiteA).ok());  // single-shot: 4 passes
  // A different site under the same plan never fails.
  EXPECT_TRUE(HookedOperation(kSiteB).ok());

  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u);
  const auto fired = FaultInjector::Instance().fired_sites();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], std::string(kSiteA));
}

TEST_F(FaultsTest, WorksInResultReturningFunctions) {
  ScopedFaultPlan plan(
      FaultPlan::Single(kSiteA, /*trigger=*/1, ErrorCode::kResourceExhausted));
  const Result<int> failed = HookedResultOperation(kSiteA, 7);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), ErrorCode::kResourceExhausted);
  const Result<int> passed = HookedResultOperation(kSiteA, 7);
  ASSERT_TRUE(passed.ok());
  EXPECT_EQ(*passed, 7);
}

TEST_F(FaultsTest, RepeatSpecFailsEveryOccurrenceFromTrigger) {
  FaultPlan plan;
  plan.Add(FaultSpec{std::string(kSiteA), /*trigger=*/2,
                     ErrorCode::kPmpExhausted, /*repeat=*/true});
  ScopedFaultPlan scoped(plan);
  EXPECT_TRUE(HookedOperation(kSiteA).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(HookedOperation(kSiteA).code(), ErrorCode::kPmpExhausted);
  }
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 5u);
}

TEST_F(FaultsTest, CountingModeObservesWithoutFailing) {
  FaultInjector::Instance().StartCounting();
  ASSERT_TRUE(FaultInjector::active());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(HookedOperation(kSiteA).ok());
  }
  EXPECT_TRUE(HookedOperation(kSiteB).ok());
  const auto counts = FaultInjector::Instance().StopCounting();
  EXPECT_FALSE(FaultInjector::active());
  EXPECT_EQ(counts.at(std::string(kSiteA)), 3u);
  EXPECT_EQ(counts.at(std::string(kSiteB)), 1u);
}

TEST_F(FaultsTest, ArmResetsOccurrenceCounters) {
  {
    ScopedFaultPlan plan(FaultPlan::Single(kSiteA, /*trigger=*/2));
    EXPECT_TRUE(HookedOperation(kSiteA).ok());
  }
  // Re-arming starts occurrence numbering from scratch: the first hit after
  // Arm() is occurrence 1 again, so trigger 2 needs two fresh hits.
  ScopedFaultPlan plan(FaultPlan::Single(kSiteA, /*trigger=*/2));
  EXPECT_TRUE(HookedOperation(kSiteA).ok());
  EXPECT_FALSE(HookedOperation(kSiteA).ok());
}

TEST_F(FaultsTest, FromSeedIsDeterministicAndRespectsCounts) {
  const std::map<std::string, uint64_t> counts = {
      {std::string(kSiteA), 5}, {std::string(kSiteB), 2}, {"test.site_c", 1}};
  std::set<std::string> plans_seen;
  std::set<std::string> sites_seen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(seed, counts);
    ASSERT_EQ(plan.specs().size(), 1u) << "seed " << seed;
    const FaultSpec& spec = plan.specs()[0];
    ASSERT_TRUE(counts.contains(spec.site)) << spec.site;
    EXPECT_GE(spec.trigger, 1u);
    EXPECT_LE(spec.trigger, counts.at(spec.site));
    EXPECT_EQ(spec.code, DefaultFaultCode(spec.site));
    // Determinism: the same seed and counts always produce the same plan.
    EXPECT_EQ(plan.ToString(), FaultPlan::FromSeed(seed, counts).ToString());
    plans_seen.insert(plan.ToString());
    sites_seen.insert(spec.site);
  }
  // The weighted pick actually spreads across sites and occurrences.
  EXPECT_GE(sites_seen.size(), 2u);
  EXPECT_GE(plans_seen.size(), 4u);
}

TEST_F(FaultsTest, FromSeedWithNoOccurrencesIsEmpty) {
  EXPECT_TRUE(FaultPlan::FromSeed(42, {}).empty());
}

TEST_F(FaultsTest, CanonicalSitesAreUniqueWithHardwareShapedCodes) {
  const auto& sites = AllFaultSites();
  EXPECT_GE(sites.size(), 15u);
  std::set<std::string_view> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size());
  EXPECT_EQ(DefaultFaultCode(faults::kFrameAlloc), ErrorCode::kResourceExhausted);
  EXPECT_EQ(DefaultFaultCode(faults::kPmpRecompile), ErrorCode::kPmpExhausted);
  EXPECT_EQ(DefaultFaultCode(faults::kIommuAttach), ErrorCode::kIommuFault);
  EXPECT_EQ(DefaultFaultCode(faults::kAeadOpen), ErrorCode::kSignatureInvalid);
  EXPECT_EQ(DefaultFaultCode(faults::kVtxSyncMemory), ErrorCode::kAccessViolation);
}

}  // namespace
}  // namespace tyche
