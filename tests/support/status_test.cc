// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/status.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Error(ErrorCode::kPolicyViolation, "bad policy");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kPolicyViolation);
  EXPECT_EQ(status.message(), "bad policy");
  EXPECT_EQ(status.ToString(), "POLICY_VIOLATION: bad policy");
}

TEST(StatusTest, EveryErrorCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kSignatureInvalid); ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Error(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Doubler(Result<int> input) {
  TYCHE_ASSIGN_OR_RETURN(const int value, input);
  return value * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  const Result<int> failed = Doubler(Error(ErrorCode::kInternal));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), ErrorCode::kInternal);
}

Status FailIfNegative(int value) {
  if (value < 0) {
    return Error(ErrorCode::kInvalidArgument);
  }
  return OkStatus();
}

Status Chain(int value) {
  TYCHE_RETURN_IF_ERROR(FailIfNegative(value));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace tyche
