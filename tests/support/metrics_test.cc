// Copyright 2026 The Tyche Reproduction Authors.
// Metrics registry: striped counters under concurrency, and the Prometheus
// text exposition format (golden strings for escaping and label syntax).

#include "src/support/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace tyche {
namespace {

TEST(StripedCounterTest, AddAndValue) {
  StripedCounter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(StripedCounterTest, ConcurrentWritersSumExactly) {
  StripedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Add();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(StripedCounterTest, ConcurrentWritersSpreadOverStripes) {
  // The anti-contention property itself: concurrent threads must land on
  // more than one cache-line cell. Threads take round-robin stripe ids at
  // first use, so 8 fresh threads cannot all share a stripe; assert >= 2
  // nonzero stripes rather than exactly 8 to stay robust against threads
  // the process already numbered.
  StripedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] { counter.Add(1000); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto stripes = counter.StripeValues();
  const int nonzero = static_cast<int>(
      std::count_if(stripes.begin(), stripes.end(), [](uint64_t v) { return v > 0; }));
  EXPECT_GE(nonzero, 2) << "8 threads landed on a single stripe";
  EXPECT_EQ(counter.Value(), 8000u);
}

TEST(StripedCounterTest, ThreadChurnConservesCounts) {
  // Short-lived threads re-use stripe slots across waves; counts written by
  // a dead thread must survive in the cells (not TLS), and a new thread
  // adopting the slot must accumulate on top, never clobber.
  StripedCounter counter;
  constexpr int kWaves = 16;
  constexpr int kThreadsPerWave = 4;
  constexpr int kIncrements = 5000;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([&counter] {
        for (int i = 0; i < kIncrements; ++i) {
          counter.Add();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kWaves) * kThreadsPerWave * kIncrements);
}

TEST(MetricsRegistryTest, CounterPointerIsStableAndSharedByName) {
  MetricsRegistry registry;
  StripedCounter* a = registry.AddCounter("tyche_x_total", "x");
  StripedCounter* b = registry.AddCounter("tyche_x_total", "x");
  EXPECT_EQ(a, b);  // same (name, labels) -> same cell
  StripedCounter* labeled =
      registry.AddCounter("tyche_x_total", "x", {{"op", "create"}});
  EXPECT_NE(a, labeled);
}

TEST(MetricsRegistryTest, PrometheusGoldenFormat) {
  MetricsRegistry registry;
  registry.AddCounter("tyche_calls_total", "ABI calls", {{"op", "create"}})->Add(3);
  registry.AddCounter("tyche_calls_total", "ABI calls", {{"op", "revoke"}})->Add(1);
  registry.AddGauge("tyche_alive", "live domains")->Set(2);

  const std::string text = registry.ExportPrometheus();
  // Families render sorted by name, HELP/TYPE once, children in
  // registration order. This is the exact scrape contract.
  const std::string expected =
      "# HELP tyche_alive live domains\n"
      "# TYPE tyche_alive gauge\n"
      "tyche_alive 2\n"
      "# HELP tyche_calls_total ABI calls\n"
      "# TYPE tyche_calls_total counter\n"
      "tyche_calls_total{op=\"create\"} 3\n"
      "tyche_calls_total{op=\"revoke\"} 1\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistryTest, EscapingGolden) {
  EXPECT_EQ(PromEscapeHelp("back\\slash and\nnewline"), "back\\\\slash and\\nnewline");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\"\\\n"), "say \\\"hi\\\"\\\\\\n");

  MetricsRegistry registry;
  registry.AddCounter("tyche_esc_total", "help with \\ and\nbreak",
                      {{"site", "a\"b\\c"}});
  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("# HELP tyche_esc_total help with \\\\ and\\nbreak\n"),
            std::string::npos);
  EXPECT_NE(text.find("tyche_esc_total{site=\"a\\\"b\\\\c\"} 0\n"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRendersCumulativeBuckets) {
  MetricsRegistry registry;
  registry.AddHistogram("tyche_lat_ns", "latency", {{"op", "seal"}}, [] {
    HistogramSnapshot snapshot;
    snapshot.buckets = {{1, 2}, {2, 0}, {4, 3}};
    snapshot.count = 5;
    snapshot.sum = 14;
    return snapshot;
  });
  const std::string text = registry.ExportPrometheus();
  const std::string expected =
      "# HELP tyche_lat_ns latency\n"
      "# TYPE tyche_lat_ns histogram\n"
      "tyche_lat_ns_bucket{op=\"seal\",le=\"1\"} 2\n"
      "tyche_lat_ns_bucket{op=\"seal\",le=\"2\"} 2\n"
      "tyche_lat_ns_bucket{op=\"seal\",le=\"4\"} 5\n"
      "tyche_lat_ns_bucket{op=\"seal\",le=\"+Inf\"} 5\n"
      "tyche_lat_ns_sum{op=\"seal\"} 14\n"
      "tyche_lat_ns_count{op=\"seal\"} 5\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistryTest, CallbacksAndScalarValues) {
  MetricsRegistry registry;
  registry.AddCounter("tyche_native_total", "native")->Add(7);
  uint64_t source = 99;
  registry.AddCallback("tyche_pulled", "pulled", /*counter=*/false, {},
                       [&source] { return source; });

  auto all = registry.ScalarValues();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "tyche_native_total");
  EXPECT_EQ(all[0].second, 7u);
  EXPECT_EQ(all[1].first, "tyche_pulled");
  EXPECT_EQ(all[1].second, 99u);

  // Native-only view (what the flight recorder samples) skips callbacks.
  auto native = registry.ScalarValues(/*include_callbacks=*/false);
  ASSERT_EQ(native.size(), 1u);
  EXPECT_EQ(native[0].first, "tyche_native_total");
}

TEST(RenderSeriesNameTest, LabelOrderIsPreserved) {
  EXPECT_EQ(RenderSeriesName("m", {}), "m");
  EXPECT_EQ(RenderSeriesName("m", {{"b", "2"}, {"a", "1"}}), "m{b=\"2\",a=\"1\"}");
}

}  // namespace
}  // namespace tyche
