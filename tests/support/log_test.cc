// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/log.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Get().set_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
    saved_level_ = Logger::Get().level();
  }

  void TearDown() override {
    Logger::Get().set_sink(nullptr);
    Logger::Get().set_level(saved_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, MessagesBelowLevelAreSuppressed) {
  Logger::Get().set_level(LogLevel::kWarn);
  TYCHE_LOG(kDebug) << "hidden";
  TYCHE_LOG(kWarn) << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_NE(captured_[0].second.find("visible"), std::string::npos);
}

TEST_F(LogTest, MessageIncludesFileAndLine) {
  Logger::Get().set_level(LogLevel::kInfo);
  TYCHE_LOG(kInfo) << "located";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("log_test.cc"), std::string::npos);
}

TEST_F(LogTest, OffSuppressesEverything) {
  Logger::Get().set_level(LogLevel::kOff);
  TYCHE_LOG(kError) << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, StreamFormatting) {
  Logger::Get().set_level(LogLevel::kInfo);
  TYCHE_LOG(kInfo) << "x=" << 42 << " y=" << 3.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("x=42 y=3.5"), std::string::npos);
}

TEST_F(LogTest, NullSinkRestoresDefaultStderrSink) {
  // The fixture installed a capturing sink in SetUp.
  EXPECT_FALSE(Logger::Get().is_default_sink());

  Logger::Get().set_sink(nullptr);
  EXPECT_TRUE(Logger::Get().is_default_sink());

  // The old capturing sink must be fully detached: a message written now
  // goes to the restored stderr sink (visible in test output), not to
  // captured_.
  Logger::Get().Write(LogLevel::kWarn, "log_test: expected stderr line after sink restore");
  EXPECT_TRUE(captured_.empty());

  // Re-installing a sink flips the flag back.
  Logger::Get().set_sink([](LogLevel, const std::string&) {});
  EXPECT_FALSE(Logger::Get().is_default_sink());
}

}  // namespace
}  // namespace tyche
