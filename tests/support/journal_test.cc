// Copyright 2026 The Tyche Reproduction Authors.
// Unit tests for the hash-chained audit journal: chain construction and
// verification, tamper/drop/reorder/truncation detection, checkpoint
// signatures, wire round-trips, concurrency, and the span-tree export.

#include "src/support/journal.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tyche {
namespace {

SchnorrKeyPair TestKey() {
  const uint8_t seed[] = {'j', 'o', 'u', 'r', 'n', 'a', 'l'};
  return DeriveKeyPair(seed);
}

// Installs TestKey() as the checkpoint signer (Journal owns a mutex, so it
// is configured in place rather than returned from a factory).
void SignWithTestKey(Journal& journal) {
  journal.set_signer(
      [](const Digest& digest) { return SchnorrSign(TestKey().priv, digest); });
}

JournalRecord Record(JournalEvent event, uint64_t span, uint64_t cap) {
  JournalRecord record;
  record.event = static_cast<uint8_t>(event);
  record.span = span;
  record.cap = cap;
  return record;
}

TEST(JournalTest, AppendAssignsDenseSequenceAndTicks) {
  Journal journal;
  uint64_t tick = 100;
  journal.set_tick_source([&tick] { return tick++; });
  EXPECT_EQ(journal.Append(Record(JournalEvent::kMintMemory, 1, 7)), 0u);
  EXPECT_EQ(journal.Append(Record(JournalEvent::kShareMemory, 1, 8)), 1u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].tick, 100u);
  EXPECT_EQ(records[1].tick, 101u);
  EXPECT_EQ(journal.EventCount(JournalEvent::kMintMemory), 1u);
  EXPECT_EQ(journal.EventCount(JournalEvent::kShareMemory), 1u);
}

TEST(JournalTest, DisabledAppendIsANoOp) {
  Journal journal;
  journal.set_enabled(false);
  EXPECT_EQ(journal.Append(Record(JournalEvent::kRevoke, 1, 1)), Journal::kNoSeq);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.head(), JournalGenesis());
}

TEST(JournalTest, EmptyJournalVerifies) {
  EXPECT_TRUE(Journal::VerifyChain({}, {}, TestKey().pub).ok());
}

TEST(JournalTest, SignedChainVerifies) {
  Journal journal;
  SignWithTestKey(journal);
  for (int i = 0; i < 5; ++i) {
    journal.Append(Record(JournalEvent::kShareMemory, 1, 10 + i));
  }
  // No auto checkpoint yet (interval 128): the tail is uncovered.
  const Status uncovered =
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(uncovered.ok());
  journal.Checkpoint();
  ASSERT_EQ(journal.checkpoint_count(), 1u);
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, AutoCheckpointEveryInterval) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kCascade, 2, i));
  }
  EXPECT_EQ(journal.checkpoint_count(), 2u);
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
  // A second explicit checkpoint over the same head is deduplicated.
  journal.Checkpoint();
  EXPECT_EQ(journal.checkpoint_count(), 2u);
}

TEST(JournalTest, MutatedRecordBreaksTheChain) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kShareUnit, 3, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  records[5].cap ^= 1;  // single-bit change in one field
  const Status status = Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("hash chain broken"), std::string::npos);
}

TEST(JournalTest, DroppedRecordIsDetected) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kGrantUnit, 4, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  records.erase(records.begin() + 2);
  EXPECT_FALSE(Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, ReorderedRecordsAreDetected) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kEffect, 5, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  std::swap(records[1], records[6]);
  EXPECT_FALSE(Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, TailTruncationIsDetected) {
  Journal journal;
  SignWithTestKey(journal);
  for (int i = 0; i < 6; ++i) {
    journal.Append(Record(JournalEvent::kRevoke, 6, i));
  }
  journal.Checkpoint();
  std::vector<JournalRecord> records = journal.Records();
  records.pop_back();  // drop the newest record; checkpoint now dangles
  const Status status = Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("checkpoint beyond the last record"), std::string::npos);
}

TEST(JournalTest, ForgedCheckpointSignatureIsRejected) {
  Journal journal;
  SignWithTestKey(journal);
  journal.Append(Record(JournalEvent::kSealDomain, 7, 0));
  journal.Checkpoint();
  std::vector<JournalCheckpoint> checkpoints = journal.Checkpoints();
  ASSERT_EQ(checkpoints.size(), 1u);
  checkpoints[0].signature.s ^= 1;
  EXPECT_FALSE(Journal::VerifyChain(journal.Records(), checkpoints, TestKey().pub).ok());
  // And a valid signature under the WRONG key is equally useless.
  const uint8_t other_seed[] = {'o', 't', 'h', 'e', 'r'};
  const SchnorrKeyPair other = DeriveKeyPair(other_seed);
  EXPECT_FALSE(Journal::VerifyChain(journal.Records(), journal.Checkpoints(), other.pub).ok());
}

TEST(JournalTest, SerializeRoundTrip) {
  Journal journal(/*checkpoint_interval=*/3);
  SignWithTestKey(journal);
  for (int i = 0; i < 10; ++i) {
    JournalRecord record = Record(JournalEvent::kGrantMemory, 8, 20 + i);
    record.domain = 1;
    record.dst = 2;
    record.base = 0x1000 * i;
    record.size = 0x1000;
    record.aux = i;
    journal.Append(record);
  }
  journal.Checkpoint();
  const std::vector<uint8_t> wire = journal.Serialize();
  const auto parsed = Journal::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->records.size(), journal.size());
  ASSERT_EQ(parsed->checkpoints.size(), journal.checkpoint_count());
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].cap, journal.Records()[i].cap);
    EXPECT_EQ(parsed->records[i].link, journal.Records()[i].link);
  }
  EXPECT_TRUE(
      Journal::VerifyChain(parsed->records, parsed->checkpoints, TestKey().pub).ok());
}

TEST(JournalTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Journal::Deserialize(std::vector<uint8_t>{}).ok());
  EXPECT_FALSE(Journal::Deserialize(std::vector<uint8_t>{'T', 'Y', 'J', 'L'}).ok());
  std::vector<uint8_t> wrong_magic(64, 0xab);
  EXPECT_FALSE(Journal::Deserialize(wrong_magic).ok());

  Journal journal;
  SignWithTestKey(journal);
  journal.Append(Record(JournalEvent::kMintUnit, 9, 1));
  journal.Checkpoint();
  std::vector<uint8_t> wire = journal.Serialize();
  wire.resize(wire.size() / 2);  // truncated mid-record
  EXPECT_FALSE(Journal::Deserialize(wire).ok());
}

TEST(JournalTest, ConcurrentAppendsKeepTheChainConsistent) {
  Journal journal(/*checkpoint_interval=*/64);
  SignWithTestKey(journal);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(Record(JournalEvent::kCascade, t + 1, i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(journal.size(), static_cast<size_t>(kThreads * kPerThread));
  journal.Checkpoint();
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, ClearResetsToGenesis) {
  Journal journal(/*checkpoint_interval=*/2);
  SignWithTestKey(journal);
  for (int i = 0; i < 4; ++i) {
    journal.Append(Record(JournalEvent::kRevoke, 10, i));
  }
  journal.Clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.checkpoint_count(), 0u);
  EXPECT_EQ(journal.head(), JournalGenesis());
  EXPECT_EQ(journal.EventCount(JournalEvent::kRevoke), 0u);
}

TEST(JournalTest, SpanTreeGroupsRecordsByCausalRoot) {
  std::vector<JournalRecord> records;
  // Span 11: a dispatch (the root label) plus two cascade records; span 12
  // interleaves to prove grouping is by span id, not adjacency.
  JournalRecord dispatch = Record(JournalEvent::kDispatch, 11, 0);
  dispatch.op = 4;
  records.push_back(dispatch);
  records.push_back(Record(JournalEvent::kCascade, 12, 30));
  records.push_back(Record(JournalEvent::kCascade, 11, 31));
  records.push_back(Record(JournalEvent::kCascade, 11, 32));
  const std::string json = ExportSpanTreeJson(
      records, [](uint8_t op) { return "op" + std::to_string(op); });
  EXPECT_NE(json.find("\"span\":11"), std::string::npos);
  EXPECT_NE(json.find("\"span\":12"), std::string::npos);
  EXPECT_NE(json.find("\"root\":\"op4\""), std::string::npos);
  // Span 11 has three records, grouped despite the interleaving.
  const size_t span11 = json.find("\"span\":11");
  const size_t span12 = json.find("\"span\":12");
  ASSERT_NE(span11, std::string::npos);
  ASSERT_NE(span12, std::string::npos);
  EXPECT_LT(span11, span12);  // first-seen order preserved
}

}  // namespace
}  // namespace tyche
