// Copyright 2026 The Tyche Reproduction Authors.
// Unit tests for the hash-chained audit journal: chain construction and
// verification, tamper/drop/reorder/truncation detection, checkpoint
// signatures, wire round-trips, concurrency, and the span-tree export.

#include "src/support/journal.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tyche {
namespace {

SchnorrKeyPair TestKey() {
  const uint8_t seed[] = {'j', 'o', 'u', 'r', 'n', 'a', 'l'};
  return DeriveKeyPair(seed);
}

// Installs TestKey() as the checkpoint signer (Journal owns a mutex, so it
// is configured in place rather than returned from a factory).
void SignWithTestKey(Journal& journal) {
  journal.set_signer(
      [](const Digest& digest) { return SchnorrSign(TestKey().priv, digest); });
}

JournalRecord Record(JournalEvent event, uint64_t span, uint64_t cap) {
  JournalRecord record;
  record.event = static_cast<uint8_t>(event);
  record.span = span;
  record.cap = cap;
  return record;
}

TEST(JournalTest, AppendAssignsDenseSequenceAndTicks) {
  Journal journal;
  uint64_t tick = 100;
  journal.set_tick_source([&tick] { return tick++; });
  EXPECT_EQ(journal.Append(Record(JournalEvent::kMintMemory, 1, 7)), 0u);
  EXPECT_EQ(journal.Append(Record(JournalEvent::kShareMemory, 1, 8)), 1u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].tick, 100u);
  EXPECT_EQ(records[1].tick, 101u);
  EXPECT_EQ(journal.EventCount(JournalEvent::kMintMemory), 1u);
  EXPECT_EQ(journal.EventCount(JournalEvent::kShareMemory), 1u);
}

TEST(JournalTest, DisabledAppendIsANoOp) {
  Journal journal;
  journal.set_enabled(false);
  EXPECT_EQ(journal.Append(Record(JournalEvent::kRevoke, 1, 1)), Journal::kNoSeq);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.head(), JournalGenesis());
}

TEST(JournalTest, EmptyJournalVerifies) {
  EXPECT_TRUE(Journal::VerifyChain({}, {}, TestKey().pub).ok());
}

TEST(JournalTest, SignedChainVerifies) {
  Journal journal;
  SignWithTestKey(journal);
  for (int i = 0; i < 5; ++i) {
    journal.Append(Record(JournalEvent::kShareMemory, 1, 10 + i));
  }
  // No auto checkpoint yet (interval 128): the tail is uncovered.
  const Status uncovered =
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(uncovered.ok());
  journal.Checkpoint();
  ASSERT_EQ(journal.checkpoint_count(), 1u);
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, AutoCheckpointEveryInterval) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kCascade, 2, i));
  }
  EXPECT_EQ(journal.checkpoint_count(), 2u);
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
  // A second explicit checkpoint over the same head is deduplicated.
  journal.Checkpoint();
  EXPECT_EQ(journal.checkpoint_count(), 2u);
}

TEST(JournalTest, MutatedRecordBreaksTheChain) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kShareUnit, 3, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  records[5].cap ^= 1;  // single-bit change in one field
  const Status status = Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("hash chain broken"), std::string::npos);
}

TEST(JournalTest, DroppedRecordIsDetected) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kGrantUnit, 4, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  records.erase(records.begin() + 2);
  EXPECT_FALSE(Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, ReorderedRecordsAreDetected) {
  Journal journal(/*checkpoint_interval=*/4);
  SignWithTestKey(journal);
  for (int i = 0; i < 8; ++i) {
    journal.Append(Record(JournalEvent::kEffect, 5, i));
  }
  std::vector<JournalRecord> records = journal.Records();
  std::swap(records[1], records[6]);
  EXPECT_FALSE(Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, TailTruncationIsDetected) {
  Journal journal;
  SignWithTestKey(journal);
  for (int i = 0; i < 6; ++i) {
    journal.Append(Record(JournalEvent::kRevoke, 6, i));
  }
  journal.Checkpoint();
  std::vector<JournalRecord> records = journal.Records();
  records.pop_back();  // drop the newest record; checkpoint now dangles
  const Status status = Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("checkpoint beyond the last record"), std::string::npos);
}

TEST(JournalTest, ForgedCheckpointSignatureIsRejected) {
  Journal journal;
  SignWithTestKey(journal);
  journal.Append(Record(JournalEvent::kSealDomain, 7, 0));
  journal.Checkpoint();
  std::vector<JournalCheckpoint> checkpoints = journal.Checkpoints();
  ASSERT_EQ(checkpoints.size(), 1u);
  checkpoints[0].signature.s ^= 1;
  EXPECT_FALSE(Journal::VerifyChain(journal.Records(), checkpoints, TestKey().pub).ok());
  // And a valid signature under the WRONG key is equally useless.
  const uint8_t other_seed[] = {'o', 't', 'h', 'e', 'r'};
  const SchnorrKeyPair other = DeriveKeyPair(other_seed);
  EXPECT_FALSE(Journal::VerifyChain(journal.Records(), journal.Checkpoints(), other.pub).ok());
}

TEST(JournalTest, SerializeRoundTrip) {
  Journal journal(/*checkpoint_interval=*/3);
  SignWithTestKey(journal);
  for (int i = 0; i < 10; ++i) {
    JournalRecord record = Record(JournalEvent::kGrantMemory, 8, 20 + i);
    record.domain = 1;
    record.dst = 2;
    record.base = 0x1000 * i;
    record.size = 0x1000;
    record.aux = i;
    journal.Append(record);
  }
  journal.Checkpoint();
  const std::vector<uint8_t> wire = journal.Serialize();
  const auto parsed = Journal::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->records.size(), journal.size());
  ASSERT_EQ(parsed->checkpoints.size(), journal.checkpoint_count());
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].cap, journal.Records()[i].cap);
    EXPECT_EQ(parsed->records[i].link, journal.Records()[i].link);
  }
  EXPECT_TRUE(
      Journal::VerifyChain(parsed->records, parsed->checkpoints, TestKey().pub).ok());
}

TEST(JournalTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Journal::Deserialize(std::vector<uint8_t>{}).ok());
  EXPECT_FALSE(Journal::Deserialize(std::vector<uint8_t>{'T', 'Y', 'J', 'L'}).ok());
  std::vector<uint8_t> wrong_magic(64, 0xab);
  EXPECT_FALSE(Journal::Deserialize(wrong_magic).ok());

  Journal journal;
  SignWithTestKey(journal);
  journal.Append(Record(JournalEvent::kMintUnit, 9, 1));
  journal.Checkpoint();
  std::vector<uint8_t> wire = journal.Serialize();
  wire.resize(wire.size() / 2);  // truncated mid-record
  EXPECT_FALSE(Journal::Deserialize(wire).ok());
}

TEST(JournalTest, ConcurrentAppendsKeepTheChainConsistent) {
  Journal journal(/*checkpoint_interval=*/64);
  SignWithTestKey(journal);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(Record(JournalEvent::kCascade, t + 1, i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(journal.size(), static_cast<size_t>(kThreads * kPerThread));
  journal.Checkpoint();
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, ClearResetsToGenesis) {
  Journal journal(/*checkpoint_interval=*/2);
  SignWithTestKey(journal);
  for (int i = 0; i < 4; ++i) {
    journal.Append(Record(JournalEvent::kRevoke, 10, i));
  }
  journal.Clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.checkpoint_count(), 0u);
  EXPECT_EQ(journal.head(), JournalGenesis());
  EXPECT_EQ(journal.EventCount(JournalEvent::kRevoke), 0u);
}

// Installs a snapshot provider that returns a fixed fake digest, so tests
// can create checkpoints eligible as truncation anchors.
Digest FakeSnapshotDigest() {
  Digest digest;
  digest.bytes[0] = 0x5a;
  digest.bytes[31] = 0xa5;
  return digest;
}

TEST(JournalTest, CheckpointBindsSnapshotDigestIntoSignature) {
  Journal journal;
  SignWithTestKey(journal);
  journal.set_snapshot_provider([](uint64_t) { return FakeSnapshotDigest(); });
  journal.Append(Record(JournalEvent::kMintMemory, 20, 1));
  journal.Checkpoint();
  std::vector<JournalCheckpoint> checkpoints = journal.Checkpoints();
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints[0].snapshot, FakeSnapshotDigest());
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), checkpoints, TestKey().pub).ok());
  // The signature covers the snapshot digest: swapping it in is detected.
  checkpoints[0].snapshot.bytes[0] ^= 1;
  const Status status =
      Journal::VerifyChain(journal.Records(), checkpoints, TestKey().pub);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kJournalSignatureInvalid);
}

TEST(JournalTest, SnapshotRoundTripsThroughTheWireFormat) {
  Journal journal;
  SignWithTestKey(journal);
  journal.set_snapshot_provider([](uint64_t) { return FakeSnapshotDigest(); });
  journal.Append(Record(JournalEvent::kMintMemory, 21, 1));
  journal.Checkpoint();
  const auto parsed = Journal::Deserialize(journal.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->checkpoints.size(), 1u);
  EXPECT_EQ(parsed->checkpoints[0].snapshot, FakeSnapshotDigest());
}

// Builds a 10-record signed journal with a snapshot-bearing checkpoint at
// seq 5 and a covering checkpoint at the tail.
void BuildCompactable(Journal& journal) {
  SignWithTestKey(journal);
  journal.set_snapshot_provider([](uint64_t) { return FakeSnapshotDigest(); });
  for (int i = 0; i < 6; ++i) {
    journal.Append(Record(JournalEvent::kShareMemory, 22, 100 + i));
  }
  journal.Checkpoint();  // anchor at seq 5, carries the snapshot digest
  for (int i = 6; i < 10; ++i) {
    journal.Append(Record(JournalEvent::kShareMemory, 22, 100 + i));
  }
  journal.Checkpoint();  // covers the tail (seq 9)
}

TEST(JournalTest, TruncateBeforeCompactsAndStillVerifies) {
  Journal journal;
  BuildCompactable(journal);
  const Digest head_before = journal.head();
  ASSERT_TRUE(journal.TruncateBefore(5).ok());
  EXPECT_EQ(journal.base_seq(), 6u);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.head(), head_before);  // the chain head is unchanged
  // Event counts stay cumulative: all 10 shares are still accounted for.
  EXPECT_EQ(journal.EventCount(JournalEvent::kShareMemory), 10u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().seq, 6u);
  // The truncated journal verifies: the anchor checkpoint at seq 5 seeds the
  // chain, and the tail checkpoint covers the last record.
  EXPECT_TRUE(
      Journal::VerifyChain(records, journal.Checkpoints(), TestKey().pub).ok());
  // New appends continue the same chain.
  journal.Append(Record(JournalEvent::kRevoke, 23, 200));
  journal.Checkpoint();
  EXPECT_EQ(journal.Records().back().seq, 10u);
  EXPECT_TRUE(
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub).ok());
}

TEST(JournalTest, TruncateBeforeRequiresASnapshotAnchor) {
  Journal journal;
  SignWithTestKey(journal);  // no snapshot provider: checkpoints carry none
  for (int i = 0; i < 6; ++i) {
    journal.Append(Record(JournalEvent::kShareMemory, 24, i));
  }
  journal.Checkpoint();
  const Status status = journal.TruncateBefore(5);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  // And a seq without a checkpoint at all is equally rejected.
  Journal with_snapshots;
  BuildCompactable(with_snapshots);
  EXPECT_EQ(with_snapshots.TruncateBefore(3).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(with_snapshots.TruncateBefore(99).code(), ErrorCode::kOutOfRange);
}

TEST(JournalTest, TruncatedJournalWithoutAnchorIsRejected) {
  Journal journal;
  BuildCompactable(journal);
  ASSERT_TRUE(journal.TruncateBefore(5).ok());
  const std::vector<JournalRecord> records = journal.Records();
  std::vector<JournalCheckpoint> checkpoints = journal.Checkpoints();
  // Drop the anchor: the suffix chain has nothing to seed from.
  std::vector<JournalCheckpoint> no_anchor(checkpoints.begin() + 1, checkpoints.end());
  Status status = Journal::VerifyChain(records, no_anchor, TestKey().pub);
  EXPECT_EQ(status.code(), ErrorCode::kJournalChainBroken);
  // Tamper with the anchor's head: its signature no longer matches.
  checkpoints[0].head.bytes[7] ^= 1;
  status = Journal::VerifyChain(records, checkpoints, TestKey().pub);
  EXPECT_EQ(status.code(), ErrorCode::kJournalSignatureInvalid);
  // Re-signing the tampered anchor under a different key fails too: the
  // verifier only trusts the monitor's key.
  const uint8_t other_seed[] = {'e', 'v', 'i', 'l'};
  const SchnorrKeyPair other = DeriveKeyPair(other_seed);
  checkpoints[0].head.bytes[7] ^= 1;  // restore the head
  checkpoints[0].signature = SchnorrSign(
      other.priv, JournalCheckpointDigest(checkpoints[0].seq, checkpoints[0].head,
                                          checkpoints[0].snapshot));
  status = Journal::VerifyChain(records, checkpoints, TestKey().pub);
  EXPECT_EQ(status.code(), ErrorCode::kJournalSignatureInvalid);
}

TEST(JournalTest, UncoveredTailRuleCanBeRelaxedForRecovery) {
  Journal journal;
  SignWithTestKey(journal);
  for (int i = 0; i < 3; ++i) {
    journal.Append(Record(JournalEvent::kGrantMemory, 25, i));
  }
  journal.Checkpoint();
  // Two more records after the last checkpoint: a crash leaves exactly this.
  journal.Append(Record(JournalEvent::kGrantMemory, 25, 3));
  journal.Append(Record(JournalEvent::kGrantMemory, 25, 4));
  const Status strict =
      Journal::VerifyChain(journal.Records(), journal.Checkpoints(), TestKey().pub);
  EXPECT_EQ(strict.code(), ErrorCode::kJournalChainBroken);
  EXPECT_TRUE(Journal::VerifyChain(journal.Records(), journal.Checkpoints(),
                                   TestKey().pub, /*require_covered_tail=*/false)
                  .ok());
}

TEST(JournalTest, RestoreResumesTheChain) {
  Journal journal;
  BuildCompactable(journal);
  const auto parsed = Journal::Deserialize(journal.Serialize());
  ASSERT_TRUE(parsed.ok());

  Journal resumed;
  SignWithTestKey(resumed);
  resumed.Restore(parsed->records, parsed->checkpoints);
  EXPECT_EQ(resumed.size(), journal.size());
  EXPECT_EQ(resumed.head(), journal.head());
  EXPECT_EQ(resumed.checkpoint_count(), journal.checkpoint_count());
  EXPECT_EQ(resumed.EventCount(JournalEvent::kShareMemory), 10u);
  resumed.Append(Record(JournalEvent::kRevoke, 26, 300));
  resumed.Checkpoint();
  EXPECT_TRUE(Journal::VerifyChain(resumed.Records(), resumed.Checkpoints(),
                                   TestKey().pub)
                  .ok());
}

TEST(JournalTest, SpanTreeGroupsRecordsByCausalRoot) {
  std::vector<JournalRecord> records;
  // Span 11: a dispatch (the root label) plus two cascade records; span 12
  // interleaves to prove grouping is by span id, not adjacency.
  JournalRecord dispatch = Record(JournalEvent::kDispatch, 11, 0);
  dispatch.op = 4;
  records.push_back(dispatch);
  records.push_back(Record(JournalEvent::kCascade, 12, 30));
  records.push_back(Record(JournalEvent::kCascade, 11, 31));
  records.push_back(Record(JournalEvent::kCascade, 11, 32));
  const std::string json = ExportSpanTreeJson(
      records, [](uint8_t op) { return "op" + std::to_string(op); });
  EXPECT_NE(json.find("\"span\":11"), std::string::npos);
  EXPECT_NE(json.find("\"span\":12"), std::string::npos);
  EXPECT_NE(json.find("\"root\":\"op4\""), std::string::npos);
  // Span 11 has three records, grouped despite the interleaving.
  const size_t span11 = json.find("\"span\":11");
  const size_t span12 = json.find("\"span\":12");
  ASSERT_NE(span11, std::string::npos);
  ASSERT_NE(span12, std::string::npos);
  EXPECT_LT(span11, span12);  // first-seen order preserved
}

}  // namespace
}  // namespace tyche
