// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace tyche {
namespace {

TEST(PrngTest, Deterministic) {
  Prng a(12345);
  Prng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(PrngTest, BelowStaysInBounds) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.Below(17), 17u);
  }
}

TEST(PrngTest, RangeInclusive) {
  Prng prng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = prng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(PrngTest, RangeFullWidthDoesNotCollapse) {
  // Regression: Range(0, ~0ull) used to compute a span of hi - lo + 1 == 0,
  // and Below(0) pinned every draw to zero. The full 64-bit range must
  // produce the whole word instead.
  Prng prng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(prng.Range(0, ~0ull));
  }
  EXPECT_GT(seen.size(), 60u);  // essentially all draws distinct
  // A full-width range anchored above zero must stay above its floor.
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(prng.Range(1, ~0ull), 1u);
  }
}

TEST(PrngTest, ChanceRoughlyCalibrated) {
  Prng prng(11);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (prng.Chance(1, 4)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng prng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace tyche
