// Copyright 2026 The Tyche Reproduction Authors.
// Dispatch phase profiler (src/support/profiler.h): window accounting,
// phase nesting, exemplars, the folded-stack/attribution exports, and --
// the property the striped storage must hold -- no lost or double-counted
// samples when recording threads are created and destroyed repeatedly
// (thread churn re-assigns TLS stripes; the cells must outlive any thread).

#include "src/support/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace tyche {
namespace {

constexpr uint16_t kOps = 4;

std::string OpName(uint16_t op) { return "op" + std::to_string(op); }

uint64_t TotalCount(const DispatchProfiler& profiler) {
  uint64_t total = 0;
  for (uint16_t op = 0; op < kOps; ++op) {
    for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
      total += profiler.PhaseSnapshot(op, static_cast<DispatchPhase>(p)).count;
    }
  }
  return total;
}

TEST(ProfilerTest, DisabledRecordsNothing) {
  DispatchProfiler profiler(kOps);
  EXPECT_FALSE(profiler.enabled());
  EXPECT_FALSE(profiler.BeginWindow(100));
  { const ScopedPhase phase(DispatchPhase::kEngine); }
  EXPECT_EQ(profiler.TotalSamples(), 0u);
}

TEST(ProfilerTest, WindowSumsReconcileExactly) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  const uint64_t start = ProfilerNowNs();
  ASSERT_TRUE(profiler.BeginWindow(start));
  {
    const ScopedPhase engine(DispatchPhase::kEngine);
    {
      // Nested: journal time must NOT be charged to engine.
      const ScopedPhase journal(DispatchPhase::kJournal);
    }
  }
  const uint64_t end = ProfilerNowNs();
  profiler.EndWindow(/*op=*/1, /*span=*/5, end);

  uint64_t phase_sum = 0;
  for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
    phase_sum += profiler.PhaseSnapshot(1, static_cast<DispatchPhase>(p)).sum;
  }
  // The window opened and closed on our own clock reads, so the phase sums
  // are EXACTLY the end-to-end time (kOther absorbs the residual).
  EXPECT_EQ(phase_sum, end - start);
  EXPECT_GT(profiler.PhaseSnapshot(1, DispatchPhase::kOther).count, 0u);
}

TEST(ProfilerTest, NestedWindowRefused) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  ASSERT_TRUE(profiler.BeginWindow(ProfilerNowNs()));
  EXPECT_FALSE(profiler.BeginWindow(ProfilerNowNs()));
  profiler.EndWindow(0, 1, ProfilerNowNs());
  // Closed: a fresh window opens again.
  ASSERT_TRUE(profiler.BeginWindow(ProfilerNowNs()));
  profiler.EndWindow(0, 2, ProfilerNowNs());
}

TEST(ProfilerTest, ScopedPhaseOutsideWindowIsNoop) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  { const ScopedPhase phase(DispatchPhase::kBackend); }
  EXPECT_EQ(profiler.TotalSamples(), 0u);
}

TEST(ProfilerTest, DetachedSamplesAndExemplars) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  profiler.RecordDetached(2, DispatchPhase::kTelemetry, 100, /*span=*/11, /*ts_ns=*/1000);
  profiler.RecordDetached(2, DispatchPhase::kTelemetry, 900, /*span=*/12, /*ts_ns=*/2000);
  profiler.RecordDetached(2, DispatchPhase::kTelemetry, 300, /*span=*/13, /*ts_ns=*/3000);

  const auto snapshot = profiler.PhaseSnapshot(2, DispatchPhase::kTelemetry);
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 1300u);

  // The exemplar is the slowest sample, with its span and timestamp.
  const auto exemplar = profiler.Exemplar(2, DispatchPhase::kTelemetry);
  EXPECT_EQ(exemplar.ns, 900u);
  EXPECT_EQ(exemplar.span, 12u);
  EXPECT_EQ(exemplar.ts_ns, 2000u);
}

TEST(ProfilerTest, ResetClearsSamplesKeepsEnable) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  profiler.RecordDetached(0, DispatchPhase::kEngine, 50, 1, 1);
  ASSERT_GT(profiler.TotalSamples(), 0u);
  profiler.Reset();
  EXPECT_EQ(profiler.TotalSamples(), 0u);
  EXPECT_EQ(profiler.Exemplar(0, DispatchPhase::kEngine).ns, 0u);
  EXPECT_TRUE(profiler.enabled());
}

TEST(ProfilerTest, OutOfRangeOpIsDropped) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  profiler.RecordDetached(kOps + 3, DispatchPhase::kEngine, 50, 1, 1);
  profiler.RecordDetached(static_cast<uint16_t>(~0u), DispatchPhase::kEngine, 50, 1, 1);
  EXPECT_EQ(profiler.TotalSamples(), 0u);
}

TEST(ProfilerTest, FoldedStacksShapeAndWeights) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  profiler.RecordDetached(1, DispatchPhase::kEngine, 100, 1, 1);
  profiler.RecordDetached(1, DispatchPhase::kEngine, 150, 2, 2);
  profiler.RecordDetached(3, DispatchPhase::kJournal, 40, 3, 3);

  const std::string folded = ExportFoldedStacks(profiler, OpName);
  EXPECT_NE(folded.find("op1;engine 250\n"), std::string::npos);
  EXPECT_NE(folded.find("op3;journal 40\n"), std::string::npos);
  // Every line: "frame;frame weight".
  std::istringstream in(folded);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.substr(0, space).find(';'), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 2u);

  const std::string table = ExportAttributionTable(profiler, OpName, 10);
  EXPECT_NE(table.find("op1;engine"), std::string::npos);
  EXPECT_NE(table.find("op;phase"), std::string::npos);
}

// ===== Thread churn: stripes must neither lose nor double-count =====

TEST(ProfilerTest, ThreadChurnConservesSamples) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  // Waves of short-lived threads: each records a known number of windows,
  // then dies. TLS stripe slots get re-assigned across waves; the striped
  // cells must hold the grand total regardless.
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 6;
  constexpr int kWindowsPerThread = 25;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([&profiler, t] {
        const uint16_t op = static_cast<uint16_t>(t % kOps);
        for (int i = 0; i < kWindowsPerThread; ++i) {
          const uint64_t start = ProfilerNowNs();
          if (!profiler.BeginWindow(start)) {
            continue;
          }
          { const ScopedPhase engine(DispatchPhase::kEngine); }
          profiler.EndWindow(op, /*span=*/1, ProfilerNowNs());
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  // Each window records >= 1 sample (the engine phase may round to zero ns
  // on a coarse clock, but the residual/tail always lands somewhere), and
  // the per-(op, phase) counts must sum to exactly one engine + N others
  // per window -- conservatively: total samples seen by TotalSamples()
  // equals the per-snapshot sum (no stripe lost, none counted twice).
  EXPECT_EQ(profiler.TotalSamples(), TotalCount(profiler));
  // Engine-phase counts: every window charged the engine phase exactly once
  // IF the clock advanced inside it; windows are not lost across waves, so
  // the total window count is conserved in the op histograms' bucket sums.
  const uint64_t windows = static_cast<uint64_t>(kWaves) * kThreadsPerWave * kWindowsPerThread;
  uint64_t recorded_windows = 0;
  for (uint16_t op = 0; op < kOps; ++op) {
    // kOther (the residual) gets at least one nonzero charge per window on
    // any clock with ns-scale resolution; tolerate coarse clocks by summing
    // every phase and requiring at least one sample per window overall.
    for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
      recorded_windows += profiler.PhaseSnapshot(op, static_cast<DispatchPhase>(p)).count;
    }
  }
  EXPECT_GE(recorded_windows, windows);
}

TEST(ProfilerTest, ConcurrentWindowsAttributePerThread) {
  DispatchProfiler profiler(kOps);
  profiler.set_enabled(true);
  // Two live threads with interleaved windows: per-thread TLS scratch means
  // neither sees the other's phases.
  std::thread a([&profiler] {
    for (int i = 0; i < 1000; ++i) {
      if (!profiler.BeginWindow(ProfilerNowNs())) {
        continue;
      }
      { const ScopedPhase engine(DispatchPhase::kEngine); }
      profiler.EndWindow(0, 1, ProfilerNowNs());
    }
  });
  std::thread b([&profiler] {
    for (int i = 0; i < 1000; ++i) {
      if (!profiler.BeginWindow(ProfilerNowNs())) {
        continue;
      }
      { const ScopedPhase backend(DispatchPhase::kBackend); }
      profiler.EndWindow(1, 2, ProfilerNowNs());
    }
  });
  a.join();
  b.join();
  // Cross-attribution would show op0 backend samples or op1 engine samples.
  EXPECT_EQ(profiler.PhaseSnapshot(0, DispatchPhase::kBackend).count, 0u);
  EXPECT_EQ(profiler.PhaseSnapshot(1, DispatchPhase::kEngine).count, 0u);
}

}  // namespace
}  // namespace tyche
