// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/align.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(AlignTest, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(4097));
}

TEST(AlignTest, AlignDownUp) {
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_EQ(AlignDown(4096, 4096), 4096u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignUp(0, 4096), 0u);
}

TEST(AlignTest, IsAligned) {
  EXPECT_TRUE(IsPageAligned(0));
  EXPECT_TRUE(IsPageAligned(8192));
  EXPECT_FALSE(IsPageAligned(8193));
}

TEST(AddrRangeTest, ContainsAddr) {
  const AddrRange r{0x1000, 0x1000};
  EXPECT_TRUE(r.Contains(0x1000));
  EXPECT_TRUE(r.Contains(0x1fff));
  EXPECT_FALSE(r.Contains(0x2000));
  EXPECT_FALSE(r.Contains(0xfff));
}

TEST(AddrRangeTest, ContainsRange) {
  const AddrRange outer{0x1000, 0x3000};
  EXPECT_TRUE(outer.Contains(AddrRange{0x2000, 0x1000}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(AddrRange{0x3000, 0x2000}));
  EXPECT_FALSE(outer.Contains(AddrRange{0x0, 0x2000}));
}

TEST(AddrRangeTest, Overlaps) {
  const AddrRange r{0x1000, 0x1000};
  EXPECT_TRUE(r.Overlaps(AddrRange{0x1800, 0x1000}));
  EXPECT_TRUE(r.Overlaps(AddrRange{0x0, 0x1001}));
  EXPECT_FALSE(r.Overlaps(AddrRange{0x2000, 0x1000}));  // touching is disjoint
  EXPECT_FALSE(r.Overlaps(AddrRange{0x0, 0x1000}));
}

TEST(AddrRangeTest, EmptyRangeOverlapsNothing) {
  const AddrRange empty{0x1000, 0};
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.Overlaps(AddrRange{0, 0x10000}));
}

TEST(AddrRangeTest, WrappingRangesAreHostile) {
  const AddrRange wrap{~0ull - 4095, 8192};  // base + size overflows
  EXPECT_TRUE(wrap.Wraps());
  EXPECT_FALSE(wrap.Contains(0ull));
  EXPECT_FALSE(wrap.Contains(~0ull));
  const AddrRange whole{0, ~0ull};
  EXPECT_FALSE(whole.Contains(wrap));
  EXPECT_FALSE(wrap.Overlaps(whole));
  EXPECT_FALSE(whole.Overlaps(wrap));
  EXPECT_FALSE((AddrRange{0, 4096}.Wraps()));
}

}  // namespace
}  // namespace tyche
