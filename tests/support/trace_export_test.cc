// Copyright 2026 The Tyche Reproduction Authors.
// Chrome trace_event exporter: schema round-trip through the bundled
// parser, span nesting of journal records, and parser rejection cases.

#include "src/support/trace_export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tyche {
namespace {

std::string OpName(uint16_t op) { return "op" + std::to_string(op); }
std::string EventName(uint8_t event) { return "ev" + std::to_string(event); }

TraceEntry MakeEntry(uint64_t seq, uint16_t op, uint32_t core, uint64_t span,
                     uint64_t duration_ns, uint64_t start_ns = 0) {
  TraceEntry entry;
  entry.seq = seq;
  entry.op = op;
  entry.core = core;
  entry.domain = 1;
  entry.span = span;
  entry.duration_ns = duration_ns;
  entry.start_ns = start_ns;
  return entry;
}

JournalRecord MakeRecord(uint64_t seq, uint64_t span, uint8_t event, uint64_t tick) {
  JournalRecord record;
  record.seq = seq;
  record.span = span;
  record.event = event;
  record.tick = tick;
  return record;
}

TEST(TraceExportTest, RoundTripsSlicesAndInstants) {
  const std::vector<TraceEntry> trace = {
      MakeEntry(0, 2, 0, 10, 1500),
      MakeEntry(1, 6, 1, 11, 3000),
  };
  const std::vector<JournalRecord> records = {
      MakeRecord(0, 10, 0, 100),  // nested inside span 10's slice
      MakeRecord(1, 11, 3, 200),  // nested inside span 11's slice
      MakeRecord(2, 99, 4, 300),  // no slice -> journal tick timeline (pid 2)
  };
  const std::string json = ExportChromeTrace(trace, records, OpName, EventName);

  const auto parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  size_t slices = 0, instants = 0, metadata = 0;
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase == "X") {
      ++slices;
      EXPECT_EQ(event.pid, 1);
      EXPECT_GT(event.dur, 0.0);
    } else if (event.phase == "i") {
      ++instants;
    } else if (event.phase == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(slices, trace.size());
  EXPECT_EQ(instants, records.size());
  EXPECT_EQ(metadata, 2u);  // the two process_name entries

  // Span-keyed nesting: each matched record's instant sits inside its
  // owning slice's [ts, ts+dur] interval on the same pid/tid; the orphan
  // record lands on the journal-tick process.
  const ParsedTraceEvent* slice10 = nullptr;
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase == "X" && event.span == 10) {
      slice10 = &event;
    }
  }
  ASSERT_NE(slice10, nullptr);
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase != "i") {
      continue;
    }
    if (event.span == 10) {
      EXPECT_EQ(event.pid, 1);
      EXPECT_EQ(event.tid, slice10->tid);
      EXPECT_GE(event.ts, slice10->ts);
      EXPECT_LE(event.ts, slice10->ts + slice10->dur);
      EXPECT_EQ(event.name, "ev0");
    } else if (event.span == 99) {
      EXPECT_EQ(event.pid, 2);
      EXPECT_DOUBLE_EQ(event.ts, 0.3);  // tick 300 -> 0.3 us
    }
  }
}

TEST(TraceExportTest, RealTimestampsPlaceSlicesRelativeToBase) {
  const std::vector<TraceEntry> trace = {
      MakeEntry(0, 1, 0, 5, 1000, /*start_ns=*/1'000'000),
      MakeEntry(1, 1, 0, 6, 1000, /*start_ns=*/1'005'000),
  };
  const auto parsed = ParseChromeTrace(ExportChromeTrace(trace, {}, OpName, EventName));
  ASSERT_TRUE(parsed.ok());
  std::vector<double> slice_ts;
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase == "X") {
      slice_ts.push_back(event.ts);
    }
  }
  ASSERT_EQ(slice_ts.size(), 2u);
  EXPECT_DOUBLE_EQ(slice_ts[0], 0.0);  // earliest start is the timeline base
  EXPECT_DOUBLE_EQ(slice_ts[1], 5.0);  // 5000 ns later -> 5 us
}

TEST(TraceExportTest, EmptyInputsStillProduceValidDocument) {
  const auto parsed = ParseChromeTrace(ExportChromeTrace({}, {}, OpName, EventName));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);  // metadata only
}

TEST(TraceExportTest, NamesWithQuotesSurviveTheRoundTrip) {
  const std::vector<TraceEntry> trace = {MakeEntry(0, 3, 0, 1, 500)};
  const auto quoted = [](uint16_t) { return std::string("a\"b\\c"); };
  const auto parsed =
      ParseChromeTrace(ExportChromeTrace(trace, {}, quoted, EventName));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool found = false;
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase == "X") {
      EXPECT_EQ(event.name, "a\"b\\c");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseChromeTrace("").ok());
  EXPECT_FALSE(ParseChromeTrace("[]").ok());  // array form not produced by exporter
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":{}}").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[").ok());
  // Schema violations: a slice without dur, an event without pid.
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\","
                                "\"ts\":0,\"pid\":1,\"tid\":0}]}")
                   .ok());
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\","
                                "\"ts\":0,\"tid\":0}]}")
                   .ok());
  // Valid minimal instant event parses.
  EXPECT_TRUE(ParseChromeTrace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\","
                               "\"ts\":1.5,\"pid\":2,\"tid\":0}]}")
                  .ok());
}

}  // namespace
}  // namespace tyche
