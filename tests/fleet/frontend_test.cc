// Copyright 2026 The Tyche Reproduction Authors.
// Unit and negative-path coverage for the fleet subsystem (DESIGN.md §12):
// breaker state machine, cache epoch semantics, jittered backoff (including
// the migration retry desync regression), the LossyChannel duplicate-storm
// bound, bounded admission, and the RemoteVerifier negative paths the ISSUE
// names: deadline-exceeded quote, wrong-epoch cached measurement, and a
// mid-recovery monitor surfacing a typed retryable error.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/fleet/frontend.h"
#include "src/fleet/zipf.h"
#include "src/monitor/migration.h"
#include "src/support/backoff.h"
#include "src/support/faults.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

std::unique_ptr<Fleet> MakeFleet(uint32_t nodes = 3,
                                 IsaArch arch = IsaArch::kX86_64) {
  FleetOptions options;
  options.num_nodes = nodes;
  options.arch = arch;
  return Fleet::Create(options);
}

std::vector<uint64_t> BackoffSchedule(uint64_t seed, const BackoffPolicy& policy,
                                      uint32_t rounds) {
  Prng prng(seed);
  std::vector<uint64_t> schedule;
  for (uint32_t round = 1; round <= rounds; ++round) {
    schedule.push_back(JitteredBackoff(prng, policy, round));
  }
  return schedule;
}

// --- Backoff --------------------------------------------------------------

TEST(Backoff, EqualJitterBoundsAndCap) {
  const BackoffPolicy policy{/*base=*/1024, /*cap=*/1u << 16};
  Prng prng(7);
  for (uint32_t round = 1; round <= 20; ++round) {
    const uint64_t full =
        std::min<uint64_t>(policy.cap, policy.base << std::min(round - 1, 20u));
    const uint64_t wait = JitteredBackoff(prng, policy, round);
    EXPECT_GE(wait, full / 2) << "round " << round;
    EXPECT_LE(wait, full) << "round " << round;
  }
}

TEST(Backoff, SeedsDesynchronizeSchedulesDeterministically) {
  const BackoffPolicy policy{/*base=*/1024, /*cap=*/1u << 20};
  const auto a = BackoffSchedule(1, policy, 8);
  const auto b = BackoffSchedule(2, policy, 8);
  // Two clients backing off against one congested resource must not march
  // in lockstep (the retry-storm bug this guards against).
  EXPECT_NE(a, b);
  // But every schedule is replayable from its seed.
  EXPECT_EQ(a, BackoffSchedule(1, policy, 8));
  EXPECT_EQ(b, BackoffSchedule(2, policy, 8));
}

// Regression for the migration retry schedule: before the fix every retry
// round waited exactly vmcall_round_trip << round, so concurrent migrations
// hammered a congested channel in lockstep. Now the wait is seed-jittered:
// different seeds give different totals, the same seed replays exactly.
TEST(Backoff, MigrationRetryBackoffIsJitteredPerSeed) {
  const auto run = [](uint64_t backoff_seed) -> uint64_t {
    auto fleet = MakeFleet(/*nodes=*/2);
    if (fleet == nullptr) {
      ADD_FAILURE() << "fleet boot failed";
      return 0;
    }
    // Two dropped frames force two retry rounds, each charged with backoff.
    FaultPlan plan;
    plan.Add({std::string(faults::kChannelDrop), 1,
              DefaultFaultCode(faults::kChannelDrop), false});
    plan.Add({std::string(faults::kChannelDrop), 2,
              DefaultFaultCode(faults::kChannelDrop), false});
    ScopedFaultPlan scoped(std::move(plan));
    const ServiceRecord svc = fleet->service(0);
    LossyChannel wire;
    MigrationOptions options;
    options.backoff_seed = backoff_seed;
    const auto report = MigrateDomain(
        fleet->node(0)->monitor(), fleet->node(1)->monitor(), svc.domain, &wire,
        fleet->node(0)->monitor()->public_key(), options);
    if (!report.ok()) {
      ADD_FAILURE() << "migration failed: " << report.status().ToString();
      return 0;
    }
    EXPECT_GE(report->retries, 1u);
    EXPECT_GT(report->backoff_cycles, 0u);
    return report->backoff_cycles;
  };
  const uint64_t seed11 = run(11);
  const uint64_t seed22 = run(22);
  const uint64_t seed11_again = run(11);
  EXPECT_NE(seed11, seed22) << "backoff schedules are synchronized";
  EXPECT_EQ(seed11, seed11_again) << "backoff schedule is not reproducible";
}

// --- LossyChannel duplicate storm (satellite 2) ---------------------------

TEST(LossyChannel, DuplicateStormIsBounded) {
  LossyChannel channel;
  channel.set_max_pending_duplicates(4);
  // Every send duplicates: an unbounded queue would hold 2N frames.
  FaultPlan plan;
  plan.Add({std::string(faults::kChannelDup), 1,
            DefaultFaultCode(faults::kChannelDup), /*repeat=*/true});
  ScopedFaultPlan scoped(std::move(plan));
  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    const std::vector<uint8_t> frame = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(channel.Send(frame).ok());
  }
  EXPECT_LE(channel.pending(), kFrames + 4u);
  EXPECT_EQ(channel.duplicated(), 4u);
  EXPECT_EQ(channel.dup_suppressed(), kFrames - 4u);
  size_t received = 0;
  while (channel.Recv().ok()) {
    ++received;
  }
  EXPECT_EQ(received, kFrames + 4u);
  // Once the pending duplicates drain, the cap frees up again.
  const std::vector<uint8_t> extra = {0xFF};
  ASSERT_TRUE(channel.Send(extra).ok());
  EXPECT_EQ(channel.duplicated(), 5u);
}

// --- Circuit breaker ------------------------------------------------------

TEST(CircuitBreaker, FullStateMachine) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown_ns = 100;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  breaker.RecordFailure(0);
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.state(2), BreakerState::kClosed);  // below threshold
  breaker.RecordFailure(2);
  EXPECT_EQ(breaker.state(3), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.Admit(50));  // cooling down: fail fast

  // Cooldown elapsed: half-open admits exactly one probe.
  EXPECT_EQ(breaker.state(102), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Admit(102));
  EXPECT_FALSE(breaker.Admit(103)) << "second probe admitted while one is in flight";
  breaker.RecordSuccess(110);
  EXPECT_EQ(breaker.state(111), BreakerState::kClosed);

  // A failed probe re-opens and restarts the cooldown.
  breaker.RecordFailure(200);
  breaker.RecordFailure(201);
  breaker.RecordFailure(202);
  EXPECT_EQ(breaker.state(203), BreakerState::kOpen);
  EXPECT_TRUE(breaker.Admit(310));
  breaker.RecordFailure(311);
  EXPECT_EQ(breaker.state(312), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 3u);
  EXPECT_FALSE(breaker.Admit(330));

  // A success while closed clears the failure streak.
  breaker.Reset();
  breaker.RecordFailure(400);
  breaker.RecordFailure(401);
  breaker.RecordSuccess(402);
  breaker.RecordFailure(403);
  breaker.RecordFailure(404);
  EXPECT_EQ(breaker.state(405), BreakerState::kClosed);
}

// Regression for the half-open probe lock leak: a caller that admits a probe
// and then early-returns without reporting an outcome used to wedge the
// breaker half-open forever. The probe lock now lapses after open_cooldown_ns
// and a new probe is admitted.
TEST(CircuitBreaker, DroppedProbeLockLapsesAfterDeadline) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown_ns = 100;
  CircuitBreaker breaker(config);

  breaker.RecordFailure(0);
  breaker.RecordFailure(1);
  breaker.RecordFailure(2);
  EXPECT_EQ(breaker.state(103), BreakerState::kHalfOpen);

  // Probe admitted at t=103 ... and the caller drops it: no RecordSuccess,
  // no RecordFailure. Probe deadline = 103 + 100 = 203.
  ASSERT_TRUE(breaker.Admit(103));
  EXPECT_FALSE(breaker.Admit(150)) << "lock held while the probe could still land";
  EXPECT_FALSE(breaker.Admit(202));

  // The deadline passes: the lapsed probe no longer blocks recovery.
  EXPECT_TRUE(breaker.Admit(203)) << "dropped probe must lapse, not wedge";
  breaker.RecordSuccess(210);
  EXPECT_EQ(breaker.state(211), BreakerState::kClosed);

  // The deadline must not double-admit a live probe: a fresh half-open
  // breaker still holds the lock for a probe whose outcome arrives in time.
  breaker.RecordFailure(300);
  breaker.RecordFailure(301);
  breaker.RecordFailure(302);
  ASSERT_TRUE(breaker.Admit(403));
  EXPECT_FALSE(breaker.Admit(404));
  breaker.RecordFailure(405);  // probe failed: back to open, cooldown restarts
  EXPECT_EQ(breaker.state(406), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Admit(406));
}

// --- Measurement cache ----------------------------------------------------

TEST(MeasurementCache, EpochIsPartOfTheKey) {
  MeasurementCache cache(8);
  Digest m;
  m.bytes[0] = 0xAB;
  const MeasurementCacheKey epoch0{/*pcr_prefix=*/1, /*node=*/0, /*epoch=*/0,
                                   /*service=*/7};
  cache.Insert(epoch0, {m, 100});
  ASSERT_NE(cache.Lookup(epoch0), nullptr);

  // The same service on the same node after a recovery: different epoch,
  // different key — the stale entry is unreachable, not merely stale.
  MeasurementCacheKey epoch1 = epoch0;
  epoch1.epoch = 1;
  EXPECT_EQ(cache.Lookup(epoch1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  cache.InvalidateEpochsBelow(/*node=*/0, /*epoch=*/1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidated(), 1u);
  EXPECT_EQ(cache.Lookup(epoch0), nullptr);
}

TEST(MeasurementCache, LruEvictionAtCapacity) {
  MeasurementCache cache(2);
  Digest m;
  const MeasurementCacheKey a{1, 0, 0, 0};
  const MeasurementCacheKey b{1, 0, 0, 1};
  const MeasurementCacheKey c{1, 0, 0, 2};
  cache.Insert(a, {m, 1});
  cache.Insert(b, {m, 2});
  ASSERT_NE(cache.Lookup(a), nullptr);  // refresh a: b becomes LRU
  cache.Insert(c, {m, 3});
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
}

// Regression for the O(capacity) eviction scan replaced by the intrusive LRU
// list: the list must track EXACT recency order across interleaved hits, so
// evictions always take the true least-recently-used key, one per insert.
TEST(MeasurementCache, EvictionFollowsExactLruOrder) {
  MeasurementCache cache(4);
  Digest m;
  const MeasurementCacheKey a{1, 0, 0, 0};
  const MeasurementCacheKey b{1, 0, 0, 1};
  const MeasurementCacheKey c{1, 0, 0, 2};
  const MeasurementCacheKey d{1, 0, 0, 3};
  const MeasurementCacheKey e{1, 0, 0, 4};
  const MeasurementCacheKey f{1, 0, 0, 5};
  cache.Insert(a, {m, 1});
  cache.Insert(b, {m, 2});
  cache.Insert(c, {m, 3});
  cache.Insert(d, {m, 4});
  // Recency now (most to least): d c b a. Touch b, then d, then a.
  ASSERT_NE(cache.Lookup(b), nullptr);
  ASSERT_NE(cache.Lookup(d), nullptr);
  ASSERT_NE(cache.Lookup(a), nullptr);
  // Recency now: a d b c — so the next two evictions must be c, then b.
  cache.Insert(e, {m, 5});
  EXPECT_EQ(cache.Lookup(c), nullptr) << "c was LRU and must be the victim";
  cache.Insert(f, {m, 6});
  EXPECT_EQ(cache.Lookup(b), nullptr) << "b was next-LRU and must be the victim";
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(d), nullptr);
  EXPECT_NE(cache.Lookup(e), nullptr);
  EXPECT_NE(cache.Lookup(f), nullptr);
  // A re-insert of an existing key refreshes, never grows or evicts.
  cache.Insert(a, {m, 7});
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);
}

// The verified_at_ns staleness bugfix: with a TTL configured, an entry older
// than the bound reads as a miss, is erased, and counts as expired. TTL 0
// keeps the historical never-expires behavior.
TEST(MeasurementCache, TtlExpiresStaleEntries) {
  MeasurementCache cache(4, /*ttl_ns=*/100);
  Digest m;
  const MeasurementCacheKey key{1, 0, 0, 0};
  cache.Insert(key, {m, /*verified_at_ns=*/50});
  EXPECT_NE(cache.Lookup(key, /*now_ns=*/150), nullptr) << "within TTL";
  EXPECT_EQ(cache.Lookup(key, /*now_ns=*/151), nullptr) << "one past the bound";
  EXPECT_EQ(cache.expired(), 1u);
  EXPECT_EQ(cache.size(), 0u) << "expired entry must be erased, not just hidden";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u) << "an expiry reads as a miss";

  // TTL off (the default): verified_at_ns is recorded but never enforced.
  MeasurementCache eternal(4);
  eternal.Insert(key, {m, 1});
  EXPECT_NE(eternal.Lookup(key, UINT64_MAX), nullptr);
  EXPECT_EQ(eternal.expired(), 0u);
}

// --- Zipf load shape ------------------------------------------------------

TEST(ZipfPicker, HeadIsHotterThanTail) {
  ZipfPicker zipf(16, 1.2);
  Prng prng(99);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[zipf.Pick(prng)];
  }
  EXPECT_GT(counts[0], counts[8] * 2);
  EXPECT_GT(counts[0], counts[15] * 4);
}

// --- Front end: happy path, cache, and typed negative paths ---------------

TEST(FrontEnd, VerifiesThenServesFromCache) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  const auto first = frontend.Verify({/*service=*/0, /*nonce=*/0xD00D});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(first->attempts, 1u);
  EXPECT_EQ(first->measurement, fleet->service(0).measurement);

  const auto second = frontend.Verify({/*service=*/0, /*nonce=*/0xD00E});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->measurement, fleet->service(0).measurement);
  EXPECT_EQ(frontend.cache().hits(), 1u);

  const std::string scrape = frontend.metrics().ExportPrometheus();
  for (const char* family :
       {"tyche_fleet_verifications_total", "tyche_fleet_retries_total",
        "tyche_fleet_hedged_total", "tyche_fleet_hedged_wins_total",
        "tyche_fleet_shed_total", "tyche_fleet_failover_total",
        "tyche_fleet_deadline_exceeded_total", "tyche_fleet_cache_hits_total",
        "tyche_fleet_cache_misses_total", "tyche_fleet_cache_hit_ratio_percent",
        "tyche_fleet_breaker_state", "tyche_fleet_node_epoch",
        "tyche_fleet_queue_depth"}) {
    EXPECT_NE(scrape.find(family), std::string::npos) << family;
  }
}

// Negative path 1 (ISSUE): a verification that cannot complete inside its
// deadline returns typed kDeadlineExceeded — within bounded simulated time,
// never a hang and never a partial success.
TEST(FrontEnd, DeadlineExceededQuoteIsTyped) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  const uint64_t start = fleet->clock().now_ns;
  VerifyRequest request{/*service=*/0, /*nonce=*/1};
  request.deadline_ns = 5;  // less than one wire poll step
  const auto verdict = frontend.Verify(request);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), ErrorCode::kDeadlineExceeded);
  FrontEndOptions defaults;
  EXPECT_LE(fleet->clock().now_ns - start,
            request.deadline_ns + 2 * defaults.poll_step_ns);
}

// Negative path 2 (ISSUE): a monitor mid-recovery answers with a typed,
// retryable error — not silence and not stale state. Once recovery
// completes, verification succeeds against the bumped epoch.
TEST(FrontEnd, MidRecoveryMonitorIsTypedRetryable) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.auto_failover = false;  // isolate the typed error path
  options.max_attempts = 2;
  VerificationFrontEnd frontend(fleet.get(), options);

  fleet->node(0)->BeginRecovery();
  const auto during = frontend.Verify({/*service=*/0, /*nonce=*/2});
  ASSERT_FALSE(during.ok());
  EXPECT_EQ(during.code(), ErrorCode::kUnavailable);

  ASSERT_TRUE(fleet->node(0)->Recover().ok());
  EXPECT_EQ(fleet->node(0)->epoch(), 1u);
  const auto after = frontend.Verify({/*service=*/0, /*nonce=*/3});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(after->measurement, fleet->service(0).measurement);
}

// Negative path 3 (ISSUE): a cached measurement whose epoch predates a
// failover must never be served. The epoch is part of the cache key AND the
// invalidation sweep purges it; post-failover verification takes the full
// wire path against the replica and yields the unchanged golden measurement.
TEST(FrontEnd, WrongEpochCachedMeasurementNeverServed) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  const auto before = frontend.Verify({/*service=*/0, /*nonce=*/4});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->node, 0u);
  EXPECT_EQ(frontend.cache().size(), 1u);

  fleet->node(0)->Crash();
  ASSERT_TRUE(frontend.TriggerFailover(0).ok());
  EXPECT_GE(frontend.cache().invalidated(), 1u);
  EXPECT_EQ(fleet->service(0).node, 1u);

  const auto after = frontend.Verify({/*service=*/0, /*nonce=*/5});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->from_cache) << "stale-epoch entry was served";
  EXPECT_EQ(after->node, 1u);
  EXPECT_EQ(after->measurement, fleet->service(0).measurement);
}

// A tampered report dies at signature/digest verification, is retried, and
// never enters the cache — the cache-poisoning defense.
TEST(FrontEnd, PoisonedReportRetriedAndNeverCached) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  FaultPlan plan = FaultPlan::Single(faults::kFleetCachePoison, 1);
  ScopedFaultPlan scoped(std::move(plan));
  const auto verdict = frontend.Verify({/*service=*/0, /*nonce=*/6});
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u);
  EXPECT_GE(verdict->attempts, 2u) << "poisoned report was not retried";
  EXPECT_EQ(verdict->measurement, fleet->service(0).measurement);
  EXPECT_EQ(frontend.cache().size(), 1u);
}

// The serialized-report helper rejects truncation, bit flips, wrong nonces,
// and wrong golden measurements with typed integrity errors.
TEST(VerifySerializedReport, RejectsTamperAndStaleNonce) {
  auto fleet = MakeFleet(/*nodes=*/1);
  ASSERT_NE(fleet, nullptr);
  MonitorNode* node = fleet->node(0);
  const ServiceRecord svc = fleet->service(0);
  const auto handle = FindUnitCap(*node->monitor(), node->os_domain(),
                                  ResourceKind::kDomain, svc.domain);
  ASSERT_TRUE(handle.ok());
  const auto report = node->monitor()->AttestDomain(0, *handle, /*nonce=*/77);
  ASSERT_TRUE(report.ok());
  const std::vector<uint8_t> wire = SerializeAttestation(*report);
  const SchnorrPublicKey key = node->monitor()->public_key();

  ASSERT_TRUE(VerifySerializedReport(wire, key, 77, &svc.measurement).ok());

  auto flipped = wire;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_FALSE(VerifySerializedReport(flipped, key, 77, &svc.measurement).ok());

  const std::vector<uint8_t> truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(VerifySerializedReport(truncated, key, 77, &svc.measurement).ok());

  EXPECT_FALSE(VerifySerializedReport(wire, key, /*expected_nonce=*/78,
                                      &svc.measurement)
                   .ok())
      << "stale nonce accepted";

  Digest wrong = svc.measurement;
  wrong.bytes[0] ^= 0x01;
  EXPECT_FALSE(VerifySerializedReport(wire, key, 77, &wrong).ok());
}

// Hedged retry: when the primary's response is blackholed, the hedged
// duplicate (sent after hedge_delay_ns) wins within the same attempt.
TEST(FrontEnd, HedgedDuplicateWinsWhenResponseLost) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.hedge_delay_ns = 5'000;
  VerificationFrontEnd frontend(fleet.get(), options);

  // Occurrence 1 of fleet.verify_timeout is the identity response; 2 is the
  // first attest response — blackhole that one.
  FaultPlan plan = FaultPlan::Single(faults::kFleetVerifyTimeout, 2);
  ScopedFaultPlan scoped(std::move(plan));
  const auto verdict = frontend.Verify({/*service=*/0, /*nonce=*/8});
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u);
  EXPECT_GE(frontend.hedged(), 1u);
  EXPECT_TRUE(verdict->hedged_win);
  EXPECT_EQ(verdict->attempts, 1u) << "hedge should win within the attempt";
  EXPECT_EQ(verdict->measurement, fleet->service(0).measurement);
}

// Bounded admission: beyond queue_capacity requests shed with typed
// kOverloaded; cache-servable requests are still answered inline.
TEST(FrontEnd, OverloadShedsTypedAndPrefersCacheServable) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.queue_capacity = 2;
  VerificationFrontEnd frontend(fleet.get(), options);

  // Prime the cache for service 3 so it stays servable under overload.
  ASSERT_TRUE(frontend.Verify({/*service=*/3, /*nonce=*/9}).ok());

  ASSERT_TRUE(frontend.Submit({0, 10}).ok());
  ASSERT_TRUE(frontend.Submit({1, 11}).ok());
  const auto shed = frontend.Submit({2, 12});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(frontend.shed(), 1u);
  EXPECT_EQ(frontend.queue_depth(), 2u);

  const auto cached = frontend.Submit({3, 13});
  ASSERT_TRUE(cached.ok()) << "cache-servable request shed under overload";
  ASSERT_TRUE(cached->verdict.has_value());
  EXPECT_TRUE(cached->verdict->from_cache);

  const auto drained = frontend.DrainQueue();
  ASSERT_EQ(drained.size(), 2u);
  for (const auto& item : drained) {
    EXPECT_TRUE(item.result.ok()) << item.result.status().ToString();
  }
  EXPECT_EQ(frontend.queue_depth(), 0u);

  // The injected overflow site sheds even an empty queue — typed, no hang.
  FaultPlan plan = FaultPlan::Single(faults::kFleetQueueOverflow, 1);
  ScopedFaultPlan scoped(std::move(plan));
  const auto forced = frontend.Submit({4, 14});
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.code(), ErrorCode::kOverloaded);
}

// The full ladder driven purely by typed outcomes: a crashed node's breaker
// opens, a half-open probe fails, the node is declared down, failover
// recovers it from its journal and drains its domains to the replica, and
// the SAME Verify() call returns the golden measurement from the replica.
// Afterwards the two journals splice into one verifiable history.
TEST(FrontEnd, CrashFailoverEndToEndWithJournalSplice) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  fleet->node(0)->Crash();
  const auto verdict = frontend.Verify({/*service=*/0, /*nonce=*/15});
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->node, 1u);
  EXPECT_EQ(verdict->measurement, fleet->service(0).measurement);
  EXPECT_GE(verdict->attempts, 2u);

  EXPECT_EQ(frontend.failovers_triggered(), 1u);
  EXPECT_EQ(fleet->failovers(), 1u);
  EXPECT_GE(fleet->migrations(), 2u);  // both services homed on node 0 moved
  EXPECT_EQ(fleet->node(0)->epoch(), 1u);
  EXPECT_FALSE(fleet->node(0)->crashed());
  EXPECT_GE(frontend.breaker(0).times_opened(), 2u);

  const Status splice = VerifyJournalSplice(
      fleet->node(0)->monitor()->ExportJournal(),
      fleet->node(1)->monitor()->ExportJournal(),
      fleet->node(0)->monitor()->public_key(),
      fleet->node(1)->monitor()->public_key());
  EXPECT_TRUE(splice.ok()) << splice.ToString();
}

// --- Tenant quotas (DESIGN.md §13) ----------------------------------------

// Quota exhaustion is PER-TENANT and typed kQuotaExceeded — distinct from
// kOverloaded (the shared queue) — and one tenant burning its bucket must
// not affect another tenant's admission.
TEST(FrontEnd, QuotaExceededIsTypedPerTenant) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.tenant_quota.rate_per_sec = 1.0;
  options.tenant_quota.burst = 2.0;
  VerificationFrontEnd frontend(fleet.get(), options);

  const auto submit = [&](uint32_t service, uint64_t nonce, uint32_t tenant) {
    VerifyRequest request;
    request.service = service;
    request.nonce = nonce;
    request.tenant = tenant;
    return frontend.Submit(request);
  };

  // Tenant 1 spends its burst of 2, then hits its own wall.
  ASSERT_TRUE(submit(0, 1, /*tenant=*/1).ok());
  ASSERT_TRUE(submit(1, 2, /*tenant=*/1).ok());
  const auto rejected = submit(2, 3, /*tenant=*/1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kQuotaExceeded)
      << "quota exhaustion must be typed per-tenant, not kOverloaded";
  EXPECT_EQ(frontend.quota_rejections(), 1u);
  EXPECT_EQ(frontend.shed(), 0u) << "the shared queue was never full";

  // Fairness: tenant 2's bucket is its own — still admitted.
  ASSERT_TRUE(submit(2, 4, /*tenant=*/2).ok());

  // Refill: one simulated second grants tenant 1 another token.
  fleet->clock().Advance(1'000'000'000);
  ASSERT_TRUE(submit(3, 5, /*tenant=*/1).ok());

  const auto drained = frontend.DrainQueue();
  ASSERT_EQ(drained.size(), 4u);
  for (const auto& item : drained) {
    EXPECT_TRUE(item.result.ok()) << item.result.status().ToString();
  }

  const std::string scrape = frontend.metrics().ExportPrometheus();
  for (const char* family :
       {"tyche_fleet_tenant_admitted_total",
        "tyche_fleet_tenant_quota_exceeded_total", "tyche_fleet_tenant_tokens"}) {
    EXPECT_NE(scrape.find(family), std::string::npos) << family;
  }
}

// --- Batched drain (DESIGN.md §13) ----------------------------------------

// DrainQueue groups same-node requests and verifies their quotes with ONE
// batched Schnorr check; verdicts match what serial Verify() would produce.
TEST(FrontEnd, DrainQueueBatchesSameNodeRequests) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  // Services 0 and 1 are homed on node 0; service 4 on node 2. The head run
  // {0, 1} batches; the singleton {4} takes the serial path.
  ASSERT_TRUE(frontend.Submit({0, 20}).ok());
  ASSERT_TRUE(frontend.Submit({1, 21}).ok());
  ASSERT_TRUE(frontend.Submit({4, 22}).ok());

  const auto drained = frontend.DrainQueue();
  ASSERT_EQ(drained.size(), 3u);
  for (const auto& item : drained) {
    ASSERT_TRUE(item.result.ok()) << item.result.status().ToString();
    EXPECT_TRUE(item.result->measurement ==
                fleet->service(item.request.service).measurement);
    EXPECT_EQ(item.result->attempts, 1u);
  }
  EXPECT_EQ(frontend.batch_verifies(), 1u);
  EXPECT_EQ(frontend.batch_quotes(), 2u);
  EXPECT_EQ(frontend.batch_forged(), 0u);
  EXPECT_EQ(frontend.batch_fallbacks(), 0u);

  // Batched results are cached exactly like serial ones.
  const auto repeat = frontend.Submit({0, 23});
  ASSERT_TRUE(repeat.ok());
  ASSERT_TRUE(repeat->verdict.has_value());
  EXPECT_TRUE(repeat->verdict->from_cache);

  const std::string scrape = frontend.metrics().ExportPrometheus();
  for (const char* family :
       {"tyche_fleet_batch_verifies_total", "tyche_fleet_batch_quotes_total",
        "tyche_fleet_batch_forged_total", "tyche_fleet_batch_fallback_total",
        "tyche_fleet_session_established_total",
        "tyche_fleet_session_resumed_total",
        "tyche_fleet_session_rejected_total",
        "tyche_fleet_cache_expired_total"}) {
    EXPECT_NE(scrape.find(family), std::string::npos) << family;
  }
}

// The fleet.batch_forge site: one quote inside a batch is tampered in
// transit. The batch verification's fallback must attribute the forgery to
// THAT quote — it is rejected and re-verified clean through the full serial
// path, while the rest of the batch is served from the batch round.
TEST(FrontEnd, BatchForgedQuoteAttributedAndRetriedClean) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  VerificationFrontEnd frontend(fleet.get());

  ASSERT_TRUE(frontend.Submit({0, 30}).ok());
  ASSERT_TRUE(frontend.Submit({1, 31}).ok());

  FaultPlan plan = FaultPlan::Single(faults::kFleetBatchForge, 1);
  ScopedFaultPlan scoped(std::move(plan));
  const auto drained = frontend.DrainQueue();
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u);

  ASSERT_EQ(drained.size(), 2u);
  for (const auto& item : drained) {
    ASSERT_TRUE(item.result.ok()) << item.result.status().ToString();
    EXPECT_TRUE(item.result->measurement ==
                fleet->service(item.request.service).measurement)
        << "a forged quote must never surface as a verdict";
  }
  EXPECT_EQ(frontend.batch_verifies(), 1u);
  EXPECT_EQ(frontend.batch_forged(), 1u) << "the forgery must be attributed";
  EXPECT_EQ(frontend.batch_fallbacks(), 1u);
}

// --- Session resumption (DESIGN.md §13) -----------------------------------

// After one full two-tier verify, repeat verifications present the
// epoch-bound token and skip the chain walk: one wire round instead of
// identity + attest, and the verdict is marked resumed.
TEST(FrontEnd, SessionResumptionSkipsChainWalk) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.cache_capacity = 0;  // force every verification onto the wire
  VerificationFrontEnd frontend(fleet.get(), options);

  const auto first = frontend.Verify({/*service=*/0, /*nonce=*/40});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->resumed);
  EXPECT_EQ(frontend.sessions_established(), 1u);

  const uint64_t served_before = fleet->node(0)->served();
  const auto second = frontend.Verify({/*service=*/0, /*nonce=*/41});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->resumed);
  EXPECT_EQ(second->attempts, 1u);
  EXPECT_TRUE(second->measurement == fleet->service(0).measurement);
  EXPECT_EQ(frontend.sessions_resumed(), 1u);
  EXPECT_EQ(fleet->node(0)->served() - served_before, 1u)
      << "a resumed verify is one wire round, not identity + attest";

  // The session is per NODE: service 1 shares node 0 and resumes too.
  const auto sibling = frontend.Verify({/*service=*/1, /*nonce=*/42});
  ASSERT_TRUE(sibling.ok());
  EXPECT_TRUE(sibling->resumed);
  EXPECT_EQ(frontend.sessions_resumed(), 2u);
  EXPECT_EQ(frontend.sessions_established(), 1u);
}

// An epoch bump the front end did NOT drive (the node recovered behind its
// back) makes the held token stale. The node answers a typed
// kFailedPrecondition; the front end drops the session, completes the full
// chain walk in the same attempt, and the breaker is never tripped.
TEST(FrontEnd, StaleSessionTokenRejectedAfterEpochBump) {
  auto fleet = MakeFleet();
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.cache_capacity = 0;
  VerificationFrontEnd frontend(fleet.get(), options);

  ASSERT_TRUE(frontend.Verify({/*service=*/0, /*nonce=*/50}).ok());
  ASSERT_EQ(frontend.sessions_established(), 1u);

  // The node recovers on its own: epoch 0 -> 1, every outstanding token dies.
  ASSERT_TRUE(fleet->node(0)->Recover().ok());
  ASSERT_EQ(fleet->node(0)->epoch(), 1u);

  const auto verdict = frontend.Verify({/*service=*/0, /*nonce=*/51});
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_FALSE(verdict->resumed) << "stale token must fall back to the chain walk";
  EXPECT_EQ(verdict->epoch, 1u);
  EXPECT_EQ(verdict->attempts, 1u) << "the fallback runs within the same attempt";
  EXPECT_EQ(frontend.sessions_rejected(), 1u);
  EXPECT_EQ(frontend.breaker(0).times_opened(), 0u)
      << "a stale token says nothing about the node's health";

  // The full verify against the new instance re-establishes a session …
  EXPECT_EQ(frontend.sessions_established(), 2u);
  // … and the next repeat resumes against epoch 1.
  const auto resumed = frontend.Verify({/*service=*/0, /*nonce=*/52});
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->epoch, 1u);
}

// Node-side token validation is STATELESS: the node derives the shared
// secret from the request's client_pub and recomputes the epoch-bound token.
// Wrong epoch, wrong key, and unknown domain each get their typed answer.
TEST(FrontEnd, NodeStatelesslyValidatesResumeTokens) {
  auto fleet = MakeFleet(/*nodes=*/1);
  ASSERT_NE(fleet, nullptr);
  MonitorNode* node = fleet->node(0);

  const uint8_t seed[] = {'r', 'e', 's', 'u', 'm', 'e', '-', 't'};
  const SchnorrKeyPair client = DeriveKeyPair(seed);
  const Digest secret = node->monitor()->SessionSecret(client.pub);

  const auto roundtrip = [&](const FleetRequest& request) {
    FleetResponse response;
    response.code = ErrorCode::kInternal;
    EXPECT_TRUE(node->requests()->Send(EncodeFleetRequest(request)).ok());
    node->Pump();
    const auto frame = node->responses()->Recv();
    EXPECT_TRUE(frame.ok());
    if (frame.ok()) {
      EXPECT_TRUE(DecodeFleetResponse(*frame, &response));
    }
    return response;
  };

  FleetRequest request;
  request.request_id = 1;
  request.kind = FleetRequestKind::kResume;
  request.domain = fleet->service(0).domain;
  request.nonce = 0x60;
  request.client_pub = client.pub.y;
  request.token = FleetSessionToken(secret, node->id(), node->epoch());

  // A valid token gets measurement + ack MAC, both checkable by the holder
  // of the shared secret.
  const FleetResponse ok = roundtrip(request);
  EXPECT_EQ(ok.code, ErrorCode::kOk);
  ASSERT_EQ(ok.payload.size(), kResumePayloadSize);
  Digest measurement;
  Digest ack;
  std::copy(ok.payload.begin(), ok.payload.begin() + 32, measurement.bytes.begin());
  std::copy(ok.payload.begin() + 32, ok.payload.end(), ack.bytes.begin());
  EXPECT_TRUE(measurement == fleet->service(0).measurement);
  EXPECT_TRUE(ack == FleetSessionAck(secret, node->id(), node->epoch(),
                                     request.domain, request.nonce, measurement));

  // A token minted for a different epoch is refused with kFailedPrecondition.
  request.request_id = 2;
  request.token = FleetSessionToken(secret, node->id(), node->epoch() + 1);
  EXPECT_EQ(roundtrip(request).code, ErrorCode::kFailedPrecondition);

  // A token under the wrong shared secret (attacker with a different key
  // replaying someone's token) is likewise refused.
  const uint8_t other_seed[] = {'o', 't', 'h', 'e', 'r', '-', 'k', 'y'};
  const SchnorrKeyPair other = DeriveKeyPair(other_seed);
  request.request_id = 3;
  request.client_pub = other.pub.y;
  request.token = FleetSessionToken(secret, node->id(), node->epoch());
  EXPECT_EQ(roundtrip(request).code, ErrorCode::kFailedPrecondition);

  // A valid token for a nonexistent domain: kNotFound, no payload.
  request.request_id = 4;
  request.client_pub = client.pub.y;
  request.domain = 0xDEAD;
  EXPECT_EQ(roundtrip(request).code, ErrorCode::kNotFound);
}

// --- Scale: thousands of domains per node (DESIGN.md §13) -----------------

// With window_stride auto the fleet packs service windows tightly, so ~1k
// domains per node fit inside the 64 MiB simulated machines; verification,
// batching, and caching behave identically at that scale.
TEST(FrontEnd, ThousandsOfDomainsPerNodeTightStride) {
  FleetOptions options;
  options.num_nodes = 2;
  options.services_per_node = 1024;
  options.pages_per_service = 1;
  auto fleet = Fleet::Create(options);
  ASSERT_NE(fleet, nullptr);
  ASSERT_EQ(fleet->num_services(), 2048u);

  VerificationFrontEnd frontend(fleet.get());
  for (const uint32_t service : {0u, 1023u, 1024u, 2047u}) {
    const auto verdict = frontend.Verify({service, /*nonce=*/0x7000 + service});
    ASSERT_TRUE(verdict.ok()) << "service " << service << ": "
                              << verdict.status().ToString();
    EXPECT_TRUE(verdict->measurement == fleet->service(service).measurement);
  }

  // A full batch drains through one Schnorr check even at this density.
  for (uint32_t service = 8; service < 16; ++service) {
    ASSERT_TRUE(frontend.Submit({service, 0x7100 + service}).ok());
  }
  const auto drained = frontend.DrainQueue();
  ASSERT_EQ(drained.size(), 8u);
  for (const auto& item : drained) {
    ASSERT_TRUE(item.result.ok()) << item.result.status().ToString();
    EXPECT_TRUE(item.result->measurement ==
                fleet->service(item.request.service).measurement);
  }
  EXPECT_EQ(frontend.batch_verifies(), 1u);
  EXPECT_EQ(frontend.batch_quotes(), 8u);
}

}  // namespace
}  // namespace tyche
