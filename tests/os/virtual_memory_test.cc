// Copyright 2026 The Tyche Reproduction Authors.
// Guest virtual memory: per-process address spaces under the monitor's
// layer. Demonstrates the two-layer argument of §3.5 concretely -- the OS
// keeps its own paging, the monitor's enforcement sits underneath, and a
// guest mapping can never resurrect physically revoked access.

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class VirtualMemoryTest : public BootedMachineTest {};

TEST_F(VirtualMemoryTest, ProcessesShareVaDifferentFrames) {
  const Pid a = *os_->CreateProcess("a", kMiB);
  const Pid b = *os_->CreateProcess("b", kMiB);

  // Both processes use the SAME virtual address; each sees its own frame.
  ASSERT_TRUE(os_->RunProcess(1, a).ok());
  ASSERT_TRUE(machine_->CheckedWrite64Virt(1, LinOs::kUserBase, 0xAAAA).ok());
  ASSERT_TRUE(os_->RunProcess(1, b).ok());
  ASSERT_TRUE(machine_->CheckedWrite64Virt(1, LinOs::kUserBase, 0xBBBB).ok());
  ASSERT_TRUE(os_->RunProcess(1, a).ok());
  EXPECT_EQ(*machine_->CheckedRead64Virt(1, LinOs::kUserBase), 0xAAAAu);
  ASSERT_TRUE(os_->RunProcess(1, b).ok());
  EXPECT_EQ(*machine_->CheckedRead64Virt(1, LinOs::kUserBase), 0xBBBBu);
  os_->StopUserMode(1);
  EXPECT_EQ(os_->RunningOn(1), LinOs::kInvalidPid);

  // The physical frames really differ.
  const uint64_t pa_a = (*os_->GetProcess(a))->memory.base;
  const uint64_t pa_b = (*os_->GetProcess(b))->memory.base;
  EXPECT_NE(pa_a, pa_b);
  EXPECT_EQ(*machine_->CheckedRead64(0, pa_a), 0xAAAAu);
  EXPECT_EQ(*machine_->CheckedRead64(0, pa_b), 0xBBBBu);
}

TEST_F(VirtualMemoryTest, UserModeSeesOnlyItsAddressSpace) {
  const Pid pid = *os_->CreateProcess("jail", kMiB);
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  EXPECT_EQ(os_->RunningOn(1), pid);

  // Inside the process's VA space: fine.
  EXPECT_TRUE(machine_->CheckedWrite64Virt(1, LinOs::kUserBase + kMiB - 8, 1).ok());
  // Below / beyond the user segment: unmapped VAs fault in the guest walk.
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, LinOs::kUserBase - kPageSize).ok());
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, LinOs::kUserBase + kMiB).ok());
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, 0x0).ok());
  // Kernel physical addresses are simply not in the process's VA space.
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, managed_.base).ok());
  os_->StopUserMode(1);
}

TEST_F(VirtualMemoryTest, PageTablesAreOutOfUserReach) {
  // The process cannot rewrite its own translations: its page-table frames
  // live in the kernel's pool, which no user VA maps.
  const Pid pid = *os_->CreateProcess("sneaky", kMiB);
  const OsProcess* process = *os_->GetProcess(pid);
  const uint64_t pt_root = process->address_space->root();
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  // Try every page of the user segment: none of them aliases the PT root.
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, pt_root).ok());  // VA = that PA? unmapped
  // And the root itself is a kernel physical address outside the process.
  EXPECT_FALSE(process->memory.Contains(pt_root));
  os_->StopUserMode(1);
}

TEST_F(VirtualMemoryTest, StraddlingVirtAccessesChunkCorrectly) {
  const Pid pid = *os_->CreateProcess("straddle", kMiB);
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  // A write crossing a page boundary must land in both frames correctly.
  const uint64_t va = LinOs::kUserBase + kPageSize - 3;
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6};
  ASSERT_TRUE(machine_->CheckedWriteVirt(1, va, std::span<const uint8_t>(data)).ok());
  std::vector<uint8_t> back(6);
  ASSERT_TRUE(machine_->CheckedReadVirt(1, va, std::span<uint8_t>(back)).ok());
  EXPECT_EQ(back, data);
  os_->StopUserMode(1);
}

TEST_F(VirtualMemoryTest, GuestMappingCannotResurrectRevokedMemory) {
  // The crown jewel: the process carves an enclave; the OS's guest mapping
  // for the carved range is gone -- but EVEN IF the OS maliciously remapped
  // it, the monitor's layer (EPT) faults the access. Two-layer enforcement.
  const Pid pid = *os_->CreateProcess("victim", 8 * kMiB);
  const TycheImage image = TycheImage::MakeDemo("wallet", 2 * kPageSize, 0);
  auto enclave = os_->SpawnProcessEnclave(0, pid, image, 2 * kMiB, 2, OsCoreCap(2));
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  // (a) The honest path: the carved VA range is unmapped in the guest PT.
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  const uint64_t carved_va = LinOs::kUserBase + 6 * kMiB;
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, carved_va).ok());
  // The uncarved part still works.
  EXPECT_TRUE(machine_->CheckedRead64Virt(1, LinOs::kUserBase).ok());
  os_->StopUserMode(1);

  // (b) The malicious path: the "kernel" force-remaps the carved VA to the
  // enclave's physical frames in the guest PT...
  const OsProcess* process = *os_->GetProcess(pid);
  ASSERT_TRUE(process->address_space
                  ->MapRange(carved_va, enclave->base(), kPageSize, Perms(Perms::kRWX))
                  .ok());
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  // ... and the access STILL faults: the monitor's layer has no mapping for
  // domain 0 over the enclave's frames.
  EXPECT_FALSE(machine_->CheckedRead64Virt(1, carved_va).ok());
  os_->StopUserMode(1);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(VirtualMemoryTest, KillReleasesPageTableFrames) {
  std::vector<Pid> pids;
  for (int i = 0; i < 8; ++i) {
    const auto pid = os_->CreateProcess("churn", kMiB);
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  for (const Pid pid : pids) {
    ASSERT_TRUE(os_->KillProcess(pid).ok());
  }
  // Churn again: if frames leaked, this would eventually exhaust the pool.
  for (int round = 0; round < 64; ++round) {
    const auto pid = os_->CreateProcess("churn2", kMiB);
    ASSERT_TRUE(pid.ok()) << "round " << round;
    ASSERT_TRUE(os_->KillProcess(*pid).ok());
  }
}

TEST_F(VirtualMemoryTest, RunProcessValidation) {
  EXPECT_EQ(os_->RunProcess(1, 9999).code(), ErrorCode::kNotFound);
  const Pid pid = *os_->CreateProcess("gone", kMiB);
  ASSERT_TRUE(os_->KillProcess(pid).ok());
  EXPECT_EQ(os_->RunProcess(1, pid).code(), ErrorCode::kNotFound);
}

TEST_F(VirtualMemoryTest, KillWhileRunningDropsAddressSpace) {
  const Pid pid = *os_->CreateProcess("running", kMiB);
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  ASSERT_TRUE(os_->KillProcess(pid).ok());
  EXPECT_EQ(os_->RunningOn(1), LinOs::kInvalidPid);
  // Core 1 is back in kernel mode: physical accesses work again.
  EXPECT_TRUE(machine_->CheckedRead64(1, managed_.base).ok());
}

TEST_F(VirtualMemoryTest, CopyToFromUserSyscalls) {
  const Pid pid = *os_->CreateProcess("user-io", kMiB);
  const std::vector<uint8_t> data = {9, 8, 7, 6, 5};
  // Kernel writes into the process at a USER virtual address.
  ASSERT_TRUE(os_->SysWriteUser(0, pid, LinOs::kUserBase + 100,
                                std::span<const uint8_t>(data))
                  .ok());
  // The process sees it at that VA.
  ASSERT_TRUE(os_->RunProcess(1, pid).ok());
  std::vector<uint8_t> seen(5);
  ASSERT_TRUE(
      machine_->CheckedReadVirt(1, LinOs::kUserBase + 100, std::span<uint8_t>(seen)).ok());
  EXPECT_EQ(seen, data);
  os_->StopUserMode(1);
  // And the kernel reads it back through the same path.
  EXPECT_EQ(*os_->SysReadUser(0, pid, LinOs::kUserBase + 100, 5), data);
  // Unmapped user VAs fault inside the syscall (the page table IS the
  // bounds check).
  EXPECT_FALSE(os_->SysReadUser(0, pid, LinOs::kUserBase + 2 * kMiB, 8).ok());
  EXPECT_FALSE(os_->SysWriteUser(0, pid, 0x1000, std::span<const uint8_t>(data)).ok());
  // Straddling a page boundary works.
  ASSERT_TRUE(os_->SysWriteUser(0, pid, LinOs::kUserBase + kPageSize - 2,
                                std::span<const uint8_t>(data))
                  .ok());
  EXPECT_EQ(*os_->SysReadUser(0, pid, LinOs::kUserBase + kPageSize - 2, 5), data);
}

}  // namespace
}  // namespace tyche
