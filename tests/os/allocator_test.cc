// Copyright 2026 The Tyche Reproduction Authors.

#include "src/os/allocator.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

TEST(RangeAllocatorTest, AllocWithinPool) {
  RangeAllocator alloc(AddrRange{kMiB, 4 * kMiB});
  const auto a = alloc.Alloc(64 * 1024);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(AddrRange(kMiB, 4 * kMiB).Contains(*a));
  EXPECT_TRUE(IsPageAligned(a->base));
  EXPECT_EQ(a->size, 64 * 1024u);
}

TEST(RangeAllocatorTest, RoundsUpToPages) {
  RangeAllocator alloc(AddrRange{0, kMiB});
  const auto a = alloc.Alloc(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size, kPageSize);
}

TEST(RangeAllocatorTest, DisjointAllocations) {
  RangeAllocator alloc(AddrRange{0, kMiB});
  const auto a = alloc.Alloc(128 * 1024);
  const auto b = alloc.Alloc(128 * 1024);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->Overlaps(*b));
}

TEST(RangeAllocatorTest, ExhaustionAndRecovery) {
  RangeAllocator alloc(AddrRange{0, 4 * kPageSize});
  const auto a = alloc.Alloc(2 * kPageSize);
  const auto b = alloc.Alloc(2 * kPageSize);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.Alloc(kPageSize).code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_TRUE(alloc.Alloc(2 * kPageSize).ok());
}

TEST(RangeAllocatorTest, AlignmentHonored) {
  RangeAllocator alloc(AddrRange{kPageSize, 8 * kMiB});
  const auto a = alloc.Alloc(kPageSize, kMiB);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(IsAligned(a->base, kMiB));
}

TEST(RangeAllocatorTest, CoalescingPreventsFragmentation) {
  RangeAllocator alloc(AddrRange{0, kMiB});
  const auto a = alloc.Alloc(256 * 1024);
  const auto b = alloc.Alloc(256 * 1024);
  const auto c = alloc.Alloc(256 * 1024);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());
  ASSERT_TRUE(alloc.Free(*b).ok());  // middle last: must coalesce into one
  EXPECT_EQ(alloc.fragment_count(), 1u);
  EXPECT_EQ(alloc.largest_free(), kMiB);
}

TEST(RangeAllocatorTest, DoubleFreeDetected) {
  RangeAllocator alloc(AddrRange{0, kMiB});
  const auto a = alloc.Alloc(kPageSize);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.Free(*a).code(), ErrorCode::kFailedPrecondition);
}

TEST(RangeAllocatorTest, FreeOutsidePoolRejected) {
  RangeAllocator alloc(AddrRange{kMiB, kMiB});
  EXPECT_FALSE(alloc.Free(AddrRange{0, kPageSize}).ok());
  EXPECT_FALSE(alloc.Free(AddrRange{kMiB, 0}).ok());
}

TEST(RangeAllocatorTest, RandomizedChurnConservesBytes) {
  Prng prng(4242);
  RangeAllocator alloc(AddrRange{0, 16 * kMiB});
  std::vector<AddrRange> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || prng.Chance(3, 5)) {
      const auto range = alloc.Alloc((1 + prng.Below(16)) * kPageSize);
      if (range.ok()) {
        live.push_back(*range);
      }
    } else {
      const size_t index = prng.Below(live.size());
      ASSERT_TRUE(alloc.Free(live[index]).ok());
      live.erase(live.begin() + static_cast<long>(index));
    }
    // Conservation: free + live == pool.
    uint64_t live_bytes = 0;
    for (const AddrRange& range : live) {
      live_bytes += range.size;
    }
    ASSERT_EQ(alloc.free_bytes() + live_bytes, 16 * kMiB);
  }
  for (const AddrRange& range : live) {
    ASSERT_TRUE(alloc.Free(range).ok());
  }
  EXPECT_EQ(alloc.fragment_count(), 1u);
}

}  // namespace
}  // namespace tyche
