// Copyright 2026 The Tyche Reproduction Authors.
// LinOS: processes, syscalls, the monopoly problem, and the monitor-backed
// extensions (driver sandboxes, per-process enclaves).

#include "src/os/kernel.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class KernelTest : public BootedMachineTest {};

TEST_F(KernelTest, ProcessLifecycle) {
  const auto pid = os_->CreateProcess("init", kMiB);
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(os_->process_count(), 1u);
  const auto process = os_->GetProcess(*pid);
  ASSERT_TRUE(process.ok());
  EXPECT_EQ((*process)->name, "init");
  EXPECT_EQ((*process)->memory.size, kMiB);
  ASSERT_TRUE(os_->KillProcess(*pid).ok());
  EXPECT_EQ(os_->process_count(), 0u);
  EXPECT_EQ(os_->KillProcess(*pid).code(), ErrorCode::kNotFound);
}

TEST_F(KernelTest, SyscallsBoundsChecked) {
  const Pid pid = *os_->CreateProcess("app", kMiB);
  const AddrRange memory = (*os_->GetProcess(pid))->memory;
  const std::vector<uint8_t> data = {1, 2, 3};
  EXPECT_TRUE(os_->SysWrite(0, pid, memory.base, std::span<const uint8_t>(data)).ok());
  EXPECT_EQ(*os_->SysRead(0, pid, memory.base, 3), data);
  // Outside the process: rejected by the OS (software check).
  EXPECT_EQ(os_->SysWrite(0, pid, memory.end(), std::span<const uint8_t>(data)).code(),
            ErrorCode::kAccessViolation);
  EXPECT_EQ((*os_->GetProcess(pid))->syscalls, 2u);
}

TEST_F(KernelTest, ProcessesShareTheSchedulerFairly) {
  const Pid a = *os_->CreateProcess("a", kMiB);
  const Pid b = *os_->CreateProcess("b", kMiB);
  std::map<uint32_t, int> slices;
  for (int i = 0; i < 10; ++i) {
    ++slices[os_->scheduler().Tick()];
  }
  EXPECT_EQ(slices[a], 5);
  EXPECT_EQ(slices[b], 5);
}

TEST_F(KernelTest, TheMonopolyProblem) {
  // A commodity kernel reads any process's memory: process isolation does
  // not protect the user from privileged code (§2.2).
  const Pid victim = *os_->CreateProcess("victim", kMiB);
  const AddrRange memory = (*os_->GetProcess(victim))->memory;
  const std::vector<uint8_t> secret = {0xde, 0xad};
  ASSERT_TRUE(os_->SysWrite(0, victim, memory.base, std::span<const uint8_t>(secret)).ok());
  // KernelPeek has no bounds check and the hardware lets domain 0 through.
  const auto peeked = os_->KernelPeek(0, memory.base, 2);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, secret);
}

TEST_F(KernelTest, ProcessEnclaveEscapesTheMonopoly) {
  // The same kernel, now using the monitor: the process carves an enclave,
  // and KernelPeek STOPS working on the carved range.
  const Pid app = *os_->CreateProcess("app", 8 * kMiB);
  const TycheImage image = TycheImage::MakeDemo("wallet", 2 * kPageSize, 0);
  auto enclave = os_->SpawnProcessEnclave(0, app, image, 2 * kMiB, 1, OsCoreCap(1));
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  // The enclave writes a secret into its exclusive memory.
  ASSERT_TRUE(enclave->Enter(1).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(1, enclave->base() + kMiB, 0x5ec4e7).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());

  // Privileged code can no longer peek.
  EXPECT_FALSE(os_->KernelPeek(0, enclave->base() + kMiB, 8).ok());
  // The process's remaining memory shrank in the OS's bookkeeping.
  EXPECT_EQ((*os_->GetProcess(app))->memory.size, 6 * kMiB);
  // And the OS still works for everything else.
  EXPECT_TRUE(os_->KernelPeek(0, (*os_->GetProcess(app))->memory.base, 8).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(KernelTest, EnclaveLargerThanProcessRejected) {
  const Pid app = *os_->CreateProcess("small", kMiB);
  const TycheImage image = TycheImage::MakeDemo("big", kPageSize, 0);
  EXPECT_FALSE(os_->SpawnProcessEnclave(0, app, image, 2 * kMiB, 1, OsCoreCap(1)).ok());
}

TEST_F(KernelTest, AllocatorExhaustionSurfacesAsProcessFailure) {
  // Managed pool is 62 MiB; a 100 MiB process cannot exist.
  EXPECT_EQ(os_->CreateProcess("huge", 100 * kMiB).code(), ErrorCode::kResourceExhausted);
}

}  // namespace
}  // namespace tyche
