// Copyright 2026 The Tyche Reproduction Authors.

#include "src/os/scheduler.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(SchedulerTest, IdleWhenEmpty) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  EXPECT_EQ(scheduler.Tick(), RoundRobinScheduler::kIdle);
  EXPECT_EQ(cycles.cycles(), 0u);
}

TEST(SchedulerTest, RoundRobinOrder) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  scheduler.AddTask(1);
  scheduler.AddTask(2);
  scheduler.AddTask(3);
  EXPECT_EQ(scheduler.Tick(), 1u);
  EXPECT_EQ(scheduler.Tick(), 2u);
  EXPECT_EQ(scheduler.Tick(), 3u);
  EXPECT_EQ(scheduler.Tick(), 1u);  // wraps around
}

TEST(SchedulerTest, SingleTaskNoSwitchCost) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  scheduler.AddTask(7);
  (void)scheduler.Tick();  // first dispatch charges one switch
  const uint64_t after_first = cycles.cycles();
  (void)scheduler.Tick();  // same task again: no switch
  EXPECT_EQ(cycles.cycles(), after_first);
  EXPECT_EQ(scheduler.switches(), 1u);
}

TEST(SchedulerTest, SwitchesChargeContextSwitchCost) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  scheduler.AddTask(1);
  scheduler.AddTask(2);
  (void)scheduler.Tick();
  (void)scheduler.Tick();
  (void)scheduler.Tick();
  EXPECT_EQ(cycles.cycles(), 3 * CostModel::Default().context_switch);
  EXPECT_EQ(scheduler.switches(), 3u);
}

TEST(SchedulerTest, RemoveTask) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  scheduler.AddTask(1);
  scheduler.AddTask(2);
  EXPECT_EQ(scheduler.Tick(), 1u);
  ASSERT_TRUE(scheduler.RemoveTask(2).ok());
  EXPECT_EQ(scheduler.Tick(), 1u);
  EXPECT_EQ(scheduler.RemoveTask(99).code(), ErrorCode::kNotFound);
}

TEST(SchedulerTest, RemoveRunningTask) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  scheduler.AddTask(1);
  EXPECT_EQ(scheduler.Tick(), 1u);
  ASSERT_TRUE(scheduler.RemoveTask(1).ok());
  EXPECT_EQ(scheduler.current(), RoundRobinScheduler::kIdle);
  EXPECT_EQ(scheduler.Tick(), RoundRobinScheduler::kIdle);
}

TEST(SchedulerTest, RunnableCount) {
  CycleAccount cycles;
  RoundRobinScheduler scheduler(&cycles);
  EXPECT_EQ(scheduler.runnable(), 0u);
  scheduler.AddTask(1);
  scheduler.AddTask(2);
  EXPECT_EQ(scheduler.runnable(), 2u);
  (void)scheduler.Tick();
  EXPECT_EQ(scheduler.runnable(), 2u);  // one running + one queued
}

}  // namespace
}  // namespace tyche
