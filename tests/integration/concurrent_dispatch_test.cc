// Copyright 2026 The Tyche Reproduction Authors.
// Concurrent dispatch: N threads, one per core, hammer the register ABI with
// a mixed read/write workload while the journal is live. Afterwards the
// usual single-threaded evidence obligations must still hold exactly --
// the hash chain verifies, shadow replay reproduces the engine state
// digest, and the group-commit counters account for every record. Plus the
// capability-lifetime regression: a domain purge that fails mid-cascade
// must journal the committed prefix and leave the domain destroyable.
//
// This test is the TSan target for the concurrency contract: one
// dispatching thread per core, everything through Dispatch().

#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "src/capability/engine.h"
#include "src/monitor/audit.h"
#include "src/monitor/attestation.h"
#include "src/monitor/dispatch.h"
#include "src/monitor/recovery.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class ConcurrentDispatchTest : public BootedMachineTest {
 protected:
  ApiResult Call(CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                 uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    return Dispatch(monitor_.get(), core, regs);
  }

  static uint64_t Pack(uint8_t rights, uint8_t policy) {
    return (static_cast<uint64_t>(rights) << 8) | policy;
  }
};

TEST_F(ConcurrentDispatchTest, StressedMonitorStillReplaysAndVerifies) {
  constexpr uint32_t kThreads = 4;  // == fixture cores, one thread per core
  constexpr int kIterations = 60;
  monitor_->audit().set_enabled(true);
  monitor_->telemetry().set_trace_enabled(true);
  monitor_->telemetry().set_histograms_enabled(true);
  ASSERT_TRUE(monitor_->EnableConcurrentDispatch().ok());

  // Per-thread resources resolved serially up front: a disjoint scratch
  // window, its source capability, and an attestation out-buffer.
  std::vector<AddrRange> window(kThreads);
  std::vector<CapId> src_cap(kThreads);
  std::vector<uint64_t> out_buf(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    window[t] = Scratch(kMiB + t * kMiB, 4 * kPageSize);
    src_cap[t] = OsMemCap(window[t]);
    out_buf[t] = Scratch(16 * kMiB + t * kMiB, 0).base;
  }

  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto core = static_cast<CoreId>(t);
      // Every thread creates (and keeps) its own child domain, then mixes
      // cascading writes with attestation reads against it.
      const ApiResult created = Call(core, ApiOp::kCreateDomain);
      if (created.error != 0) {
        ++failures;
        return;
      }
      const CapId handle = created.ret1;
      for (int i = 0; i < kIterations; ++i) {
        const ApiResult shared =
            Call(core, ApiOp::kShareMemory, src_cap[t], handle, window[t].base,
                 window[t].size, Perms::kRW, Pack(CapRights::kAll, 0));
        if (shared.error != 0) {
          ++failures;
          continue;
        }
        if (Call(core, ApiOp::kRevoke, shared.ret0).error != 0) {
          ++failures;
        }
        // Self-attestation: shared api lock, engine queries, a signature,
        // and a guest-memory write through the caller's context.
        const ApiResult attested = Call(core, ApiOp::kAttestDomain, /*self=*/0,
                                        /*nonce=*/i, out_buf[t], kMiB);
        if (attested.error != 0) {
          ++failures;
        }
        (void)Call(core, ApiOp::kTakeInterrupt);  // cheap exclusive op
        if (Call(core, ApiOp::kEnumerate, handle).error != 0) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failures.load(), 0u);
  monitor_->DisableConcurrentDispatch();

  // The concurrent run must leave the same kind of evidence a serial run
  // does: a verifying chain whose replay reproduces the live engine.
  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  const std::vector<uint8_t> wire = monitor_->ExportJournal();
  ASSERT_TRUE(RemoteVerifier::VerifyJournal(wire, monitor_->public_key(),
                                            &snapshot.capability_graph_json)
                  .ok());
  const std::vector<JournalRecord> records = monitor_->audit().journal().Records();
  CapabilityEngine shadow;
  const auto replay = ReplayJournalInto(&shadow, std::span<const JournalRecord>(records));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(EngineDigest(shadow).ToHex(), EngineDigest(monitor_->engine()).ToHex());

  // Group commit accounted for every record, and the snapshot surfaces the
  // new concurrency counters.
  const auto stats = monitor_->audit().journal().group_commit_stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batched_records, monitor_->audit().journal().size());
  EXPECT_GE(stats.max_batch, 1u);
  EXPECT_EQ(snapshot.journal_batches, stats.batches);
  EXPECT_EQ(snapshot.journal_batched_records, stats.batched_records);
}

TEST_F(ConcurrentDispatchTest, DestroyDomainPartialPurgeJournalsCommittedPrefix) {
  monitor_->audit().set_enabled(true);
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  const DomainId child = created.ret0;
  const CapId handle = created.ret1;

  // Two shared windows: the child owns two root capabilities, so a purge
  // whose second per-root revoke fails leaves a committed prefix behind.
  const AddrRange first = Scratch(kMiB, 4 * kPageSize);
  const AddrRange second = Scratch(2 * kMiB, 4 * kPageSize);
  ASSERT_EQ(Call(0, ApiOp::kShareMemory, OsMemCap(first), handle, first.base, first.size,
                 Perms::kRW, Pack(CapRights::kAll, 0))
                .error,
            0u);
  ASSERT_EQ(Call(0, ApiOp::kShareMemory, OsMemCap(second), handle, second.base,
                 second.size, Perms::kRW, Pack(CapRights::kAll, 0))
                .error,
            0u);
  ASSERT_EQ(monitor_->engine().DomainCaps(child).size(), 2u);

  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kEnginePurgeRevoke, /*trigger=*/2,
                                           ErrorCode::kResourceExhausted));
    const ApiResult destroyed = Call(0, ApiOp::kDestroyDomain, handle);
    EXPECT_EQ(destroyed.error, static_cast<uint64_t>(ErrorCode::kResourceExhausted));
  }
  // Regression: the old code erased the domain anyway, orphaning the
  // still-active capability. Now the domain survives with exactly the
  // uncommitted remainder, and stays fully operational.
  EXPECT_TRUE(monitor_->engine().IsRegistered(child));
  EXPECT_EQ(monitor_->engine().DomainCaps(child).size(), 1u);
  EXPECT_EQ(Call(0, ApiOp::kEnumerate, handle).error, 0u);

  // The retry destroys it for good, and the journal -- committed prefix as
  // plain revokes, abort marker, then the purge of the remainder -- replays
  // to the live engine state.
  ASSERT_EQ(Call(0, ApiOp::kDestroyDomain, handle).error, 0u);
  EXPECT_FALSE(monitor_->engine().IsRegistered(child));
  EXPECT_TRUE(monitor_->engine().DomainCaps(child).empty());

  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  const std::vector<uint8_t> wire = monitor_->ExportJournal();
  EXPECT_TRUE(RemoteVerifier::VerifyJournal(wire, monitor_->public_key(),
                                            &snapshot.capability_graph_json)
                  .ok());
}

TEST_F(ConcurrentDispatchTest, ConcurrencyAndSnapshotsAreMutuallyExclusive) {
  SnapshotStore store;
  ASSERT_TRUE(monitor_->EnableSnapshots(&store).ok());
  // The snapshot provider runs under the journal lock and reads monitor
  // state -- engaging concurrent dispatch now would invert the lock order.
  EXPECT_EQ(monitor_->EnableConcurrentDispatch().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(monitor_->concurrent_dispatch());
}

}  // namespace
}  // namespace tyche
