// Copyright 2026 The Tyche Reproduction Authors.
// Fleet observability end-to-end: every signal DumpTelemetry() reports must
// be reachable through Monitor::ExportMetrics() (the Prometheus scrape), the
// flight recorder must capture fault-injected dispatch failures with the
// causal span id of the failing call, and the counter kill switch must
// freeze accounting without breaking the scrape.

#include <gtest/gtest.h>

#include <string>

#include "src/monitor/dispatch.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class MetricsExportTest : public BootedMachineTest {
 protected:
  ApiResult Call(CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                 uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    return Dispatch(monitor_.get(), core, regs);
  }

  static uint64_t Pack(uint8_t rights, uint8_t policy) {
    return (static_cast<uint64_t>(rights) << 8) | policy;
  }

  // Runs create -> share -> revoke plus a few failing take-interrupts, the
  // same shape the telemetry-observability test validates against
  // DumpTelemetry().
  void RunWorkload() {
    const ApiResult created = Call(0, ApiOp::kCreateDomain);
    ASSERT_EQ(created.error, 0u);
    const AddrRange window = Scratch(kMiB, kMiB);
    const ApiResult shared =
        Call(0, ApiOp::kShareMemory, OsMemCap(window), created.ret1, window.base,
             window.size, Perms::kRW, Pack(CapRights::kAll, 0));
    ASSERT_EQ(shared.error, 0u);
    ASSERT_EQ(Call(0, ApiOp::kRevoke, shared.ret0).error, 0u);
    for (int i = 0; i < 4; ++i) {
      ASSERT_NE(Call(0, ApiOp::kTakeInterrupt).error, 0u);
    }
  }

  // One exposed sample line, exactly as the scrape renders it.
  static std::string Sample(const std::string& series, uint64_t value) {
    return series + " " + std::to_string(value) + "\n";
  }
};

TEST_F(MetricsExportTest, ExportCoversEveryDumpTelemetrySignal) {
  RunWorkload();
  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  const std::string text = monitor_->ExportMetrics();

  // Every family the registry promises (and CI's check_metrics_format.py
  // requires) is present with its TYPE line.
  const char* kFamilies[] = {
      "tyche_api_calls_total",
      "tyche_dispatch_latency_ns",
      "tyche_transitions_total",
      "tyche_capability_ops_total",
      "tyche_revocations_cascaded_total",
      "tyche_recoveries_total",
      "tyche_effects_total",
      "tyche_backend_ops_total",
      "tyche_journal_records",
      "tyche_journal_checkpoints",
      "tyche_journal_group_commit_batches_total",
      "tyche_journal_group_commit_records_total",
      "tyche_journal_group_commit_max_batch",
      "tyche_trace_recorded_total",
      "tyche_trace_dropped_total",
      "tyche_lock_contention_total",
      "tyche_fault_injections_fired_total",
      "tyche_fault_injection_active",
      "tyche_domains_alive",
      "tyche_flight_captures_total",
  };
  for (const char* family : kFamilies) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "), std::string::npos)
        << "family missing from scrape: " << family;
  }

  // Counter samples agree with the stats snapshot the old interface reports.
  const MonitorStats& stats = snapshot.stats;
  const auto op_calls = [&stats](ApiOp op) {
    return stats.api_calls[static_cast<size_t>(op)];
  };
  EXPECT_NE(text.find(Sample("tyche_api_calls_total{op=\"create_domain\"}",
                             op_calls(ApiOp::kCreateDomain))),
            std::string::npos);
  EXPECT_NE(text.find(Sample("tyche_api_calls_total{op=\"take_interrupt\"}",
                             op_calls(ApiOp::kTakeInterrupt))),
            std::string::npos);
  EXPECT_NE(text.find(Sample("tyche_capability_ops_total{kind=\"share\"}", stats.shares)),
            std::string::npos);
  EXPECT_NE(
      text.find(Sample("tyche_capability_ops_total{kind=\"revoke\"}", stats.revokes)),
      std::string::npos);
  EXPECT_NE(text.find(Sample("tyche_revocations_cascaded_total",
                             stats.revocations_cascaded)),
            std::string::npos);

  // Pull callbacks agree with their owners: trace accounting, journal chain
  // length, live-domain gauge, backend projection counters.
  EXPECT_NE(text.find(Sample("tyche_trace_recorded_total", snapshot.trace_recorded)),
            std::string::npos);
  EXPECT_NE(text.find(Sample("tyche_domains_alive", monitor_->num_domains_alive())),
            std::string::npos);
  EXPECT_NE(text.find(Sample("tyche_journal_records", monitor_->audit().journal().size())),
            std::string::npos);
  const std::string backend_series = std::string("tyche_backend_ops_total{backend=\"") +
                                     monitor_->backend().name() +
                                     "\",op=\"memory_syncs\"}";
  EXPECT_NE(text.find(Sample(backend_series, snapshot.backend.memory_syncs)),
            std::string::npos);

  // The per-op latency histogram made it across: the share op's histogram
  // rendered with its sample count and a terminating +Inf bucket.
  EXPECT_NE(text.find("tyche_dispatch_latency_ns_count{op=\"share_memory\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tyche_dispatch_latency_ns_bucket{op=\"share_memory\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST_F(MetricsExportTest, FaultInjectedDispatchErrorCapturesFlightRecord) {
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  const AddrRange window = Scratch(kMiB, kMiB);

  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kVtxSyncMemory, /*trigger=*/1));
    const ApiResult shared =
        Call(0, ApiOp::kShareMemory, OsMemCap(window), created.ret1, window.base,
             window.size, Perms::kRW, Pack(CapRights::kAll, 0));
    EXPECT_EQ(shared.error, static_cast<uint64_t>(ErrorCode::kAccessViolation));
  }

  // The failing dispatch is the newest trace entry; the flight record must
  // carry the SAME span id, tying the post-mortem to the causal trail.
  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  ASSERT_FALSE(snapshot.trace.empty());
  const TraceEntry& failing = snapshot.trace.back();
  ASSERT_EQ(failing.op, static_cast<uint16_t>(ApiOp::kShareMemory));
  ASSERT_NE(failing.span, 0u);

  const auto records = monitor_->flight_recorder().Snapshot();
  ASSERT_FALSE(records.empty());
  const FlightRecord& record = records.back();
  EXPECT_EQ(record.reason, "fault_site");
  EXPECT_EQ(record.op, static_cast<uint16_t>(ApiOp::kShareMemory));
  EXPECT_EQ(record.span, failing.span);
  EXPECT_EQ(record.error, static_cast<uint64_t>(ErrorCode::kAccessViolation));
  EXPECT_NE(record.detail.find("vtx.sync_memory"), std::string::npos);
  // The capture snapshotted the trace up to and including the failing call,
  // and saw the counters move since the recorder's baseline.
  ASSERT_FALSE(record.trace.empty());
  EXPECT_EQ(record.trace.back().span, failing.span);
  EXPECT_FALSE(record.metrics_delta.empty());

  // The lifetime injection counter is visible on the scrape.
  EXPECT_NE(monitor_->ExportMetrics().find("tyche_fault_injections_fired_total"),
            std::string::npos);

  // JSON dump renders the record for artifacts.
  const std::string json = monitor_->flight_recorder().DumpJson(
      [](uint16_t op) { return std::string(ApiOpName(static_cast<ApiOp>(op))); });
  EXPECT_NE(json.find("\"reason\":\"fault_site\""), std::string::npos);
  EXPECT_NE(json.find("share_memory"), std::string::npos);
}

TEST_F(MetricsExportTest, DispatchErrorsAreDedupedByShape) {
  monitor_->flight_recorder().Clear();
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(Call(0, ApiOp::kTakeInterrupt).error, 0u);
  }
  size_t dispatch_errors = 0;
  for (const FlightRecord& record : monitor_->flight_recorder().Snapshot()) {
    if (record.reason == "dispatch_error" &&
        record.op == static_cast<uint16_t>(ApiOp::kTakeInterrupt)) {
      ++dispatch_errors;
    }
  }
  // Eight identical (op, error) failures -> one post-mortem record.
  EXPECT_EQ(dispatch_errors, 1u);
}

TEST_F(MetricsExportTest, CounterKillSwitchFreezesAccounting) {
  ASSERT_EQ(Call(0, ApiOp::kCreateDomain).error, 0u);
  const uint64_t before =
      monitor_->stats().api_calls[static_cast<size_t>(ApiOp::kCreateDomain)];
  ASSERT_GE(before, 1u);

  monitor_->set_counters_enabled(false);
  ASSERT_EQ(Call(0, ApiOp::kCreateDomain).error, 0u);
  EXPECT_EQ(monitor_->stats().api_calls[static_cast<size_t>(ApiOp::kCreateDomain)],
            before);

  // Re-enabling resumes from the frozen value; the scrape works throughout.
  monitor_->set_counters_enabled(true);
  ASSERT_EQ(Call(0, ApiOp::kCreateDomain).error, 0u);
  EXPECT_EQ(monitor_->stats().api_calls[static_cast<size_t>(ApiOp::kCreateDomain)],
            before + 1);
  EXPECT_NE(monitor_->ExportMetrics().find("tyche_api_calls_total"), std::string::npos);
}

}  // namespace
}  // namespace tyche
