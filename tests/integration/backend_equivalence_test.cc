// Copyright 2026 The Tyche Reproduction Authors.
// Backend-equivalence property: the paper's executive is ONE monitor with
// interchangeable backends, so for any policy state both backends must
// enforce the SAME semantics. A random capability workload is applied to an
// x86/EPT deployment and a RISC-V/PMP deployment in lockstep; whenever both
// accept an operation, their capability maps and hardware answers must
// agree exactly. PMP may reject layouts its entry budget cannot express --
// in that case the EPT side is compensated (the op undone) and equivalence
// must hold again.

#include <gtest/gtest.h>

#include "src/os/testbed.h"
#include "src/support/prng.h"
#include "src/tyche/loader.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

class BackendEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct Side {
    std::unique_ptr<Testbed> testbed;
    std::vector<CapId> handles;  // domain handles, index-aligned across sides

    Monitor& monitor() { return testbed->monitor(); }
    Machine& machine() { return testbed->machine(); }
  };

  static Side MakeSide(IsaArch arch) {
    TestbedOptions options;
    options.arch = arch;
    options.memory_bytes = 64ull << 20;
    auto testbed = Testbed::Create(options);
    EXPECT_TRUE(testbed.ok());
    return Side{std::make_unique<Testbed>(std::move(*testbed)), {}};
  }

  // Equivalence check: engine-level maps and hardware-level answers agree.
  void ExpectEquivalent(Side* ept, Side* pmp, Prng* prng, int step) {
    // 1. Per-domain memory maps are identical (engine level).
    for (size_t i = 0; i < ept->handles.size(); ++i) {
      const auto cap_a = ept->monitor().engine().Get(ept->handles[i]);
      const auto cap_b = pmp->monitor().engine().Get(pmp->handles[i]);
      ASSERT_TRUE(cap_a.ok());
      ASSERT_TRUE(cap_b.ok());
      const auto map_a = ept->monitor().engine().DomainMemoryMap(
          static_cast<CapDomainId>((*cap_a)->unit));
      const auto map_b = pmp->monitor().engine().DomainMemoryMap(
          static_cast<CapDomainId>((*cap_b)->unit));
      ASSERT_EQ(map_a.size(), map_b.size()) << "step " << step << " domain " << i;
      for (size_t r = 0; r < map_a.size(); ++r) {
        EXPECT_EQ(map_a[r].range, map_b[r].range) << "step " << step;
        EXPECT_EQ(map_a[r].perms.mask, map_b[r].perms.mask) << "step " << step;
      }
    }
    // 2. The OS's hardware view agrees at sampled addresses.
    const uint64_t arena = ept->testbed->Scratch(0);
    for (int probe = 0; probe < 16; ++probe) {
      const uint64_t addr = arena + AlignDown(prng->Below(16 * kMiB), 8);
      for (const AccessType access :
           {AccessType::kRead, AccessType::kWrite, AccessType::kExecute}) {
        const bool a = ept->machine().CheckAccess(0, addr, 8, access).ok();
        const bool b = pmp->machine().CheckAccess(0, addr, 8, access).ok();
        ASSERT_EQ(a, b) << "step " << step << " addr 0x" << std::hex << addr << " access "
                        << AccessTypeName(access);
      }
    }
    // 3. Both hardwares are projections of their trees.
    ASSERT_TRUE(*ept->monitor().AuditHardwareConsistency());
    ASSERT_TRUE(*pmp->monitor().AuditHardwareConsistency());
  }
};

TEST_P(BackendEquivalenceTest, LockstepWorkloadStaysEquivalent) {
  Prng prng(GetParam());
  Side ept = MakeSide(IsaArch::kX86_64);
  Side pmp = MakeSide(IsaArch::kRiscV);

  const uint64_t arena = ept.testbed->Scratch(0);
  ASSERT_EQ(arena, pmp.testbed->Scratch(0));  // layouts line up

  // NAPOT-friendly random ranges keep the workload interesting without
  // making every op a guaranteed PMP rejection.
  auto random_range = [&]() {
    const uint64_t sizes[] = {kPageSize, 2 * kPageSize, 64 * 1024, kMiB};
    const uint64_t size = sizes[prng.Below(4)];
    const uint64_t base = arena + AlignDown(prng.Below(16 * kMiB - size), size);
    return AddrRange{base, size};
  };

  const int kSteps = 60;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t choice = prng.Below(4);
    const uint8_t perms = static_cast<uint8_t>(1 + prng.Below(7));
    if (choice == 0 || ept.handles.empty()) {
      // Create a domain on both sides.
      const auto a = ept.monitor().CreateDomain(0, "eq");
      const auto b = pmp.monitor().CreateDomain(0, "eq");
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        ept.handles.push_back(a->handle);
        pmp.handles.push_back(b->handle);
      }
    } else if (choice == 1) {
      // Share a range into the same domain index on both sides.
      const size_t index = prng.Below(ept.handles.size());
      const AddrRange range = random_range();
      const auto cap_a = ept.testbed->OsMemCap(range);
      const auto cap_b = pmp.testbed->OsMemCap(range);
      ASSERT_EQ(cap_a.ok(), cap_b.ok());
      if (!cap_a.ok()) {
        continue;
      }
      const auto b = pmp.monitor().ShareMemory(0, *cap_b, pmp.handles[index], range,
                                               Perms(perms), CapRights(CapRights::kAll),
                                               RevocationPolicy{});
      const auto a = ept.monitor().ShareMemory(0, *cap_a, ept.handles[index], range,
                                               Perms(perms), CapRights(CapRights::kAll),
                                               RevocationPolicy{});
      if (b.ok() != a.ok()) {
        // Only a PMP layout limit may separate them; compensate the EPT side.
        ASSERT_TRUE(a.ok());
        ASSERT_EQ(b.code(), ErrorCode::kPmpExhausted);
        ASSERT_TRUE(ept.monitor().Revoke(0, *a).ok());
      }
    } else if (choice == 2) {
      // Grant a range.
      const size_t index = prng.Below(ept.handles.size());
      const AddrRange range = random_range();
      const auto cap_a = ept.testbed->OsMemCap(range);
      const auto cap_b = pmp.testbed->OsMemCap(range);
      ASSERT_EQ(cap_a.ok(), cap_b.ok());
      if (!cap_a.ok()) {
        continue;
      }
      const auto b = pmp.monitor().GrantMemory(0, *cap_b, pmp.handles[index], range,
                                               Perms(perms), CapRights(CapRights::kAll),
                                               RevocationPolicy{});
      const auto a = ept.monitor().GrantMemory(0, *cap_a, ept.handles[index], range,
                                               Perms(perms), CapRights(CapRights::kAll),
                                               RevocationPolicy{});
      if (b.ok() != a.ok()) {
        ASSERT_TRUE(a.ok());
        ASSERT_EQ(b.code(), ErrorCode::kPmpExhausted);
        // Undo the grant: revoking it restores the grantor.
        ASSERT_TRUE(ept.monitor().Revoke(0, a->granted).ok());
      }
    } else {
      // Revoke a random capability of a random domain, on both sides. Pick
      // by the domain's memory map so the selection is side-independent.
      const size_t index = prng.Below(ept.handles.size());
      const auto cap_a = ept.monitor().engine().Get(ept.handles[index]);
      const auto cap_b = pmp.monitor().engine().Get(pmp.handles[index]);
      const auto map = ept.monitor().engine().DomainMemoryMap(
          static_cast<CapDomainId>((*cap_a)->unit));
      if (map.empty()) {
        continue;
      }
      const AddrRange target = map[prng.Below(map.size())].range;
      // Pick the victim by (range, perms), which is side-independent even
      // though raw capability ids may have diverged after compensations.
      const auto find_cap = [&](Monitor& monitor, CapDomainId domain) {
        CapId found = kInvalidCap;
        AddrRange best{};
        uint8_t best_perms = 0;
        monitor.engine().ForEachActive([&](const Capability& cap) {
          if (cap.owner != domain || cap.kind != ResourceKind::kMemory ||
              !cap.range.Overlaps(AddrRange{target.base, kPageSize})) {
            return;
          }
          const auto key = std::tuple(cap.range.base, cap.range.size, cap.perms.mask);
          if (found == kInvalidCap ||
              key < std::tuple(best.base, best.size, best_perms)) {
            found = cap.id;
            best = cap.range;
            best_perms = cap.perms.mask;
          }
        });
        return found;
      };
      const CapId victim_a =
          find_cap(ept.monitor(), static_cast<CapDomainId>((*cap_a)->unit));
      const CapId victim_b =
          find_cap(pmp.monitor(), static_cast<CapDomainId>((*cap_b)->unit));
      if (victim_a == kInvalidCap || victim_b == kInvalidCap) {
        continue;
      }
      const Status a = ept.monitor().Revoke(0, victim_a);
      const Status b = pmp.monitor().Revoke(0, victim_b);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
    }

    if (step % 10 == 0 || step == kSteps - 1) {
      ExpectEquivalent(&ept, &pmp, &prng, step);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tyche
