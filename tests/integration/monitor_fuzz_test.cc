// Copyright 2026 The Tyche Reproduction Authors.
// API-level fuzzing: random sequences of monitor calls, valid and invalid,
// issued from the OS and from inside domains. The monitor may reject
// anything; what it must NEVER do is crash, corrupt the capability tree, or
// let hardware state diverge from the tree (the invariant the judiciary
// depends on). Checked continuously:
//   - AuditHardwareConsistency() holds after every batch;
//   - a software probe (CheckAccess as the OS) agrees with
//     EffectivePerms(os) at random addresses;
//   - destroyed/never-created handles never work.

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class MonitorFuzzTest : public BootedMachineTest,
                        public ::testing::WithParamInterface<uint64_t> {
 protected:
  MonitorFuzzTest() : BootedMachineTest(FixtureOptions{.memory_bytes = 64ull << 20}) {}
};

TEST_P(MonitorFuzzTest, RandomApiSequencesKeepInvariants) {
  Prng prng(GetParam());
  std::vector<CapId> handles;  // domain handles held by the OS (may be stale)

  const uint64_t arena_base = Scratch(0, 0).base;
  const uint64_t arena_size = 32 * kMiB;

  auto random_range = [&]() {
    const uint64_t pages = arena_size / kPageSize;
    const uint64_t off = prng.Below(pages - 1);
    const uint64_t len = 1 + prng.Below(std::min<uint64_t>(pages - off, 64) - 1 + 1);
    return AddrRange{arena_base + off * kPageSize, len * kPageSize};
  };
  auto random_perms = [&]() {
    return Perms(static_cast<uint8_t>(1 + prng.Below(7)));
  };
  auto random_os_cap = [&]() -> CapId {
    // Any active cap owned by the OS (memory or unit), or a bogus id.
    if (prng.Chance(1, 10)) {
      return static_cast<CapId>(prng.Below(100000));  // likely bogus
    }
    std::vector<CapId> candidates;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == os_domain_) {
        candidates.push_back(cap.id);
      }
    });
    if (candidates.empty()) {
      // The fuzzer dropped every OS capability; only bogus ids remain.
      return static_cast<CapId>(prng.Below(100000));
    }
    return candidates[prng.Below(candidates.size())];
  };
  auto random_handle = [&]() -> CapId {
    if (handles.empty() || prng.Chance(1, 10)) {
      return static_cast<CapId>(prng.Below(100000));
    }
    return handles[prng.Below(handles.size())];
  };

  const int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    switch (prng.Below(10)) {
      case 0: {  // create
        const auto created = monitor_->CreateDomain(0, "fuzz");
        if (created.ok()) {
          handles.push_back(created->handle);
        }
        break;
      }
      case 1:  // share memory
        (void)monitor_->ShareMemory(0, random_os_cap(), random_handle(), random_range(),
                                    random_perms(), CapRights(CapRights::kAll),
                                    RevocationPolicy(static_cast<uint8_t>(prng.Below(4))));
        break;
      case 2:  // grant memory
        (void)monitor_->GrantMemory(0, random_os_cap(), random_handle(), random_range(),
                                    random_perms(), CapRights(CapRights::kAll),
                                    RevocationPolicy(static_cast<uint8_t>(prng.Below(4))));
        break;
      case 3:  // share a unit (core or device or handle)
        (void)monitor_->ShareUnit(0, random_os_cap(), random_handle(),
                                  CapRights(CapRights::kShare), RevocationPolicy{});
        break;
      case 4:  // revoke something
        (void)monitor_->Revoke(0, random_os_cap());
        break;
      case 5:  // entry point
        (void)monitor_->SetEntryPoint(0, random_handle(),
                                      arena_base + prng.Below(arena_size));
        break;
      case 6:  // seal
        (void)monitor_->Seal(0, random_handle());
        break;
      case 7: {  // transition + immediate return on core 1
        const CapId handle = random_handle();
        if (monitor_->Transition(1, handle).ok()) {
          EXPECT_TRUE(monitor_->ReturnFromDomain(1).ok());
        }
        break;
      }
      case 8:  // destroy
        (void)monitor_->DestroyDomain(0, random_handle());
        break;
      case 9:  // measurement extension
        (void)monitor_->ExtendMeasurement(0, random_handle(), random_range());
        break;
    }

    // Continuous probe: the hardware answer for the OS must equal the
    // capability tree's answer.
    for (int probe = 0; probe < 4; ++probe) {
      const uint64_t addr =
          arena_base + AlignDown(prng.Below(arena_size - 8), 8);
      const Perms perms = monitor_->engine().EffectivePerms(os_domain_, addr);
      const bool hw_read = machine_->CheckAccess(0, addr, 8, AccessType::kRead).ok();
      ASSERT_EQ(hw_read, perms.Allows(AccessType::kRead))
          << "divergence at 0x" << std::hex << addr << " step " << std::dec << step;
    }

    if (step % 50 == 0) {
      const auto audit = monitor_->AuditHardwareConsistency();
      ASSERT_TRUE(audit.ok());
      ASSERT_TRUE(*audit) << "audit failed at step " << step;
    }
  }

  // Final: audit + teardown of everything still alive.
  const auto audit = monitor_->AuditHardwareConsistency();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(*audit);
  for (const CapId handle : handles) {
    (void)monitor_->DestroyDomain(0, handle);
  }
  const auto final_audit = monitor_->AuditHardwareConsistency();
  ASSERT_TRUE(final_audit.ok());
  EXPECT_TRUE(*final_audit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorFuzzTest,
                         ::testing::Values(7, 77, 777, 7777, 77777));

}  // namespace
}  // namespace tyche
