// Copyright 2026 The Tyche Reproduction Authors.
// The migration sweep: live migration & failover of attested domains
// (DESIGN.md §11), fault-injected at every protocol stage.
//
// One clean migration runs per backend in fault-counting mode to discover
// how often each migration / channel site is reached. Every (site,
// occurrence) pair over {first, middle, last} is then injected into a fresh
// two-monitor world:
//
//   - migrate.* faults surface as typed errors and the migration rolls back
//     to the source: both monitors' engines hash identically to their
//     pre-migration state, the domain is alive and attestable on the
//     source, and nothing was adopted on the destination;
//   - channel.* faults are CONSUMED by the lossy wire (a dropped,
//     duplicated, or delayed frame) and the migration must still succeed
//     via the transfer stage's retry rounds, landing on engines that hash
//     identically to an unfaulted oracle migration.
//
// Either way the domain ends up whole on exactly one monitor. After a
// committed migration the destination's quote for the migrated domain
// verifies against the measurement attested on the SOURCE before the move
// (attestation continuity), and the two monitors' exported journals splice
// into one verifiable history (VerifyJournalSplice) — while tampered or
// mismatched journal pairs are rejected.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/migration.h"
#include "src/monitor/recovery.h"
#include "src/support/faults.h"
#include "src/tyche/channel.h"
#include "src/tyche/loader.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kMemoryBytes = 64ull << 20;
constexpr uint32_t kNumCores = 4;
constexpr uint64_t kNonce = 0x5EED;

// A two-monitor world: the failover deployment. Both machines boot the SAME
// measured demo image, so both monitors derive the SAME attestation key —
// that key continuity is what keeps the migrated domain's quote verifiable.
struct World {
  std::unique_ptr<Machine> source_machine;
  std::unique_ptr<Machine> dest_machine;
  std::unique_ptr<Monitor> source;
  std::unique_ptr<Monitor> dest;
  DomainId source_os = kInvalidDomain;
  DomainId dest_os = kInvalidDomain;
  Digest golden_firmware;
  Digest golden_monitor;

  // The migrating service domain, set up by BuildVictim.
  DomainId victim = kInvalidDomain;
  CapId victim_handle = kInvalidCap;
  AddrRange window;
  Digest victim_measurement;
};

std::unique_ptr<Machine> MakeMachine(IsaArch arch) {
  MachineConfig config;
  config.arch = arch;
  config.memory_bytes = kMemoryBytes;
  config.num_cores = kNumCores;
  return std::make_unique<Machine>(config);
}

// The victim: a sealed service with 4 exclusively-granted pages of secret
// state (zero-on-revoke) and an exclusively-granted core. Grant — not
// share — everywhere: migration refuses resources it cannot move whole.
bool BuildVictim(World* world) {
  Monitor* monitor = world->source.get();
  const auto created = monitor->CreateDomain(0, "svc");
  if (!created.ok()) {
    return false;
  }
  world->victim = created->domain;
  world->victim_handle = created->handle;

  world->window = AddrRange{monitor->monitor_range().end() + kMiB, 4 * kPageSize};
  std::vector<uint8_t> secret(world->window.size);
  for (size_t i = 0; i < secret.size(); ++i) {
    secret[i] = static_cast<uint8_t>(0xA5 ^ (i * 31));
  }
  if (!world->source_machine->memory().Write(world->window.base, secret).ok()) {
    return false;
  }

  const auto mem_cap = FindMemoryCap(*monitor, world->source_os, world->window);
  if (!mem_cap.ok()) {
    return false;
  }
  if (!monitor
           ->GrantMemory(0, *mem_cap, world->victim_handle, world->window,
                         Perms(Perms::kRWX), CapRights(CapRights::kAll),
                         RevocationPolicy(RevocationPolicy::kZeroMemory))
           .ok()) {
    return false;
  }
  const auto core_cap =
      FindUnitCap(*monitor, world->source_os, ResourceKind::kCpuCore, 3);
  if (!core_cap.ok() ||
      !monitor
           ->GrantUnit(0, *core_cap, world->victim_handle, CapRights(CapRights::kAll),
                       RevocationPolicy(0))
           .ok()) {
    return false;
  }
  if (!monitor->SetEntryPoint(0, world->victim_handle, world->window.base).ok() ||
      !monitor->ExtendMeasurement(0, world->victim_handle, world->window).ok() ||
      !monitor->Seal(0, world->victim_handle).ok()) {
    return false;
  }
  // The identity the customer verified BEFORE the failover.
  const auto report = monitor->AttestDomain(0, world->victim_handle, kNonce);
  if (!report.ok()) {
    return false;
  }
  world->victim_measurement = report->measurement;
  return true;
}

std::unique_ptr<World> MakeWorld(IsaArch arch) {
  auto world = std::make_unique<World>();
  world->source_machine = MakeMachine(arch);
  world->dest_machine = MakeMachine(arch);
  // BootParams holds spans; the images must outlive both boots.
  const std::vector<uint8_t> firmware = DemoFirmwareImage();
  const std::vector<uint8_t> monitor_image = DemoMonitorImage();
  BootParams params;
  params.firmware_image = firmware;
  params.monitor_image = monitor_image;
  auto source_boot = MeasuredBoot(world->source_machine.get(), params);
  auto dest_boot = MeasuredBoot(world->dest_machine.get(), params);
  if (!source_boot.ok() || !dest_boot.ok()) {
    return nullptr;
  }
  world->source = std::move(source_boot->monitor);
  world->source_os = source_boot->initial_domain;
  world->dest = std::move(dest_boot->monitor);
  world->dest_os = dest_boot->initial_domain;
  world->golden_firmware = source_boot->firmware_measurement;
  world->golden_monitor = source_boot->monitor_measurement;
  if (world->source->public_key().y != world->dest->public_key().y) {
    return nullptr;  // same measured image must derive the same key
  }
  if (!BuildVictim(world.get())) {
    return nullptr;
  }
  return world;
}

// What the fault trials compare against: digests and journals of one clean,
// unfaulted migration per backend.
struct Oracle {
  Digest source_engine;
  Digest dest_engine;
  DomainId dest_domain = kInvalidDomain;
  std::vector<uint8_t> source_journal;
  std::vector<uint8_t> dest_journal;
  SchnorrPublicKey key;
};

// The full post-migration verification: the domain is live on exactly the
// destination, its pages moved (and were scrubbed at the source by the
// zero-on-revoke policy), its quote still verifies against the
// pre-migration measurement, and the journals splice.
void ExpectMigrated(World* world, const MigrationReport& report) {
  Monitor* source = world->source.get();
  Monitor* dest = world->dest.get();
  EXPECT_FALSE(source->migration_in_progress());
  EXPECT_FALSE(dest->migration_in_progress());
  EXPECT_EQ(source->num_domains_alive(), 1u) << "victim still alive on the source";
  EXPECT_EQ(dest->num_domains_alive(), 2u) << "victim not adopted on the destination";

  // The secret pages moved whole; the source copies were zeroed.
  std::vector<uint8_t> dest_bytes(world->window.size);
  std::vector<uint8_t> source_bytes(world->window.size);
  ASSERT_TRUE(world->dest_machine->memory().Read(world->window.base, dest_bytes).ok());
  ASSERT_TRUE(world->source_machine->memory().Read(world->window.base, source_bytes).ok());
  bool pattern_ok = true;
  bool zeroed = true;
  for (size_t i = 0; i < dest_bytes.size(); ++i) {
    pattern_ok &= dest_bytes[i] == static_cast<uint8_t>(0xA5 ^ (i * 31));
    zeroed &= source_bytes[i] == 0;
  }
  EXPECT_TRUE(pattern_ok) << "migrated pages do not carry the source contents";
  EXPECT_TRUE(zeroed) << "zero-on-revoke did not scrub the source pages";

  // Attestation continuity: the DESTINATION quote verifies against the
  // measurement the customer pinned on the SOURCE before the failover.
  const auto handle =
      FindUnitCap(*dest, world->dest_os, ResourceKind::kDomain, report.dest_domain);
  ASSERT_TRUE(handle.ok()) << "destination OS holds no handle for the migrated domain";
  const auto quote = dest->AttestDomain(0, *handle, kNonce + 1);
  ASSERT_TRUE(quote.ok()) << quote.status().ToString();
  RemoteVerifier verifier(world->dest_machine->tpm().attestation_key(),
                          world->golden_firmware, world->golden_monitor);
  const auto identity = dest->Identity(kNonce + 2);
  ASSERT_TRUE(identity.ok());
  ASSERT_TRUE(verifier.VerifyMonitor(*identity, kNonce + 2).ok());
  EXPECT_TRUE(verifier
                  .VerifyDomain(*quote, dest->public_key(), kNonce + 1,
                                &world->victim_measurement)
                  .ok())
      << "migrated domain's quote no longer matches the pre-migration identity";

  // Both hardware planes are still projections of their trees.
  const auto source_ok = source->AuditHardwareConsistency();
  const auto dest_ok = dest->AuditHardwareConsistency();
  ASSERT_TRUE(source_ok.ok() && dest_ok.ok());
  EXPECT_TRUE(*source_ok && *dest_ok);

  // The two journals splice into one verifiable history.
  const Status splice =
      VerifyJournalSplice(source->ExportJournal(), dest->ExportJournal(),
                          source->public_key(), dest->public_key());
  EXPECT_TRUE(splice.ok()) << splice.ToString();
}

Oracle CleanMigration(IsaArch arch) {
  Oracle oracle;
  auto world = MakeWorld(arch);
  EXPECT_NE(world, nullptr);
  if (world == nullptr) {
    return oracle;
  }
  LossyChannel channel;  // no plan armed: perfect delivery
  const auto report = MigrateDomain(world->source.get(), world->dest.get(),
                                    world->victim, &channel,
                                    world->source->public_key());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) {
    return oracle;
  }
  ExpectMigrated(world.get(), *report);
  oracle.source_engine = EngineDigest(world->source->engine());
  oracle.dest_engine = EngineDigest(world->dest->engine());
  oracle.dest_domain = report->dest_domain;
  oracle.source_journal = world->source->ExportJournal();
  oracle.dest_journal = world->dest->ExportJournal();
  oracle.key = world->source->public_key();
  return oracle;
}

// Counting run: how often each migration / channel site fires in one clean
// migration. Only the sites this sweep owns are kept — everything else
// (engine.*, vtx.*, pmp.*) already has its own sweep, and injecting those
// mid-commit would legitimately diverge from the unmigrated oracle.
std::map<std::string, uint64_t> CountOccurrences(IsaArch arch) {
  auto world = MakeWorld(arch);
  EXPECT_NE(world, nullptr);
  if (world == nullptr) {
    return {};
  }
  FaultInjector::Instance().StartCounting();
  LossyChannel channel;
  const auto report = MigrateDomain(world->source.get(), world->dest.get(),
                                    world->victim, &channel,
                                    world->source->public_key());
  auto counts = FaultInjector::Instance().StopCounting();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  for (auto it = counts.begin(); it != counts.end();) {
    const bool ours = it->first.rfind("migrate.", 0) == 0 ||
                      it->first.rfind("channel.", 0) == 0;
    it = ours ? std::next(it) : counts.erase(it);
  }
  return counts;
}

// One injected trial: fresh two-monitor world, one (site, occurrence)
// fault, one migration attempt, then the invariants.
void RunTrial(IsaArch arch, const std::string& site, uint64_t trigger,
              const Oracle& oracle) {
  auto world = MakeWorld(arch);
  ASSERT_NE(world, nullptr);
  Monitor* source = world->source.get();
  Monitor* dest = world->dest.get();
  const Digest pre_source = EngineDigest(source->engine());
  const Digest pre_dest = EngineDigest(dest->engine());

  LossyChannel channel;
  Result<MigrationReport> report = Error(ErrorCode::kInternal, "not run");
  {
    ScopedFaultPlan scoped(FaultPlan::Single(site, trigger));
    report = MigrateDomain(source, dest, world->victim, &channel,
                           source->public_key());
  }
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u)
      << site << "#" << trigger << " did not fire exactly once";

  if (site.rfind("channel.", 0) == 0) {
    // A lossy wire is weather, not failure: the retry rounds absorb it and
    // the migration lands on exactly the oracle state.
    ASSERT_TRUE(report.ok()) << site << "#" << trigger << ": "
                             << report.status().ToString();
    if (site == faults::kChannelDrop) {
      EXPECT_GE(report->retries, 1u) << "a dropped frame must cost a retry round";
    }
    ExpectMigrated(world.get(), *report);
    EXPECT_EQ(EngineDigest(source->engine()), oracle.source_engine)
        << "faulted migration's source engine diverged from the oracle";
    EXPECT_EQ(EngineDigest(dest->engine()), oracle.dest_engine)
        << "faulted migration's destination engine diverged from the oracle";
    return;
  }

  // migrate.* stage fault: typed error, full rollback to the source.
  ASSERT_FALSE(report.ok()) << site << "#" << trigger << " unexpectedly succeeded";
  EXPECT_EQ(report.status().code(), DefaultFaultCode(site))
      << report.status().ToString();
  EXPECT_FALSE(source->migration_in_progress()) << "domain left frozen";
  EXPECT_FALSE(dest->migration_in_progress());
  EXPECT_EQ(EngineDigest(source->engine()), pre_source)
      << "rollback did not restore the source engine";
  EXPECT_EQ(EngineDigest(dest->engine()), pre_dest)
      << "rollback did not restore the destination engine";
  EXPECT_EQ(source->num_domains_alive(), 2u);
  EXPECT_EQ(dest->num_domains_alive(), 1u);

  // The domain is fully serviceable again: attestable, and still migratable
  // — the same world completes a clean migration after the rollback.
  const auto quote = source->AttestDomain(0, world->victim_handle, kNonce + 3);
  ASSERT_TRUE(quote.ok()) << quote.status().ToString();
  EXPECT_EQ(quote->measurement, world->victim_measurement);
  LossyChannel retry_channel;
  const auto retried = MigrateDomain(source, dest, world->victim, &retry_channel,
                                     source->public_key());
  ASSERT_TRUE(retried.ok()) << "post-rollback migration failed: "
                            << retried.status().ToString();
  ExpectMigrated(world.get(), *retried);
}

void RunSweep(IsaArch arch) {
  const Oracle oracle = CleanMigration(arch);
  ASSERT_NE(oracle.dest_domain, kInvalidDomain);
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());

  // Coverage: one clean migration reaches every site this sweep owns.
  for (const std::string_view site :
       {faults::kMigrateFreeze, faults::kMigrateCapture, faults::kMigrateTransfer,
        faults::kMigrateRestore, faults::kMigrateResync, faults::kMigrateCommit,
        faults::kChannelDrop, faults::kChannelDup, faults::kChannelReorder}) {
    const auto it = counts.find(std::string(site));
    ASSERT_TRUE(it != counts.end() && it->second > 0)
        << "clean migration never reached " << site;
  }

  uint64_t trials = 0;
  for (const auto& [site, count] : counts) {
    for (const uint64_t trigger : std::set<uint64_t>{1, (count + 1) / 2, count}) {
      SCOPED_TRACE(site + "#" + std::to_string(trigger) + "/" + std::to_string(count));
      RunTrial(arch, site, trigger, oracle);
      ++trials;
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  std::printf("[ sweep ] arch=%d sites=%zu trials=%llu\n", static_cast<int>(arch),
              counts.size(), static_cast<unsigned long long>(trials));
}

TEST(MigrationSweep, EveryStageEveryOccurrenceVtx) { RunSweep(IsaArch::kX86_64); }
TEST(MigrationSweep, EveryStageEveryOccurrencePmp) { RunSweep(IsaArch::kRiscV); }

// Randomized soak on top of the fixed grid: (site, occurrence) pairs
// sampled uniformly across the migration and channel sites. The seed is
// printed so any failing trial replays verbatim with TYCHE_FAULT_SEED.
TEST(MigrationSweep, RandomizedMigrationSoak) {
  const IsaArch arch = IsaArch::kX86_64;
  const Oracle oracle = CleanMigration(arch);
  ASSERT_NE(oracle.dest_domain, kInvalidDomain);
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());
  uint64_t base_seed = 0x5EEDCAFE;
  if (const char* env = std::getenv("TYCHE_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  constexpr int kTrials = 25;
  std::printf("[ soak ] base_seed=0x%llx trials=%d\n",
              static_cast<unsigned long long>(base_seed), kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial) * 0x9E3779B9ull;
    const FaultPlan plan = FaultPlan::FromSeed(seed, counts);
    ASSERT_FALSE(plan.empty());
    const FaultSpec& spec = plan.specs()[0];
    SCOPED_TRACE("seed " + std::to_string(seed) + " site " + spec.site + "#" +
                 std::to_string(spec.trigger));
    RunTrial(arch, spec.site, spec.trigger, oracle);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// The journal splice rejects what it must: tampered bytes, cross-world
// journal pairs, and a destination that claims an adoption nobody handed
// off. (Exit-code mapping is covered by journal_verify's self-test.)
TEST(MigrationSweep, SpliceRejectsTamperAndMismatch) {
  const Oracle oracle = CleanMigration(IsaArch::kX86_64);
  ASSERT_NE(oracle.dest_domain, kInvalidDomain);
  ASSERT_TRUE(VerifyJournalSplice(oracle.source_journal, oracle.dest_journal, oracle.key,
                                  oracle.key)
                  .ok());

  // Any single flipped byte in either journal breaks the splice.
  for (const std::vector<uint8_t>* journal :
       {&oracle.source_journal, &oracle.dest_journal}) {
    std::vector<uint8_t> tampered = *journal;
    tampered[tampered.size() / 2] ^= 0x01;
    const Status verdict =
        journal == &oracle.source_journal
            ? VerifyJournalSplice(tampered, oracle.dest_journal, oracle.key, oracle.key)
            : VerifyJournalSplice(oracle.source_journal, tampered, oracle.key, oracle.key);
    EXPECT_FALSE(verdict.ok()) << "tampered journal spliced";
  }

  // A destination journal from a DIFFERENT world: its kMigrateIn does not
  // match this source's handoff (and vice versa the source kMigrateOut is
  // unmatched). Both directions must fail.
  const Oracle other = CleanMigration(IsaArch::kRiscV);
  ASSERT_NE(other.dest_domain, kInvalidDomain);
  EXPECT_FALSE(VerifyJournalSplice(oracle.source_journal, other.dest_journal, oracle.key,
                                   other.key)
                   .ok());

  // A pristine journal pair WITHOUT the migration: the source never handed
  // anything off, so a lone destination adoption must be rejected.
  auto world = MakeWorld(IsaArch::kX86_64);
  ASSERT_NE(world, nullptr);
  EXPECT_FALSE(VerifyJournalSplice(world->source->ExportJournal(), oracle.dest_journal,
                                   oracle.key, oracle.key)
                   .ok());
}

// The freeze window: a frozen domain rejects operations BY it and ON it
// with the typed kMigrating error, and an in-flight migration excludes
// concurrent dispatch — in both directions.
TEST(MigrationSweep, FreezeWindowRejectsAndExcludes) {
  auto world = MakeWorld(IsaArch::kX86_64);
  ASSERT_NE(world, nullptr);
  Monitor* source = world->source.get();

  FreezeDomainForTest(source, world->victim);
  EXPECT_TRUE(source->migration_in_progress());
  // ON it: operations targeting the frozen domain through its handle.
  EXPECT_EQ(source->AttestDomain(0, world->victim_handle, kNonce).status().code(),
            ErrorCode::kMigrating);
  EXPECT_EQ(source->Transition(3, world->victim_handle).code(), ErrorCode::kMigrating);
  // BY it: the frozen domain itself calling into the monitor.
  world->source_machine->cpu(3).set_current_domain(world->victim);
  EXPECT_EQ(source->CreateDomain(3, "child").status().code(), ErrorCode::kMigrating);
  world->source_machine->cpu(3).set_current_domain(world->source_os);
  // A migration in flight refuses concurrent dispatch...
  EXPECT_EQ(source->EnableConcurrentDispatch().code(), ErrorCode::kFailedPrecondition);

  UnfreezeDomainForTest(source, world->victim);
  EXPECT_FALSE(source->migration_in_progress());
  EXPECT_TRUE(source->AttestDomain(0, world->victim_handle, kNonce).ok());

  // ...and concurrent dispatch refuses migration (both monitors checked).
  ASSERT_TRUE(world->dest->EnableConcurrentDispatch().ok());
  LossyChannel channel;
  const auto refused = MigrateDomain(source, world->dest.get(), world->victim, &channel,
                                     source->public_key());
  EXPECT_EQ(refused.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(source->migration_in_progress());
}

// Migration preconditions: what must be refused outright at freeze.
TEST(MigrationSweep, FreezeRefusesUnmovableDomains) {
  auto world = MakeWorld(IsaArch::kX86_64);
  ASSERT_NE(world, nullptr);
  Monitor* source = world->source.get();
  Monitor* dest = world->dest.get();
  LossyChannel channel;
  const auto migrate = [&](DomainId domain) {
    return MigrateDomain(source, dest, domain, &channel, source->public_key()).status();
  };

  // Self-migration and the initial domain.
  LossyChannel self_channel;
  EXPECT_EQ(MigrateDomain(source, source, world->victim, &self_channel,
                          source->public_key())
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(migrate(world->source_os).code(), ErrorCode::kFailedPrecondition);

  // An unsealed domain has no attested identity to preserve.
  const auto unsealed = source->CreateDomain(0, "unsealed");
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(migrate(unsealed->domain).code(), ErrorCode::kFailedPrecondition);

  // A domain with SHARED memory cannot move machines whole. (Sharing must
  // happen pre-seal: the sealing rules deny new transfers to a sealed
  // domain, so build a second sealed service around a shared page.)
  const AddrRange shared_window{world->window.end() + kMiB, kPageSize};
  const auto leaky = source->CreateDomain(0, "leaky");
  ASSERT_TRUE(leaky.ok());
  const auto shared_cap = FindMemoryCap(*source, world->source_os, shared_window);
  ASSERT_TRUE(shared_cap.ok());
  ASSERT_TRUE(source
                  ->ShareMemory(0, *shared_cap, leaky->handle, shared_window,
                                Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                RevocationPolicy(0))
                  .ok());
  ASSERT_TRUE(source->SetEntryPoint(0, leaky->handle, shared_window.base).ok());
  ASSERT_TRUE(source->ExtendMeasurement(0, leaky->handle, shared_window).ok());
  ASSERT_TRUE(source->Seal(0, leaky->handle).ok());
  EXPECT_EQ(migrate(leaky->domain).code(), ErrorCode::kFailedPrecondition);

  // A running domain cannot be frozen mid-flight.
  world->source_machine->cpu(3).set_current_domain(world->victim);
  EXPECT_EQ(migrate(world->victim).code(), ErrorCode::kFailedPrecondition);
  world->source_machine->cpu(3).set_current_domain(world->source_os);

  // Every refusal left both worlds untouched and unfrozen.
  EXPECT_FALSE(source->migration_in_progress());
  EXPECT_FALSE(dest->migration_in_progress());
  EXPECT_EQ(dest->num_domains_alive(), 1u);
}

// A destination that cannot host the domain (missing covering resources)
// triggers the staged-restore rollback, not a half-adoption.
TEST(MigrationSweep, DestinationWithoutResourcesRollsBack) {
  auto world = MakeWorld(IsaArch::kX86_64);
  ASSERT_NE(world, nullptr);
  Monitor* dest = world->dest.get();

  // The destination OS grants away the core the victim needs, to a local
  // domain, so no covering unit capability is left to carve the grant from.
  const auto hog = dest->CreateDomain(0, "hog");
  ASSERT_TRUE(hog.ok());
  const auto core_cap = FindUnitCap(*dest, world->dest_os, ResourceKind::kCpuCore, 3);
  ASSERT_TRUE(core_cap.ok());
  ASSERT_TRUE(dest->GrantUnit(0, *core_cap, hog->handle, CapRights(CapRights::kAll),
                              RevocationPolicy(0))
                  .ok());
  const Digest pre_source = EngineDigest(world->source->engine());
  const Digest pre_dest = EngineDigest(dest->engine());

  LossyChannel channel;
  const auto report = MigrateDomain(world->source.get(), dest, world->victim, &channel,
                                    world->source->public_key());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(EngineDigest(world->source->engine()), pre_source);
  EXPECT_EQ(EngineDigest(dest->engine()), pre_dest);
  EXPECT_FALSE(world->source->migration_in_progress());

  // A payload signed by a key the destination does not trust is rejected at
  // the staged restore (signature binding), and also rolls back clean.
  LossyChannel channel2;
  const std::vector<uint8_t> wrong_seed = {0xBA, 0xDC, 0x0D, 0xE0};
  const SchnorrPublicKey wrong_key = DeriveKeyPair(wrong_seed).pub;
  const auto forged = MigrateDomain(world->source.get(), dest, world->victim, &channel2,
                                    wrong_key);
  ASSERT_FALSE(forged.ok());
  EXPECT_EQ(forged.status().code(), ErrorCode::kSignatureInvalid);
  EXPECT_EQ(EngineDigest(world->source->engine()), pre_source);
  EXPECT_EQ(EngineDigest(dest->engine()), pre_dest);
}

// Satellite regression: snapshots and concurrent dispatch exclude each
// other SYMMETRICALLY — whichever starts first wins, in both orders.
TEST(MigrationSweep, SnapshotConcurrencyExclusionBothOrders) {
  // Order 1: concurrent dispatch live, then EnableSnapshots must refuse.
  {
    auto world = MakeWorld(IsaArch::kX86_64);
    ASSERT_NE(world, nullptr);
    ASSERT_TRUE(world->source->EnableConcurrentDispatch().ok());
    SnapshotStore store;
    EXPECT_EQ(world->source->EnableSnapshots(&store).code(),
              ErrorCode::kFailedPrecondition);
  }
  // Order 2: snapshots bound, then EnableConcurrentDispatch must refuse.
  {
    auto world = MakeWorld(IsaArch::kX86_64);
    ASSERT_NE(world, nullptr);
    SnapshotStore store;
    ASSERT_TRUE(world->source->EnableSnapshots(&store).ok());
    EXPECT_EQ(world->source->EnableConcurrentDispatch().code(),
              ErrorCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace tyche
