// Copyright 2026 The Tyche Reproduction Authors.
// Experiment F1 (paper Figure 1): the separation of powers, end to end.
//   Legislative -- ANY domain defines policies through the API.
//   Executive   -- the monitor enforces them and emits attestations.
//   Judiciary   -- a root of trust + remote verifier oversee both.

#include <gtest/gtest.h>

#include "src/tyche/verifier.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class SeparationOfPowersTest : public BootedMachineTest {};

TEST_F(SeparationOfPowersTest, LegislativePowerIsUniversal) {
  // Not only the OS: an unprivileged domain (an enclave) exercises the SAME
  // policy API to create and manage its own sub-domains. Isolation is
  // decoupled from privilege.
  const TycheImage image = TycheImage::MakeDemo("app", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(kMiB, 0).base;
  options.size = 8 * kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto app = Enclave::Create(monitor_.get(), 0, image, options);
  ASSERT_TRUE(app.ok());

  // The app (a non-privileged domain!) legislates: it creates a nested
  // domain with a policy of its choosing.
  ASSERT_TRUE(app->Enter(1).ok());
  const TycheImage nested = TycheImage::MakeDemo("lib", kPageSize, 0);
  auto lib = app->SpawnNested(1, nested, app->base() + 4 * kMiB, kMiB, {1});
  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  ASSERT_TRUE(app->Exit(1).ok());

  // Both the OS's and the app's policies are enforced by the same executive.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(SeparationOfPowersTest, ExecutiveOnlyValidatesNeverAllocates) {
  // The monitor rejects invalid policies rather than choosing resources:
  // here a domain tries to legislate beyond its own resources.
  const auto created = monitor_->CreateDomain(0, "greedy");
  ASSERT_TRUE(created.ok());
  // Sharing memory the caller does not own is rejected by validation.
  const TycheImage image = TycheImage::MakeDemo("victim", kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto victim = Enclave::Create(monitor_.get(), 0, image, options);
  ASSERT_TRUE(victim.ok());
  // The OS tries to share the *enclave's* memory (it has no capability).
  const auto theft = FindMemoryCap(*monitor_, os_domain_, AddrRange{options.base, kPageSize});
  EXPECT_FALSE(theft.ok());
}

TEST_F(SeparationOfPowersTest, JudiciaryVerifiesTheWholeChain) {
  // The customer: golden values + trusted TPM key.
  CustomerVerifier customer(machine_->tpm().attestation_key(), golden_firmware_,
                            golden_monitor_);

  // Tier 1: the machine proves it runs the golden monitor.
  const auto identity = monitor_->Identity(/*nonce=*/2026);
  ASSERT_TRUE(identity.ok());
  ASSERT_TRUE(customer.VerifyMonitor(*identity, 2026).ok());

  // Tier 2: a domain proves its code identity and isolation configuration.
  const TycheImage image = TycheImage::MakeDemo("workload", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(2 * kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto enclave = Enclave::Create(monitor_.get(), 0, image, options);
  ASSERT_TRUE(enclave.ok());
  const auto report = enclave->Attest(0, 2027);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(customer
                  .VerifyDomainAgainstImage(*report, image, options.base, options.size,
                                            options.cores, 2027)
                  .ok());
  // Policy: all memory exclusive.
  EXPECT_TRUE(CustomerVerifier::CheckSharingPolicy(*report, SharingPolicy{}).ok());
}

TEST_F(SeparationOfPowersTest, JudiciaryCatchesExecutiveImpersonation) {
  // A different (modified) monitor cannot produce reports the customer
  // accepts: its key derivation is measurement-bound and PCR1 diverges.
  MachineConfig config;
  config.memory_bytes = 64ull << 20;
  Machine evil(config);
  std::vector<uint8_t> evil_image = DemoMonitorImage();
  evil_image[42] ^= 0x1;
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = evil_image;
  auto outcome = MeasuredBoot(&evil, params);
  ASSERT_TRUE(outcome.ok());

  CustomerVerifier customer(evil.tpm().attestation_key(), golden_firmware_,
                            golden_monitor_);
  const auto identity = outcome->monitor->Identity(1);
  EXPECT_FALSE(customer.VerifyMonitor(*identity, 1).ok());
  // Tier 2 cannot even start.
  DomainAttestation fake;
  EXPECT_EQ(customer.VerifyDomainAgainstImage(fake, TycheImage("x"), 0, kPageSize, {}, 1)
                .code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(SeparationOfPowersTest, ApiSurfaceIsNarrow) {
  // §3.5: the monitor is minimal. The entire external surface is the ApiOp
  // set -- document the number so growth is conscious.
  EXPECT_EQ(static_cast<int>(ApiOp::kOpCount), 21);
}

}  // namespace
}  // namespace tyche
