// Copyright 2026 The Tyche Reproduction Authors.
// End-to-end observability: drive a create→share→revoke sequence through
// the register-level ABI and assert the telemetry subsystem saw exactly
// what happened -- trace entries in order, per-op latency histograms,
// effect counters by kind, backend projection counters, the capability
// graph with refcounts, and the kWarn/kTrace audit log lines.

#include <gtest/gtest.h>

#include "src/capability/graph_export.h"
#include "src/monitor/dispatch.h"
#include "src/support/log.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class TelemetryObservabilityTest : public BootedMachineTest {
 protected:
  ApiResult Call(CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                 uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    return Dispatch(monitor_.get(), core, regs);
  }

  static uint64_t Pack(uint8_t rights, uint8_t policy) {
    return (static_cast<uint64_t>(rights) << 8) | policy;
  }
};

TEST_F(TelemetryObservabilityTest, TraceMatchesIssuedOps) {
  // create → share → revoke, all through Dispatch().
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  const uint64_t handle = created.ret1;

  const AddrRange window = Scratch(kMiB, kMiB);
  const ApiResult shared =
      Call(0, ApiOp::kShareMemory, OsMemCap(window), handle, window.base, window.size,
           Perms::kRW, Pack(CapRights::kAll, 0));
  ASSERT_EQ(shared.error, 0u);
  const uint64_t share_cap = shared.ret0;

  ASSERT_EQ(Call(0, ApiOp::kRevoke, share_cap).error, 0u);

  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();

  // The trace holds exactly the three issued ops, in order, attributed to
  // the OS domain on core 0, all successful.
  ASSERT_EQ(snapshot.trace.size(), 3u);
  const ApiOp expected[] = {ApiOp::kCreateDomain, ApiOp::kShareMemory, ApiOp::kRevoke};
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(snapshot.trace[i].op, static_cast<uint16_t>(expected[i]));
    EXPECT_EQ(snapshot.trace[i].core, 0u);
    EXPECT_EQ(snapshot.trace[i].domain, os_domain_);
    EXPECT_EQ(snapshot.trace[i].error, 0u);
    EXPECT_EQ(snapshot.trace[i].seq, i);
  }
  // Different registers produced different argument digests.
  EXPECT_NE(snapshot.trace[1].args_digest, snapshot.trace[2].args_digest);
  EXPECT_EQ(snapshot.trace_recorded, 3u);
  EXPECT_EQ(snapshot.trace_dropped, 0u);

  // Per-op latency histograms carry one sample each.
  const auto op_index = [](ApiOp op) { return static_cast<size_t>(op); };
  EXPECT_EQ(snapshot.per_op_latency[op_index(ApiOp::kCreateDomain)].count(), 1u);
  EXPECT_EQ(snapshot.per_op_latency[op_index(ApiOp::kShareMemory)].count(), 1u);
  EXPECT_EQ(snapshot.per_op_latency[op_index(ApiOp::kRevoke)].count(), 1u);
  EXPECT_GT(snapshot.per_op_latency[op_index(ApiOp::kShareMemory)].Percentile(99), 0u);

  // Engine-event and effect counters: one share, one revoke that cascaded,
  // at least one map and one unmap effect.
  EXPECT_EQ(snapshot.stats.shares, 1u);
  EXPECT_EQ(snapshot.stats.revokes, 1u);
  EXPECT_GE(snapshot.stats.revocations_cascaded, 1u);
  using Kind = CapEffect::Kind;
  EXPECT_GE(snapshot.stats.effects_by_kind[static_cast<size_t>(Kind::kMapMemory)], 1u);
  EXPECT_GE(snapshot.stats.effects_by_kind[static_cast<size_t>(Kind::kUnmapMemory)], 1u);

  // The backend did real work projecting those policies.
  EXPECT_GE(snapshot.backend.memory_syncs, 2u);  // share + revoke
  EXPECT_GE(snapshot.backend.pages_mapped, window.size / kPageSize);
  EXPECT_GE(snapshot.backend.pages_unmapped, window.size / kPageSize);

  // The summary is printable and names the ops.
  const std::string text = snapshot.ToString();
  EXPECT_NE(text.find("share_memory"), std::string::npos);
  EXPECT_NE(text.find("revoke"), std::string::npos);
}

TEST_F(TelemetryObservabilityTest, CapabilityGraphExportCarriesRefcounts) {
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  const uint64_t handle = created.ret1;
  const AddrRange window = Scratch(kMiB, kMiB);
  const ApiResult shared =
      Call(0, ApiOp::kShareMemory, OsMemCap(window), handle, window.base, window.size,
           Perms::kRW, Pack(CapRights::kAll, 0));
  ASSERT_EQ(shared.error, 0u);

  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  // DOT: valid digraph with lineage edges and the shared window at
  // refcount 2 (OS + child both hold the bytes).
  EXPECT_NE(snapshot.capability_graph_dot.find("digraph capabilities"), std::string::npos);
  EXPECT_NE(snapshot.capability_graph_dot.find("->"), std::string::npos);
  EXPECT_NE(snapshot.capability_graph_dot.find("refcount=2"), std::string::npos);
  // JSON: parseable structure with nodes, edges, and a ref_count 2 node.
  EXPECT_NE(snapshot.capability_graph_json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(snapshot.capability_graph_json.find("\"edges\":["), std::string::npos);
  EXPECT_NE(snapshot.capability_graph_json.find("\"ref_count\":2"), std::string::npos);
  EXPECT_NE(snapshot.capability_graph_json.find("\"origin\":\"share\""), std::string::npos);

  // Revoking the share removes the node from the active-only export but
  // keeps it (marked revoked) in the full lineage history.
  ASSERT_EQ(Call(0, ApiOp::kRevoke, shared.ret0).error, 0u);
  const std::string active_only =
      ExportCapabilityGraphJson(monitor_->engine(), {.include_inactive = false});
  EXPECT_EQ(active_only.find("\"origin\":\"share\""), std::string::npos);
  const std::string full = ExportCapabilityGraphJson(monitor_->engine());
  EXPECT_NE(full.find("\"state\":\"revoked\""), std::string::npos);
}

TEST_F(TelemetryObservabilityTest, TelemetryOffRecordsNothing) {
  monitor_->telemetry().set_trace_enabled(false);
  monitor_->telemetry().set_histograms_enabled(false);
  ASSERT_EQ(Call(0, ApiOp::kCreateDomain).error, 0u);
  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  EXPECT_TRUE(snapshot.trace.empty());
  EXPECT_EQ(snapshot.per_op_latency[static_cast<size_t>(ApiOp::kCreateDomain)].count(), 0u);
  // Counters still work: they are part of enforcement accounting, not the
  // optional tracing layer.
  EXPECT_EQ(snapshot.stats.api_calls[static_cast<size_t>(ApiOp::kCreateDomain)], 1u);
}

TEST_F(TelemetryObservabilityTest, RingOverflowCountsDrops) {
  // A burst larger than the ring: oldest entries are overwritten, drop
  // accounting stays exact.
  const size_t capacity = monitor_->telemetry().ring().capacity();
  const size_t burst = capacity + 64;
  for (size_t i = 0; i < burst; ++i) {
    ASSERT_EQ(Call(0, ApiOp::kTakeInterrupt).error,
              static_cast<uint64_t>(ErrorCode::kNotFound));
  }
  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  EXPECT_EQ(snapshot.trace.size(), capacity);
  EXPECT_EQ(snapshot.trace_recorded, burst);
  EXPECT_EQ(snapshot.trace_dropped, 64u);
  // Failed calls are traced too, with their error code.
  EXPECT_EQ(snapshot.trace.back().error, static_cast<uint64_t>(ErrorCode::kNotFound));
}

TEST_F(TelemetryObservabilityTest, SealedShareDenialLogsWarn) {
  // Build and seal an enclave-like domain, then watch a capturing sink see
  // the kWarn security rejection when the OS tries to extend it.
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  const uint64_t handle = created.ret1;
  const AddrRange window = Scratch(kMiB, kMiB);
  ASSERT_EQ(Call(0, ApiOp::kGrantMemory, OsMemCap(window), handle, window.base,
                 window.size, Perms::kRWX, Pack(CapRights::kAll, 0))
                .error,
            0u);
  ASSERT_EQ(Call(0, ApiOp::kSetEntryPoint, handle, window.base).error, 0u);
  ASSERT_EQ(Call(0, ApiOp::kSeal, handle).error, 0u);

  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::Get().set_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  const LogLevel saved = Logger::Get().level();
  Logger::Get().set_level(LogLevel::kWarn);

  const AddrRange extra = Scratch(4 * kMiB, kMiB);
  const ApiResult denied =
      Call(0, ApiOp::kShareMemory, OsMemCap(extra), handle, extra.base, extra.size,
           Perms::kRW, Pack(CapRights::kAll, 0));
  EXPECT_EQ(denied.error, static_cast<uint64_t>(ErrorCode::kDomainSealed));

  Logger::Get().set_level(saved);
  Logger::Get().set_sink(nullptr);

  ASSERT_FALSE(captured.empty());
  bool saw_denial = false;
  for (const auto& [level, message] : captured) {
    if (level == LogLevel::kWarn &&
        message.find("sealing rules deny transfer") != std::string::npos) {
      saw_denial = true;
    }
  }
  EXPECT_TRUE(saw_denial);
}

TEST_F(TelemetryObservabilityTest, RevocationCascadeEmitsTraceLines) {
  // OS shares to child A, A shares onward to child B; revoking the root of
  // the share subtree cascades through both and logs one kTrace line per
  // deactivated capability, carrying the visited-set size.
  const ApiResult a = Call(0, ApiOp::kCreateDomain);
  const ApiResult b = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(a.error, 0u);
  ASSERT_EQ(b.error, 0u);

  const AddrRange window = Scratch(kMiB, kMiB);
  const ApiResult to_a =
      Call(0, ApiOp::kShareMemory, OsMemCap(window), a.ret1, window.base, window.size,
           Perms::kRW, Pack(CapRights::kAll, 0));
  ASSERT_EQ(to_a.error, 0u);

  std::vector<std::string> trace_lines;
  Logger::Get().set_sink([&trace_lines](LogLevel level, const std::string& message) {
    if (level == LogLevel::kTrace) {
      trace_lines.push_back(message);
    }
  });
  const LogLevel saved = Logger::Get().level();
  Logger::Get().set_level(LogLevel::kTrace);

  ASSERT_EQ(Call(0, ApiOp::kRevoke, to_a.ret0).error, 0u);

  Logger::Get().set_level(saved);
  Logger::Get().set_sink(nullptr);

  ASSERT_FALSE(trace_lines.empty());
  for (const std::string& line : trace_lines) {
    if (line.find("revoke cascade") != std::string::npos) {
      EXPECT_NE(line.find("visited="), std::string::npos);
      return;
    }
  }
  FAIL() << "no revoke-cascade trace line captured";
}

}  // namespace
}  // namespace tyche
