// Copyright 2026 The Tyche Reproduction Authors.
// SR-IOV-style device multiplexing (§4.2 "safely multiplexing (with and
// without SR-IOV) PCI devices among TEEs"): one physical NIC exposes two
// virtual functions; each VF is granted to a different trust domain and its
// DMA is confined to that domain's view -- the two tenants cannot reach
// each other through "their" device.

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class SriovTest : public BootedMachineTest {
 protected:
  static constexpr PciBdf kVf0 = PciBdf(0, 3, 1);
  static constexpr PciBdf kVf1 = PciBdf(0, 3, 2);

  SriovTest() : BootedMachineTest(FixtureOptions{}) {
    // Two virtual functions of the same physical device (same bus/device,
    // different function numbers). Added before... the fixture booted
    // already, so mint their capabilities the way hotplug would: devices
    // registered pre-boot in a fresh fixture instead.
  }

  void SetUp() override {
    MachineConfig config;
    config.memory_bytes = 128ull << 20;
    config.num_cores = 4;
    machine_ = std::make_unique<Machine>(config);
    ASSERT_TRUE(machine_->AddDevice(std::make_unique<DmaEngine>(kVf0, "nic0-vf0")).ok());
    ASSERT_TRUE(machine_->AddDevice(std::make_unique<DmaEngine>(kVf1, "nic0-vf1")).ok());
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    auto outcome = MeasuredBoot(machine_.get(), params);
    ASSERT_TRUE(outcome.ok());
    monitor_ = std::move(outcome->monitor);
    os_domain_ = outcome->initial_domain;
    os_.reset();  // the base fixture's LinOS pointed at the replaced world
    const uint64_t os_base = monitor_->monitor_range().end();
    const uint64_t os_size = machine_->memory().size() - os_base;
    managed_ = AddrRange{os_base + os_size / 2, os_size / 2};
  }

  // Tenant: a domain with a window and one VF granted.
  struct Tenant {
    CapId handle = kInvalidCap;
    DomainId domain = kInvalidDomain;
    AddrRange window;
  };

  Tenant MakeTenant(const std::string& name, uint64_t offset, PciBdf vf, CoreId core) {
    Tenant tenant;
    const auto created = monitor_->CreateDomain(0, name);
    EXPECT_TRUE(created.ok());
    tenant.handle = created->handle;
    tenant.domain = created->domain;
    tenant.window = Scratch(offset, kMiB);
    EXPECT_TRUE(monitor_
                    ->GrantMemory(0, OsMemCap(tenant.window), tenant.handle, tenant.window,
                                  Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                  RevocationPolicy(RevocationPolicy::kObfuscate))
                    .ok());
    EXPECT_TRUE(monitor_
                    ->ShareUnit(0, OsCoreCap(core), tenant.handle, CapRights{},
                                RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_
                    ->GrantUnit(0, OsDeviceCap(vf.value), tenant.handle, CapRights{},
                                RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_->SetEntryPoint(0, tenant.handle, tenant.window.base).ok());
    EXPECT_TRUE(monitor_->Seal(0, tenant.handle).ok());
    return tenant;
  }
};

TEST_F(SriovTest, VfsAreMutuallyConfined) {
  const Tenant a = MakeTenant("tenant-a", kMiB, kVf0, 1);
  const Tenant b = MakeTenant("tenant-b", 4 * kMiB, kVf1, 2);

  auto* vf0 = static_cast<DmaEngine*>(machine_->FindDevice(kVf0));
  auto* vf1 = static_cast<DmaEngine*>(machine_->FindDevice(kVf1));

  // Each VF works within its tenant's window.
  EXPECT_TRUE(vf0->Copy(machine_.get(), a.window.base, a.window.base + kPageSize, 512)
                  .ok());
  EXPECT_TRUE(vf1->Copy(machine_.get(), b.window.base, b.window.base + kPageSize, 512)
                  .ok());

  // Cross-tenant DMA through the "own" VF: blocked both directions.
  EXPECT_EQ(vf0->Copy(machine_.get(), b.window.base, a.window.base, 512).code(),
            ErrorCode::kIommuFault);
  EXPECT_EQ(vf0->Copy(machine_.get(), a.window.base, b.window.base, 512).code(),
            ErrorCode::kIommuFault);
  EXPECT_EQ(vf1->Copy(machine_.get(), a.window.base, b.window.base, 512).code(),
            ErrorCode::kIommuFault);

  // Neither VF reaches the OS.
  EXPECT_EQ(vf0->Copy(machine_.get(), a.window.base, managed_.base, 512).code(),
            ErrorCode::kIommuFault);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(SriovTest, VfAttestationShowsExclusiveDevice) {
  const Tenant a = MakeTenant("tenant-a", kMiB, kVf0, 1);
  const auto report = monitor_->AttestDomain(0, a.handle, 3);
  ASSERT_TRUE(report.ok());
  bool saw_device = false;
  for (const ResourceClaim& claim : report->resources) {
    if (claim.kind == ResourceKind::kPciDevice) {
      saw_device = true;
      EXPECT_EQ(claim.unit, kVf0.value);
      EXPECT_EQ(claim.ref_count, 1u);  // exclusively owned VF
    }
  }
  EXPECT_TRUE(saw_device);
}

TEST_F(SriovTest, RevokedVfReturnsQuiesced) {
  const Tenant a = MakeTenant("tenant-a", kMiB, kVf0, 1);
  auto* vf0 = static_cast<DmaEngine*>(machine_->FindDevice(kVf0));
  ASSERT_TRUE(vf0->Copy(machine_.get(), a.window.base, a.window.base + kPageSize, 64)
                  .ok());
  // The OS tears the tenant down: the VF is re-attached to the OS (sole
  // holder again) and the tenant's window is zeroed.
  ASSERT_TRUE(monitor_->DestroyDomain(0, a.handle).ok());
  EXPECT_EQ(*machine_->CheckedRead64(0, a.window.base), 0u);
  EXPECT_TRUE(vf0->Copy(machine_.get(), managed_.base, managed_.base + kPageSize, 64)
                  .ok());
}

}  // namespace
}  // namespace tyche
