// Copyright 2026 The Tyche Reproduction Authors.
// The same isolation story on both simulated architectures (§4: the design
// works on virtualization hardware AND on bare PMP). TEST_P runs each
// scenario on x86_64/VT-x and RISC-V/PMP.

#include <gtest/gtest.h>

#include "src/os/testbed.h"
#include "src/tyche/enclave.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

class CrossArchTest : public ::testing::TestWithParam<IsaArch> {
 protected:
  static constexpr uint64_t kMiB = 1ull << 20;

  void SetUp() override {
    TestbedOptions options;
    options.arch = GetParam();
    options.memory_bytes = 128ull << 20;
    auto testbed = Testbed::Create(options);
    ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
    testbed_ = std::make_unique<Testbed>(std::move(*testbed));
  }

  Testbed& tb() { return *testbed_; }
  Machine& machine() { return testbed_->machine(); }
  Monitor& monitor() { return testbed_->monitor(); }

  std::unique_ptr<Testbed> testbed_;
};

TEST_P(CrossArchTest, EnclaveLifecycleAndConfidentiality) {
  const TycheImage image = TycheImage::MakeDemo("xarch", 2 * kPageSize, kPageSize);
  LoadOptions load;
  // NAPOT-friendly placement so the PMP backend's layout stays cheap.
  load.base = AlignUp(tb().Scratch(0), kMiB);
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {*tb().OsCoreCap(1)};
  auto enclave = Enclave::Create(&monitor(), 0, image, load);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  // Confidentiality from the OS, on whichever mechanism enforces it.
  EXPECT_FALSE(machine().CheckedRead64(0, enclave->base()).ok());
  // Shared segment stays visible to both.
  const uint64_t shared = enclave->base() + image.segments()[1].offset;
  EXPECT_TRUE(machine().CheckedRead64(0, shared).ok());

  ASSERT_TRUE(enclave->Enter(1).ok());
  EXPECT_TRUE(machine().CheckedWrite64(1, enclave->base() + kPageSize, 0xAB).ok());
  EXPECT_FALSE(machine().CheckedRead64(1, tb().Scratch(32 * kMiB)).ok());
  // The monitor's own memory is out of reach from inside the domain.
  EXPECT_FALSE(machine().CheckedRead64(1, 0x1000).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());

  ASSERT_TRUE(monitor().DestroyDomain(0, enclave->handle()).ok());
  EXPECT_EQ(*machine().CheckedRead64(0, enclave->base() + kPageSize), 0u);
  EXPECT_TRUE(*monitor().AuditHardwareConsistency());
}

TEST_P(CrossArchTest, AttestationIsBackendIndependent) {
  // The measurement must not depend on the enforcement mechanism: the same
  // image + configuration yields the same digest on both backends.
  const TycheImage image = TycheImage::MakeDemo("measured", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = AlignUp(tb().Scratch(0), kMiB);
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {*tb().OsCoreCap(1)};
  auto enclave = Enclave::Create(&monitor(), 0, image, load);
  ASSERT_TRUE(enclave.ok());
  const auto report = enclave->Attest(0, 1);
  ASSERT_TRUE(report.ok());
  // The offline computation knows nothing about the backend either.
  const auto golden =
      ComputeExpectedMeasurement(image, load.base, load.size, load.cores);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(report->measurement, *golden);

  CustomerVerifier customer(machine().tpm().attestation_key(), tb().golden_firmware(),
                            tb().golden_monitor());
  ASSERT_TRUE(customer.VerifyMonitor(*monitor().Identity(3), 3).ok());
  EXPECT_TRUE(customer
                  .VerifyDomainAgainstImage(*report, image, load.base, load.size,
                                            load.cores, 1)
                  .ok());
}

TEST_P(CrossArchTest, NestedDomainsWork) {
  const TycheImage image = TycheImage::MakeDemo("outer", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = AlignUp(tb().Scratch(0), 8 * kMiB);
  load.size = 8 * kMiB;
  load.cores = {1};
  load.core_caps = {*tb().OsCoreCap(1)};
  auto outer = Enclave::Create(&monitor(), 0, image, load);
  ASSERT_TRUE(outer.ok()) << outer.status().ToString();

  ASSERT_TRUE(outer->Enter(1).ok());
  const TycheImage inner_image = TycheImage::MakeDemo("inner", kPageSize, 0);
  // NAPOT-aligned nested placement keeps the PMP layout within budget.
  auto inner = outer->SpawnNested(1, inner_image, outer->base() + 4 * kMiB, kMiB, {1});
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  EXPECT_FALSE(machine().CheckedRead64(1, inner->base()).ok());  // parent lost it
  ASSERT_TRUE(inner->Enter(1).ok());
  EXPECT_TRUE(machine().CheckedRead64(1, inner->base()).ok());
  ASSERT_TRUE(inner->Exit(1).ok());
  ASSERT_TRUE(outer->Exit(1).ok());
  EXPECT_TRUE(*monitor().AuditHardwareConsistency());
}

TEST_P(CrossArchTest, SealingRulesIdentical) {
  const auto created = monitor().CreateDomain(0, "sealed");
  ASSERT_TRUE(created.ok());
  const AddrRange window{AlignUp(tb().Scratch(0), kMiB), kMiB};
  ASSERT_TRUE(monitor()
                  .GrantMemory(0, *tb().OsMemCap(window), created->handle, window,
                               Perms(Perms::kRWX), CapRights(CapRights::kAll),
                               RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor().SetEntryPoint(0, created->handle, window.base).ok());
  ASSERT_TRUE(monitor().Seal(0, created->handle).ok());
  const AddrRange extra{AlignUp(tb().Scratch(16 * kMiB), kMiB), kMiB};
  EXPECT_EQ(monitor()
                .ShareMemory(0, *tb().OsMemCap(extra), created->handle, extra,
                             Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                .code(),
            ErrorCode::kDomainSealed);
}

INSTANTIATE_TEST_SUITE_P(Arch, CrossArchTest,
                         ::testing::Values(IsaArch::kX86_64, IsaArch::kRiscV),
                         [](const ::testing::TestParamInfo<IsaArch>& info) {
                           return info.param == IsaArch::kX86_64 ? "x86_64_vtx"
                                                                 : "riscv_pmp";
                         });

}  // namespace
}  // namespace tyche
