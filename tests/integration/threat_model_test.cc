// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C8: the paper's threat model, attack by attack. Each attack is
// run twice: against the commodity baseline (where §2.2 says it succeeds)
// and against monitor-enforced domains (where it must fail).

#include <gtest/gtest.h>

#include "src/baseline/monopoly.h"
#include "src/baseline/sgx_model.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class ThreatModelTest : public BootedMachineTest {
 protected:
  ThreatModelTest() : BootedMachineTest(FixtureOptions{.with_nic = true}) {}

  Result<Enclave> MakeVictimEnclave(uint64_t offset) {
    const TycheImage image = TycheImage::MakeDemo("victim", 2 * kPageSize, 0);
    LoadOptions options;
    options.base = Scratch(offset, 0).base;
    options.size = kMiB;
    options.cores = {1};
    options.core_caps = {OsCoreCap(1)};
    return Enclave::Create(monitor_.get(), 0, image, options);
  }
};

TEST_F(ThreatModelTest, Attack1_PrivilegedMemoryRead) {
  // Baseline: the kernel reads any process (CommodityStack::CanAccess).
  CommodityStack stack;
  const uint32_t kernel = stack.AddActor("kernel", PrivLevel::kGuestKernel, 0);
  const uint32_t app = stack.AddActor("app", PrivLevel::kUserProcess, kernel);
  ASSERT_TRUE(stack.Assign(kernel, app, AddrRange{8 * kMiB, kMiB}).ok());
  EXPECT_TRUE(stack.CanAccess(kernel, AddrRange{8 * kMiB, kPageSize}));  // succeeds

  // Monitor: domain 0 (the same "kernel") cannot read an enclave.
  auto enclave = MakeVictimEnclave(kMiB);
  ASSERT_TRUE(enclave.ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, enclave->base()).ok());  // blocked
}

TEST_F(ThreatModelTest, Attack2_PrivilegedMemoryWrite_Integrity) {
  auto enclave = MakeVictimEnclave(2 * kMiB);
  ASSERT_TRUE(enclave.ok());
  // Enclave stores a value...
  ASSERT_TRUE(enclave->Enter(1).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(1, enclave->base() + kPageSize, 777).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());
  // ... the OS tries to corrupt it, on every core it controls.
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (monitor_->CurrentDomain(core) == os_domain_) {
      EXPECT_FALSE(machine_->CheckedWrite64(core, enclave->base() + kPageSize, 666).ok());
    }
  }
  // Value intact.
  ASSERT_TRUE(enclave->Enter(1).ok());
  EXPECT_EQ(*machine_->CheckedRead64(1, enclave->base() + kPageSize), 777u);
  ASSERT_TRUE(enclave->Exit(1).ok());
}

TEST_F(ThreatModelTest, Attack3_DmaBypass) {
  // A malicious driver programs the NIC to exfiltrate enclave memory.
  auto enclave = MakeVictimEnclave(4 * kMiB);
  ASSERT_TRUE(enclave.ok());
  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  // The NIC is held by the OS alone and attached to the OS context: DMA into
  // OS memory works (this is the baseline behaviour)...
  EXPECT_TRUE(nic->Copy(machine_.get(), managed_.base, managed_.base + kPageSize, 64).ok());
  // ... but the enclave's pages are not mapped in the OS context: blocked.
  EXPECT_EQ(nic->Copy(machine_.get(), enclave->base(), managed_.base, 64).code(),
            ErrorCode::kIommuFault);
  EXPECT_EQ(nic->Copy(machine_.get(), managed_.base, enclave->base(), 64).code(),
            ErrorCode::kIommuFault);
}

TEST_F(ThreatModelTest, Attack4_EntryPointHijack) {
  // Jumping into a domain anywhere but its fixed entry point: the monitor
  // mediates ALL control transfers, so the only way in is Transition, which
  // always lands on the entry point. Here the OS tries to "enter" by simply
  // running with the enclave's protection context -- there is no API for
  // that; the closest it can get is a transition, which is mediated.
  auto enclave = MakeVictimEnclave(6 * kMiB);
  ASSERT_TRUE(enclave.ok());
  // Transition on a core the enclave does not own is refused.
  EXPECT_EQ(monitor_->Transition(2, enclave->handle()).code(),
            ErrorCode::kTransitionDenied);
  // And a forged handle is refused.
  EXPECT_FALSE(monitor_->Transition(1, CapId{999999}).ok());
}

TEST_F(ThreatModelTest, Attack5_ResourceExhaustionIsNotConfidentialityLoss) {
  // The OS can refuse to give an enclave memory (denial of service is out of
  // scope, §3.2 keeps management code in control) -- but it cannot use
  // revocation to READ secrets: the zero-on-revoke policy runs first.
  auto enclave = MakeVictimEnclave(8 * kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(1, enclave->base() + kPageSize, 0xdeadbeef).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());

  // The OS revokes the enclave's text+heap grant (it owns the parent cap).
  CapId granted = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == enclave->domain() && cap.kind == ResourceKind::kMemory &&
        cap.range.Contains(enclave->base() + kPageSize)) {
      granted = cap.id;
    }
  });
  ASSERT_NE(granted, kInvalidCap);
  ASSERT_TRUE(monitor_->Revoke(0, granted).ok());
  // The OS regains the range -- zeroed. No secret recovered.
  EXPECT_EQ(*machine_->CheckedRead64(0, enclave->base() + kPageSize), 0u);
}

TEST_F(ThreatModelTest, Attack6_SgxStyleImplicitLeak) {
  // Baseline: SGX enclave code reaches its whole host address space -- a
  // single compromised enclave (or a confused-deputy bug) leaks host data
  // with NO policy violation recorded.
  EXPECT_TRUE(SgxProcessor::kEnclaveSeesHostMemory);

  // Tyche enclave: the host's memory is simply not mapped. The "bug" would
  // fault instantly (Attack1 showed the read path; here the exec path).
  auto enclave = MakeVictimEnclave(10 * kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());
  EXPECT_FALSE(machine_->CheckedFetch(1, managed_.base, 16).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());
}

TEST_F(ThreatModelTest, Attack7_AttestationReplayAndForgery) {
  auto enclave = MakeVictimEnclave(12 * kMiB);
  ASSERT_TRUE(enclave.ok());
  RemoteVerifier verifier(machine_->tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  const auto report = enclave->Attest(0, /*nonce=*/500);
  ASSERT_TRUE(report.ok());
  // Replay with an old nonce: rejected.
  EXPECT_FALSE(verifier.VerifyDomain(*report, monitor_->public_key(), 501, nullptr).ok());
  // Forged resource list: rejected (signature covers the digest).
  DomainAttestation forged = *report;
  forged.resources.clear();
  forged.report_digest = forged.ComputeDigest();
  EXPECT_FALSE(verifier.VerifyDomain(forged, monitor_->public_key(), 500, nullptr).ok());
}

TEST_F(ThreatModelTest, Attack8_HierarchyCannotExpressProtection) {
  // The structural claim of §2.3: in a privilege hierarchy the victim cannot
  // even EXPRESS "protect me from my kernel"; on the monitor it is one
  // grant away. Both sides shown side by side.
  CommodityStack stack;
  const uint32_t kernel = stack.AddActor("kernel", PrivLevel::kGuestKernel, 0);
  const uint32_t app = stack.AddActor("app", PrivLevel::kUserProcess, kernel);
  ASSERT_TRUE(stack.Assign(kernel, app, AddrRange{8 * kMiB, kMiB}).ok());
  EXPECT_EQ(stack.ProtectFromAncestors(app, AddrRange{8 * kMiB, kPageSize}).code(),
            ErrorCode::kUnimplemented);
  EXPECT_EQ(stack.Attest(app).code(), ErrorCode::kUnimplemented);

  auto enclave = MakeVictimEnclave(14 * kMiB);
  ASSERT_TRUE(enclave.ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, enclave->base()).ok());
  EXPECT_TRUE(enclave->Attest(0, 1).ok());
}

}  // namespace
}  // namespace tyche
