// Copyright 2026 The Tyche Reproduction Authors.
// End-to-end audit journal: a circular-sharing workload with a cascading
// revocation is driven through the register ABI, the exported journal is
// verified offline (chain, checkpoint signatures, shadow replay against the
// capability-graph snapshot), and then randomized tampering -- byte flips,
// record drops, record swaps -- must be caught on every single trial.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/dispatch.h"
#include "src/support/prng.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class AuditJournalTest : public BootedMachineTest {
 protected:
  ApiResult Call(CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                 uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    return Dispatch(monitor_.get(), core, regs);
  }

  static uint64_t Pack(uint8_t rights, uint8_t policy) {
    return (static_cast<uint64_t>(rights) << 8) | policy;
  }

  // Runs the workload: OS creates A and B, hands each a handle to the other,
  // then memory flows OS -> A -> B -> A (circular over one window) before the
  // OS revokes the root share and the whole loop cascades away.
  void RunCircularWorkload() {
    const ApiResult created_a = Call(0, ApiOp::kCreateDomain);
    const ApiResult created_b = Call(0, ApiOp::kCreateDomain);
    ASSERT_EQ(created_a.error, 0u);
    ASSERT_EQ(created_b.error, 0u);
    const DomainId domain_a = created_a.ret0;
    const DomainId domain_b = created_b.ret0;
    const CapId handle_a = created_a.ret1;
    const CapId handle_b = created_b.ret1;

    // A needs a handle to B (and vice versa) to name it as a destination.
    const ApiResult b_for_a =
        Call(0, ApiOp::kShareUnit, handle_b, handle_a, Pack(CapRights::kAll, 0));
    const ApiResult a_for_b =
        Call(0, ApiOp::kShareUnit, handle_a, handle_b, Pack(CapRights::kAll, 0));
    ASSERT_EQ(b_for_a.error, 0u);
    ASSERT_EQ(a_for_b.error, 0u);

    const AddrRange window = Scratch(kMiB, 16 * kPageSize);
    const ApiResult to_a =
        Call(0, ApiOp::kShareMemory, OsMemCap(window), handle_a, window.base, window.size,
             Perms::kRW, Pack(CapRights::kAll, 0));
    ASSERT_EQ(to_a.error, 0u);

    // A forwards half of it to B; B hands a quarter back to A: a cycle in
    // the domain graph, still a tree in the lineage graph.
    machine_->cpu(1).set_current_domain(domain_a);
    const ApiResult to_b = Call(1, ApiOp::kShareMemory, to_a.ret0, b_for_a.ret0,
                                window.base, 8 * kPageSize, Perms::kRW,
                                Pack(CapRights::kAll, 0));
    ASSERT_EQ(to_b.error, 0u);
    machine_->cpu(2).set_current_domain(domain_b);
    const ApiResult back_to_a = Call(2, ApiOp::kShareMemory, to_b.ret0, a_for_b.ret0,
                                     window.base, 4 * kPageSize, Perms::kRW,
                                     Pack(CapRights::kAll, 0));
    ASSERT_EQ(back_to_a.error, 0u);

    // Revoking the root share cascades through the whole loop.
    const ApiResult revoked = Call(0, ApiOp::kRevoke, to_a.ret0);
    ASSERT_EQ(revoked.error, 0u);
    root_share_ = to_a.ret0;
    loop_caps_ = {to_a.ret0, to_b.ret0, back_to_a.ret0};
  }

  CapId root_share_ = kInvalidCap;
  std::vector<CapId> loop_caps_;
};

TEST_F(AuditJournalTest, ReplayReproducesGraphAndSpansTieTheCascade) {
  RunCircularWorkload();

  const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
  const std::vector<uint8_t> wire = monitor_->ExportJournal();
  EXPECT_TRUE(RemoteVerifier::VerifyJournal(wire, monitor_->public_key(),
                                            &snapshot.capability_graph_json)
                  .ok());

  // The cascade is causally tied to its root: the kRevoke record and one
  // kCascade record per deactivated capability share a single span id.
  const std::vector<JournalRecord> records = monitor_->audit().journal().Records();
  const JournalRecord* revoke = nullptr;
  for (const JournalRecord& record : records) {
    if (record.event == static_cast<uint8_t>(JournalEvent::kRevoke) &&
        record.cap == root_share_) {
      revoke = &record;
    }
  }
  ASSERT_NE(revoke, nullptr);
  EXPECT_EQ(revoke->aux, loop_caps_.size());  // three caps in the loop
  std::vector<CapId> cascaded;
  for (const JournalRecord& record : records) {
    if (record.event == static_cast<uint8_t>(JournalEvent::kCascade) &&
        record.span == revoke->span) {
      EXPECT_EQ(record.parent, root_share_);
      cascaded.push_back(record.cap);
    }
  }
  std::sort(cascaded.begin(), cascaded.end());
  std::vector<CapId> expected = loop_caps_;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cascaded, expected);

  // Direct replay agrees with the snapshot byte for byte and skipped only
  // the context records (dispatches and hardware effects).
  const auto parsed = Journal::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  const auto replay = ReplayJournal(parsed->records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->graph_json, snapshot.capability_graph_json);
  EXPECT_GT(replay->applied, 0u);
  EXPECT_GT(replay->skipped, 0u);
}

TEST_F(AuditJournalTest, EveryRandomizedTamperIsCaught) {
  RunCircularWorkload();
  const std::vector<uint8_t> wire = monitor_->ExportJournal();
  const SchnorrPublicKey key = monitor_->public_key();
  ASSERT_TRUE(RemoteVerifier::VerifyJournal(wire, key, nullptr).ok());
  const auto parsed = Journal::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_GE(parsed->records.size(), 10u);

  // A tamper "counts as caught" if either deserialization or verification
  // rejects it; acceptance of any mutated journal is a test failure.
  const auto caught = [&](const std::vector<uint8_t>& bytes) {
    return !RemoteVerifier::VerifyJournal(bytes, key, nullptr).ok();
  };

  Prng prng(0x7a3c);
  int trials = 0;
  for (int i = 0; i < 40; ++i, ++trials) {  // single-bit flips anywhere
    std::vector<uint8_t> tampered = wire;
    const size_t at = prng.Below(tampered.size());
    tampered[at] ^= static_cast<uint8_t>(1u << prng.Below(8));
    EXPECT_TRUE(caught(tampered)) << "bit flip at byte " << at << " accepted";
  }
  for (int i = 0; i < 35; ++i, ++trials) {  // drop one record
    std::vector<JournalRecord> records = parsed->records;
    const size_t at = prng.Below(records.size());
    records.erase(records.begin() + at);
    EXPECT_TRUE(caught(Journal::SerializeParts(records, parsed->checkpoints)))
        << "dropping record " << at << " accepted";
  }
  for (int i = 0; i < 35; ++i, ++trials) {  // swap two records
    std::vector<JournalRecord> records = parsed->records;
    const size_t a = prng.Below(records.size());
    size_t b = prng.Below(records.size());
    while (b == a) {
      b = prng.Below(records.size());
    }
    std::swap(records[a], records[b]);
    EXPECT_TRUE(caught(Journal::SerializeParts(records, parsed->checkpoints)))
        << "swapping records " << a << " and " << b << " accepted";
  }
  EXPECT_GE(trials, 100);
}

TEST_F(AuditJournalTest, DisabledJournalStillDispatches) {
  monitor_->audit().set_enabled(false);
  const size_t before = monitor_->audit().journal().size();
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  EXPECT_EQ(created.error, 0u);
  EXPECT_EQ(monitor_->audit().journal().size(), before);
}

}  // namespace
}  // namespace tyche
