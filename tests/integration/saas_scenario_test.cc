// Copyright 2026 The Tyche Reproduction Authors.
// Experiment F2/F3 (paper Figures 2 and 3): confidential processing of
// customer data through an untrusted SaaS stack.
//
// Cast:
//   - cloud provider / OS: domain 0, UNTRUSTED by the customer;
//   - SaaS application: sealed domain processing the data;
//   - crypto engine: enclave NESTED in the SaaS app, holds the customer key,
//     (de/en)crypts all traffic; talks to the app over an exclusive channel;
//   - GPU: an I/O trust domain restricted to its firmware + a frame buffer
//     explicitly shared with the SaaS app.
// The customer verifies the monitor (tier 1), each domain's measurement and
// reference counts (tier 2), and only then provisions its key.

#include <gtest/gtest.h>

#include "src/tyche/verifier.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

// Toy stream cipher standing in for the crypto engine's work.
void XorCrypt(std::span<uint8_t> data, uint64_t key) {
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= static_cast<uint8_t>(key >> (8 * (i % 8)));
  }
}

class SaasScenarioTest : public BootedMachineTest {
 protected:
  SaasScenarioTest() : BootedMachineTest(FixtureOptions{.with_gpu = true}) {}

  // --- Layout constants (offsets within the SaaS app's region) ---
  static constexpr uint64_t kSaasSize = 16ull << 20;
  static constexpr uint64_t kNetbufOffset = 8 * kPageSize;   // shared with OS
  static constexpr uint64_t kCryptoOffset = 4ull << 20;      // nested crypto engine
  static constexpr uint64_t kCryptoSize = 1ull << 20;
  static constexpr uint64_t kChannelOffset = 6ull << 20;     // SaaS <-> crypto
  static constexpr uint64_t kGpuFwOffset = 8ull << 20;       // gpu firmware region
  static constexpr uint64_t kGpuFwSize = 64 * 1024;
  static constexpr uint64_t kFramebufOffset = 9ull << 20;    // SaaS <-> GPU
  static constexpr uint64_t kFramebufSize = 64 * 1024;

  TycheImage SaasImage() {
    TycheImage image("saas-app");
    ImageSegment text;
    text.name = "text";
    text.offset = 0;
    text.size = 4 * kPageSize;
    text.perms = Perms(Perms::kRWX);
    text.measured = true;
    text.data.assign(1234, 0xaa);
    (void)image.AddSegment(std::move(text));
    ImageSegment netbuf;
    netbuf.name = "netbuf";
    netbuf.offset = kNetbufOffset;
    netbuf.size = 4 * kPageSize;
    netbuf.perms = Perms(Perms::kRW);
    netbuf.shared = true;  // the untrusted network path
    (void)image.AddSegment(std::move(netbuf));
    image.set_entry_offset(0);
    return image;
  }

  TycheImage CryptoImage() { return TycheImage::MakeDemo("crypto-engine", 2 * kPageSize, 0); }
};

TEST_F(SaasScenarioTest, EndToEndConfidentialPipeline) {
  // ---------- 1. The untrusted OS deploys the SaaS app ----------
  const TycheImage saas_image = SaasImage();
  LoadOptions load;
  load.base = Scratch(16 * kMiB, 0).base;
  load.size = kSaasSize;
  load.cores = {1};
  load.core_caps = {OsCoreCap(1)};
  load.seal = false;  // the GPU device is granted before sealing
  auto saas = LoadImage(monitor_.get(), 0, saas_image, load);
  ASSERT_TRUE(saas.ok()) << saas.status().ToString();
  // The grant right lets the SaaS app delegate the GPU onward to its own
  // I/O domain.
  ASSERT_TRUE(monitor_
                  ->GrantUnit(0, OsDeviceCap(kGpuBdf.value), saas->handle,
                              CapRights(CapRights::kGrant), RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->Seal(0, saas->handle).ok());

  const uint64_t base = load.base;

  // ---------- 2. Inside the SaaS app: build crypto engine + GPU domain ----
  ASSERT_TRUE(monitor_->Transition(1, saas->handle).ok());
  const DomainId saas_domain = monitor_->CurrentDomain(1);

  // 2a. Crypto engine: nested enclave with an exclusive channel.
  const TycheImage crypto_image = CryptoImage();
  LoadOptions crypto_load;
  crypto_load.base = base + kCryptoOffset;
  crypto_load.size = kCryptoSize;
  crypto_load.cores = {1};
  crypto_load.core_caps = {*FindUnitCap(*monitor_, saas_domain, ResourceKind::kCpuCore, 1)};
  crypto_load.seal = false;
  auto crypto = LoadImage(monitor_.get(), 1, crypto_image, crypto_load);
  ASSERT_TRUE(crypto.ok()) << crypto.status().ToString();
  const AddrRange channel{base + kChannelOffset, kPageSize};
  ASSERT_TRUE(monitor_
                  ->ShareMemory(1, *FindMemoryCap(*monitor_, saas_domain, channel),
                                crypto->handle, channel, Perms(Perms::kRW), CapRights{},
                                RevocationPolicy(RevocationPolicy::kObfuscate))
                  .ok());
  ASSERT_TRUE(monitor_->Seal(1, crypto->handle).ok());

  // 2b. GPU I/O domain: firmware + frame buffer + the device itself.
  const auto gpu_created = monitor_->CreateDomain(1, "gpu-domain");
  ASSERT_TRUE(gpu_created.ok());
  const AddrRange gpu_fw{base + kGpuFwOffset, kGpuFwSize};
  const AddrRange framebuf{base + kFramebufOffset, kFramebufSize};
  ASSERT_TRUE(monitor_
                  ->GrantMemory(1, *FindMemoryCap(*monitor_, saas_domain, gpu_fw),
                                gpu_created->handle, gpu_fw, Perms(Perms::kRWX),
                                CapRights{}, RevocationPolicy(RevocationPolicy::kObfuscate))
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareMemory(1, *FindMemoryCap(*monitor_, saas_domain, framebuf),
                                gpu_created->handle, framebuf, Perms(Perms::kRW),
                                CapRights{}, RevocationPolicy(RevocationPolicy::kObfuscate))
                  .ok());
  ASSERT_TRUE(monitor_
                  ->GrantUnit(1, *FindUnitCap(*monitor_, saas_domain,
                                              ResourceKind::kPciDevice, kGpuBdf.value),
                              gpu_created->handle, CapRights{}, RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(1, gpu_created->handle, gpu_fw.base).ok());
  ASSERT_TRUE(monitor_->Seal(1, gpu_created->handle).ok());

  // 2c. Collect attestations while inside (the SaaS app relays them).
  const auto saas_report = monitor_->AttestSelf(1, 101);
  const auto crypto_report = monitor_->AttestDomain(1, crypto->handle, 102);
  const auto gpu_report = monitor_->AttestDomain(1, gpu_created->handle, 103);
  ASSERT_TRUE(saas_report.ok());
  ASSERT_TRUE(crypto_report.ok());
  ASSERT_TRUE(gpu_report.ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // ---------- 3. The customer verifies the whole deployment ----------
  CustomerVerifier customer(machine_->tpm().attestation_key(), golden_firmware_,
                            golden_monitor_);
  const auto identity = monitor_->Identity(100);
  ASSERT_TRUE(identity.ok());
  ASSERT_TRUE(customer.VerifyMonitor(*identity, 100).ok());

  // Crypto engine: golden measurement (image + channel share + core).
  const auto crypto_golden = ComputeExpectedMeasurement(
      crypto_image, crypto_load.base, crypto_load.size, crypto_load.cores, {},
      {ExtraRegion{channel, Perms(Perms::kRW)}});
  ASSERT_TRUE(crypto_golden.ok());
  EXPECT_EQ(crypto_report->measurement, *crypto_golden);
  ASSERT_TRUE(RemoteVerifier(machine_->tpm().attestation_key(), golden_firmware_,
                             golden_monitor_)
                  .VerifyDomain(*crypto_report, customer.monitor_key(), 102,
                                &*crypto_golden)
                  .ok());

  // Sharing policy: the crypto engine may share ONLY the channel (rc 2);
  // the SaaS app may share netbuf (with the OS), channel, framebuf.
  SharingPolicy crypto_policy;
  crypto_policy.expected_shared = {channel};
  EXPECT_TRUE(CustomerVerifier::CheckSharingPolicy(*crypto_report, crypto_policy).ok());

  SharingPolicy saas_policy;
  saas_policy.expected_shared = {AddrRange{base + kNetbufOffset, 4 * kPageSize}, channel,
                                 framebuf};
  EXPECT_TRUE(CustomerVerifier::CheckSharingPolicy(*saas_report, saas_policy).ok());

  SharingPolicy gpu_policy;
  gpu_policy.expected_shared = {framebuf};
  EXPECT_TRUE(CustomerVerifier::CheckSharingPolicy(*gpu_report, gpu_policy).ok());

  // ---------- 4. Key provisioning + confidential processing ----------
  const uint64_t customer_key = 0x1122334455667788ULL;
  // Provision: the key lands in the crypto engine's confidential memory
  // (modelled as a direct write while executing as the crypto engine).
  ASSERT_TRUE(monitor_->Transition(1, saas->handle).ok());
  ASSERT_TRUE(monitor_->Transition(1, crypto->handle).ok());
  const uint64_t key_slot = crypto_load.base + kCryptoSize - kPageSize;
  ASSERT_TRUE(machine_->CheckedWrite64(1, key_slot, customer_key).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // The customer sends encrypted data over the untrusted network (netbuf).
  std::vector<uint8_t> wire(64);
  for (size_t i = 0; i < wire.size(); ++i) {
    wire[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  std::vector<uint8_t> plaintext = wire;  // customer-side copy
  XorCrypt(std::span<uint8_t>(wire), customer_key);  // customer encrypts
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());    // leave SaaS: OS delivers
  const uint64_t netbuf = base + kNetbufOffset;
  ASSERT_TRUE(machine_->CheckedWrite(0, netbuf, std::span<const uint8_t>(wire)).ok());

  // SaaS app: move ciphertext to the channel, ask the crypto engine to
  // decrypt, hand plaintext to the GPU, and send the encrypted result back.
  ASSERT_TRUE(monitor_->Transition(1, saas->handle).ok());
  std::vector<uint8_t> buffer(64);
  ASSERT_TRUE(machine_->CheckedRead(1, netbuf, std::span<uint8_t>(buffer)).ok());
  ASSERT_TRUE(machine_->CheckedWrite(1, channel.base, std::span<const uint8_t>(buffer)).ok());
  // Crypto engine decrypts in place on the channel.
  ASSERT_TRUE(monitor_->Transition(1, crypto->handle).ok());
  {
    std::vector<uint8_t> scratch(64);
    ASSERT_TRUE(machine_->CheckedRead(1, channel.base, std::span<uint8_t>(scratch)).ok());
    const uint64_t key = *machine_->CheckedRead64(1, key_slot);
    XorCrypt(std::span<uint8_t>(scratch), key);
    ASSERT_TRUE(
        machine_->CheckedWrite(1, channel.base, std::span<const uint8_t>(scratch)).ok());
  }
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  // SaaS moves plaintext into the frame buffer; the GPU computes.
  ASSERT_TRUE(machine_->CheckedRead(1, channel.base, std::span<uint8_t>(buffer)).ok());
  EXPECT_EQ(buffer, plaintext);  // decryption worked
  ASSERT_TRUE(
      machine_->CheckedWrite(1, framebuf.base, std::span<const uint8_t>(buffer)).ok());
  auto* gpu = static_cast<GpuDevice*>(machine_->FindDevice(kGpuBdf));
  ASSERT_TRUE(gpu->RunKernel(machine_.get(), framebuf.base, framebuf.base + kPageSize,
                             64, /*key=*/0x5a)
                  .ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // ---------- 5. The attacks that MUST fail ----------
  // The OS cannot read the plaintext channel, the frame buffer, the crypto
  // engine's key, or the SaaS app's text.
  EXPECT_FALSE(machine_->CheckedRead64(0, channel.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, framebuf.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, key_slot).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, base).ok());
  // The OS CAN read the netbuf -- and sees only ciphertext there.
  std::vector<uint8_t> os_view(64);
  ASSERT_TRUE(machine_->CheckedRead(0, netbuf, std::span<uint8_t>(os_view)).ok());
  EXPECT_EQ(os_view, wire);
  EXPECT_NE(os_view, plaintext);
  // The GPU cannot DMA outside its domain (e.g. into the crypto engine).
  EXPECT_EQ(gpu->RunKernel(machine_.get(), key_slot, framebuf.base, 8, 0).code(),
            ErrorCode::kIommuFault);
  EXPECT_EQ(gpu->RunKernel(machine_.get(), framebuf.base, key_slot, 8, 0).code(),
            ErrorCode::kIommuFault);
  // Hardware state still a projection of the capability tree.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

}  // namespace
}  // namespace tyche
