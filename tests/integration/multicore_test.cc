// Copyright 2026 The Tyche Reproduction Authors.
// Multi-core interleavings: revocation must take effect on EVERY core a
// domain occupies (stale-TLB shootdown), per-core transition stacks stay
// independent, and concurrent tenants stay confined.

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class MulticoreTest : public BootedMachineTest {
 protected:
  // A sealed domain with `cores` shared and a window granted.
  Result<Enclave> MakeTenant(const std::string& name, uint64_t offset,
                             const std::vector<CoreId>& cores) {
    const TycheImage image = TycheImage::MakeDemo(name, 2 * kPageSize, 4 * kPageSize);
    LoadOptions load;
    load.base = Scratch(offset, 0).base;
    load.size = kMiB;
    load.cores = cores;
    for (const CoreId core : cores) {
      load.core_caps.push_back(OsCoreCap(core));
    }
    return Enclave::Create(monitor_.get(), 0, image, load);
  }
};

TEST_F(MulticoreTest, RevocationShootsDownEveryOccupiedCore) {
  auto tenant = MakeTenant("multi", kMiB, {1, 2});
  ASSERT_TRUE(tenant.ok());
  const AddrRange shared{tenant->base() + 2 * kPageSize, 4 * kPageSize};

  // The tenant runs on BOTH cores and warms both TLBs on the shared pages.
  ASSERT_TRUE(tenant->Enter(1).ok());
  ASSERT_TRUE(tenant->Enter(2).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(1, shared.base, 1).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(2, shared.base + kPageSize, 2).ok());

  // The OS revokes the tenant's shared segment from core 0.
  CapId victim = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == tenant->domain() && cap.kind == ResourceKind::kMemory &&
        cap.range == shared) {
      victim = cap.id;
    }
  });
  ASSERT_NE(victim, kInvalidCap);
  ASSERT_TRUE(monitor_->Revoke(0, victim).ok());

  // BOTH cores lose the access immediately -- no stale translations.
  EXPECT_FALSE(machine_->CheckedRead64(1, shared.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(2, shared.base).ok());
  // The tenant's private memory still works on both cores.
  EXPECT_TRUE(machine_->CheckedRead64(1, tenant->base()).ok());
  EXPECT_TRUE(machine_->CheckedRead64(2, tenant->base()).ok());
  ASSERT_TRUE(tenant->Exit(2).ok());
  ASSERT_TRUE(tenant->Exit(1).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(MulticoreTest, ConcurrentTenantsStayConfined) {
  auto a = MakeTenant("tenant-a", kMiB, {1});
  auto b = MakeTenant("tenant-b", 4 * kMiB, {2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Enter(1).ok());
  ASSERT_TRUE(b->Enter(2).ok());
  // Interleave accesses: each core sees its own tenant's world only.
  for (int round = 0; round < 8; ++round) {
    EXPECT_TRUE(machine_->CheckedWrite64(1, a->base(), round).ok());
    EXPECT_TRUE(machine_->CheckedWrite64(2, b->base(), round).ok());
    EXPECT_FALSE(machine_->CheckedRead64(1, b->base()).ok());
    EXPECT_FALSE(machine_->CheckedRead64(2, a->base()).ok());
  }
  ASSERT_TRUE(a->Exit(1).ok());
  ASSERT_TRUE(b->Exit(2).ok());
}

TEST_F(MulticoreTest, TransitionStacksArePerCore) {
  auto a = MakeTenant("stack-a", kMiB, {1, 2});
  ASSERT_TRUE(a.ok());
  // Enter on core 1 only; returning on core 2 must fail (nothing pushed).
  ASSERT_TRUE(a->Enter(1).ok());
  EXPECT_EQ(monitor_->ReturnFromDomain(2).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(monitor_->CurrentDomain(1), a->domain());
  EXPECT_EQ(monitor_->CurrentDomain(2), os_domain_);
  ASSERT_TRUE(a->Exit(1).ok());
}

TEST_F(MulticoreTest, DestroyRefusedWhileOnAnyCore) {
  auto a = MakeTenant("sticky", kMiB, {1, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Enter(1).ok());
  ASSERT_TRUE(a->Enter(2).ok());
  EXPECT_EQ(monitor_->DestroyDomain(0, a->handle()).code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(a->Exit(2).ok());
  EXPECT_EQ(monitor_->DestroyDomain(0, a->handle()).code(),
            ErrorCode::kFailedPrecondition);  // still on core 1
  ASSERT_TRUE(a->Exit(1).ok());
  EXPECT_TRUE(monitor_->DestroyDomain(0, a->handle()).ok());
}

TEST_F(MulticoreTest, FastPathIsPerCoreArming) {
  auto a = MakeTenant("fast", kMiB, {1, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->EnableFastCalls(1).ok());
  // Armed on core 1 only: core 2 must still take the trap path.
  EXPECT_TRUE(monitor_->FastTransition(1, a->domain()).ok());
  EXPECT_TRUE(monitor_->FastReturn(1).ok());
  EXPECT_EQ(monitor_->FastTransition(2, a->domain()).code(),
            ErrorCode::kTransitionDenied);
  EXPECT_TRUE(a->Enter(2).ok());  // trap path works
  EXPECT_TRUE(a->Exit(2).ok());
}

}  // namespace
}  // namespace tyche
