// Copyright 2026 The Tyche Reproduction Authors.
// Composition and nesting: the paper's central API claim is that ONE
// mechanism covers sandboxes, enclaves and confidential VMs, "including
// arbitrary nesting" (§3.5). These tests compose the abstractions in shapes
// no prior point solution supports.

#include <gtest/gtest.h>

#include "src/tyche/confidential_vm.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class NestingTest : public BootedMachineTest {
 protected:
  NestingTest() : BootedMachineTest(FixtureOptions{.memory_bytes = 256ull << 20}) {}
};

TEST_F(NestingTest, DeepEnclaveChain) {
  // enclave_0 contains enclave_1 contains enclave_2 ... to depth 5 (SGX
  // supports depth 0). Each level carves half of its heap for the child.
  const uint64_t top_size = 32 * kMiB;
  const TycheImage image = TycheImage::MakeDemo("level", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(kMiB, 0).base;
  options.size = top_size;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto current = Enclave::Create(monitor_.get(), 0, image, options);
  ASSERT_TRUE(current.ok());

  std::vector<Enclave> chain;
  chain.push_back(std::move(*current));
  uint64_t size = top_size;
  for (int depth = 1; depth <= 5; ++depth) {
    ASSERT_TRUE(chain.back().Enter(1).ok());
    size /= 2;
    const uint64_t child_base = chain.back().base() + chain.back().size() - size;
    auto child = chain.back().SpawnNested(1, image, child_base, size, {1});
    ASSERT_TRUE(child.ok()) << "depth " << depth << ": " << child.status().ToString();
    chain.push_back(std::move(*child));
  }
  // We are now 5 transitions deep (each SpawnNested left us inside the
  // parent). Verify the chain: each level's memory is invisible to every
  // ANCESTOR level and to the OS.
  EXPECT_EQ(monitor_->CurrentDomain(1), chain[4].domain());
  // Enter the innermost.
  ASSERT_TRUE(chain[5].Enter(1).ok());
  EXPECT_TRUE(machine_->CheckedWrite64(1, chain[5].base() + kPageSize, 55).ok());
  // Unwind all six levels.
  for (int depth = 5; depth >= 1; --depth) {
    ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  }
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  EXPECT_EQ(monitor_->CurrentDomain(1), os_domain_);
  // The OS sees none of the chain's memory.
  for (const Enclave& level : chain) {
    EXPECT_FALSE(machine_->CheckedRead64(0, level.base() + kPageSize).ok());
  }
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  EXPECT_EQ(monitor_->num_domains_alive(), 1u + 6u);
}

TEST_F(NestingTest, EnclaveInsideConfidentialVm) {
  // A confidential VM whose guest spawns an enclave INSIDE the VM: the
  // "combine and nest" case hardware TEEs struggle with (SGX inside SEV
  // does not compose).
  TycheImage guest("guest-kernel");
  ImageSegment kernel;
  kernel.name = "kernel";
  kernel.offset = 0;
  kernel.size = 4 * kPageSize;
  kernel.perms = Perms(Perms::kRWX);
  kernel.measured = true;
  kernel.data.assign(100, 0x42);
  ASSERT_TRUE(guest.AddSegment(std::move(kernel)).ok());
  guest.set_entry_offset(0);

  ConfidentialVmOptions vm_options;
  vm_options.base = Scratch(64 * kMiB, 0).base;
  vm_options.size = 64 * kMiB;
  vm_options.cores = {1, 2};
  vm_options.core_caps = {OsCoreCap(1), OsCoreCap(2)};
  auto vm = ConfidentialVm::Create(monitor_.get(), 0, guest, vm_options);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();

  // Boot a vCPU; the guest kernel creates an enclave out of guest memory.
  ASSERT_TRUE(vm->StartVcpu(1).ok());
  const DomainId guest_domain = monitor_->CurrentDomain(1);
  const TycheImage enclave_image = TycheImage::MakeDemo("guest-enclave", kPageSize, 0);
  LoadOptions enclave_options;
  enclave_options.base = vm_options.base + 32 * kMiB;
  enclave_options.size = 2 * kMiB;
  enclave_options.cores = {1};
  enclave_options.core_caps = {
      *FindUnitCap(*monitor_, guest_domain, ResourceKind::kCpuCore, 1)};
  auto enclave = Enclave::Create(monitor_.get(), 1, enclave_image, enclave_options);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  // Now: host can read nothing of the VM; the VM can read nothing of the
  // enclave; the enclave is attestable on its own.
  EXPECT_FALSE(machine_->CheckedRead64(0, vm_options.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, enclave_options.base).ok());
  const auto report = monitor_->AttestDomain(1, enclave->handle(), 9);
  ASSERT_TRUE(report.ok());
  const auto golden = ComputeExpectedMeasurement(enclave_image, enclave_options.base,
                                                 enclave_options.size,
                                                 enclave_options.cores);
  EXPECT_EQ(report->measurement, *golden);

  // vCPU 2 still boots into the VM (the enclave took core 1 only as a
  // SHARED resource; the VM keeps running).
  ASSERT_TRUE(vm->StartVcpu(2).ok());
  EXPECT_EQ(monitor_->CurrentDomain(2), vm->domain());
  ASSERT_TRUE(vm->StopVcpu(2).ok());
  ASSERT_TRUE(vm->StopVcpu(1).ok());
}

TEST_F(NestingTest, SandboxInsideEnclave) {
  // An enclave distrusting one of ITS OWN libraries sandboxes it: the
  // compartmentalization and confidential-computing abstractions compose.
  const TycheImage image = TycheImage::MakeDemo("app-enclave", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(160 * kMiB, 0).base;
  options.size = 8 * kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto enclave = Enclave::Create(monitor_.get(), 0, image, options);
  ASSERT_TRUE(enclave.ok());

  ASSERT_TRUE(enclave->Enter(1).ok());
  const DomainId enclave_domain = monitor_->CurrentDomain(1);
  SandboxOptions sandbox_options;
  const AddrRange lib_code{enclave->base() + 4 * kMiB, 64 * 1024};
  sandbox_options.regions = {{lib_code, Perms(Perms::kRX)}};
  sandbox_options.entry = lib_code.base;
  sandbox_options.cores = {1};
  sandbox_options.core_caps = {
      *FindUnitCap(*monitor_, enclave_domain, ResourceKind::kCpuCore, 1)};
  auto sandbox = Sandbox::Create(monitor_.get(), 1, "untrusted-lib", sandbox_options);
  ASSERT_TRUE(sandbox.ok()) << sandbox.status().ToString();

  // The sandboxed lib sees ONLY its code window -- not the rest of the
  // enclave, not the OS.
  ASSERT_TRUE(sandbox->Enter(1).ok());
  EXPECT_TRUE(machine_->CheckedFetch(1, lib_code.base, 16).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, enclave->base()).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, managed_.base).ok());
  ASSERT_TRUE(sandbox->Exit(1).ok());
  // The enclave still sees the window (sandbox regions are shared).
  EXPECT_TRUE(machine_->CheckedRead64(1, lib_code.base).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

}  // namespace
}  // namespace tyche
