// Copyright 2026 The Tyche Reproduction Authors.
// Failure injection: resource exhaustion and hostile inputs at every layer.
// The requirement is graceful degradation -- a typed error, a consistent
// capability tree, and hardware state that still passes the audit.

#include <gtest/gtest.h>

#include "src/tyche/channel.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class FailureInjectionTest : public BootedMachineTest {};

TEST_F(FailureInjectionTest, MetadataPoolExhaustionIsGraceful) {
  // A tiny monitor reservation: EPT frames run out after a few domains.
  MachineConfig config;
  config.memory_bytes = 512ull << 20;
  Machine machine(config);
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = monitor_image_;
  params.monitor_memory_bytes = 1ull << 20;  // 64 KiB image + ~240 frames
  auto outcome = MeasuredBoot(&machine, params);
  // Booting itself needs frames for the OS's EPT over ~508 MiB: with a
  // 1 MiB reservation this must fail CLEANLY, not crash.
  if (!outcome.ok()) {
    EXPECT_EQ(outcome.status().code(), ErrorCode::kResourceExhausted);
    return;
  }
  // If it booted, keep creating domains until the pool runs dry.
  Monitor& monitor = *outcome->monitor;
  Status last = OkStatus();
  for (int i = 0; i < 4096 && last.ok(); ++i) {
    last = monitor.CreateDomain(0, "eater").status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(*monitor.AuditHardwareConsistency());
}

TEST_F(FailureInjectionTest, BootRejectsBadParameters) {
  MachineConfig config;
  config.memory_bytes = 16ull << 20;
  {
    Machine machine(config);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    params.monitor_memory_bytes = 3 * 1024;  // not page aligned
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
  {
    Machine machine(config);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    params.monitor_memory_bytes = 64ull << 20;  // larger than the machine
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
  {
    Machine machine(config);
    const std::vector<uint8_t> huge(8ull << 20, 1);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = huge;  // image larger than its reservation
    params.monitor_memory_bytes = 4ull << 20;
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
}

TEST_F(FailureInjectionTest, ApiRejectsForeignAndStaleHandles) {
  const auto created = monitor_->CreateDomain(0, "victim");
  ASSERT_TRUE(created.ok());
  // A different domain cannot use the OS's handle.
  const AddrRange window = Scratch(kMiB, kMiB);
  ASSERT_TRUE(monitor_
                  ->GrantMemory(0, OsMemCap(window), created->handle, window,
                                Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), created->handle, CapRights{},
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, window.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, created->handle).ok());
  // Inside the victim: the OS's handle id is meaningless here.
  EXPECT_EQ(monitor_->Seal(1, created->handle).code(), ErrorCode::kCapabilityNotOwned);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // Stale handle after destroy.
  ASSERT_TRUE(monitor_->DestroyDomain(0, created->handle).ok());
  EXPECT_FALSE(monitor_->Transition(1, created->handle).ok());
  EXPECT_FALSE(monitor_->Seal(0, created->handle).ok());
  EXPECT_FALSE(monitor_->DestroyDomain(0, created->handle).ok());
}

TEST_F(FailureInjectionTest, ZeroAndOverflowRanges) {
  const auto created = monitor_->CreateDomain(0, "d");
  ASSERT_TRUE(created.ok());
  const CapId os_mem = OsMemCap(Scratch(kMiB, kMiB));
  // Zero-size share.
  EXPECT_FALSE(monitor_
                   ->ShareMemory(0, os_mem, created->handle, AddrRange{Scratch(0, 0).base, 0},
                                 Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                   .ok());
  // Range whose end overflows uint64.
  EXPECT_FALSE(monitor_
                   ->ShareMemory(0, os_mem, created->handle,
                                 AddrRange{~0ull - kPageSize + 1, 2 * kPageSize},
                                 Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                   .ok());
  // Memory accesses beyond physical memory.
  EXPECT_FALSE(machine_->CheckedRead64(0, machine_->memory().size()).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, ~0ull - 4).ok());
}

TEST_F(FailureInjectionTest, TransitionStackUnderflowAndCoreBounds) {
  EXPECT_EQ(monitor_->ReturnFromDomain(0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(monitor_->Transition(99, CapId{1}).ok());  // bogus core
  EXPECT_FALSE(monitor_->FastReturn(1).ok());
}

TEST_F(FailureInjectionTest, LoaderRejectsBrokenInputs) {
  TycheImage image = TycheImage::MakeDemo("broken", 2 * kPageSize, 0);
  // Entry point outside any segment region is caught at seal time.
  image.set_entry_offset(64 * kMiB);
  LoadOptions load;
  load.base = Scratch(kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {OsCoreCap(1)};
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, image, load).ok());
  // Unaligned base.
  TycheImage good = TycheImage::MakeDemo("good", kPageSize, 0);
  load.base += 7;
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, good, load).ok());
  // Region overlapping memory another domain already owns exclusively.
  load.base = Scratch(2 * kMiB, 0).base;
  const auto first = LoadImage(monitor_.get(), 0, good, load);
  ASSERT_TRUE(first.ok());
  const auto second = LoadImage(monitor_.get(), 0, good, load);
  EXPECT_FALSE(second.ok());
  // After all the failures: tree and hardware still agree.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(FailureInjectionTest, ChannelSurvivesHostileCounters) {
  // A malicious peer scribbles garbage into the channel's control words;
  // the other side must fail cleanly, not read out of bounds.
  const AddrRange region = Scratch(8 * kMiB, 2 * kPageSize);
  auto channel = Channel::Create(monitor_.get(), 0, region);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(channel->Send(0, std::vector<uint8_t>{1, 2, 3}).ok());
  // Corrupt the length prefix to something absurd.
  ASSERT_TRUE(machine_->CheckedWrite64(0, region.base + kPageSize, ~0ull).ok());
  const auto received = channel->Recv(0);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), ErrorCode::kInternal);
}

TEST_F(FailureInjectionTest, PartialLoadFailureLeavesConsistentState) {
  // Loading with a core capability that is not the caller's fails midway
  // (after the domain exists, before sealing); the tree must stay sane and
  // subsequent loads at the same address must work.
  const TycheImage image = TycheImage::MakeDemo("partial", kPageSize, 0);
  LoadOptions load;
  load.base = Scratch(16 * kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {CapId{424242}};  // bogus
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, image, load).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  // The leaked half-built domain holds the range; the OS can still operate
  // elsewhere.
  load.base = Scratch(18 * kMiB, 0).base;
  load.core_caps = {OsCoreCap(1)};
  EXPECT_TRUE(LoadImage(monitor_.get(), 0, image, load).ok());
}

}  // namespace
}  // namespace tyche
