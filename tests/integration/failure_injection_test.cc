// Copyright 2026 The Tyche Reproduction Authors.
// Failure injection: resource exhaustion and hostile inputs at every layer.
// The requirement is graceful degradation -- a typed error, a consistent
// capability tree, and hardware state that still passes the audit.

#include <gtest/gtest.h>

#include "src/monitor/attestation.h"
#include "src/monitor/vtx_backend.h"
#include "src/support/faults.h"
#include "src/tyche/channel.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class FailureInjectionTest : public BootedMachineTest {
 protected:
  // A circular sharing loop: OS -> A -> B -> A over one scratch window.
  // Returns the root share (OS -> A); revoking it cascades through the loop.
  struct Loop {
    DomainId domain_a = kInvalidDomain;
    DomainId domain_b = kInvalidDomain;
    CapId handle_a = kInvalidCap;
    CapId handle_b = kInvalidCap;
    CapId root_share = kInvalidCap;
    AddrRange window;
  };

  Loop BuildCircularLoop() {
    Loop loop;
    const auto a = monitor_->CreateDomain(0, "a");
    const auto b = monitor_->CreateDomain(0, "b");
    EXPECT_TRUE(a.ok() && b.ok());
    loop.domain_a = a->domain;
    loop.domain_b = b->domain;
    loop.handle_a = a->handle;
    loop.handle_b = b->handle;
    const auto b_for_a = monitor_->ShareUnit(0, loop.handle_b, loop.handle_a,
                                             CapRights(CapRights::kAll), RevocationPolicy{});
    const auto a_for_b = monitor_->ShareUnit(0, loop.handle_a, loop.handle_b,
                                             CapRights(CapRights::kAll), RevocationPolicy{});
    EXPECT_TRUE(b_for_a.ok() && a_for_b.ok());

    loop.window = Scratch(kMiB, 16 * kPageSize);
    const auto to_a = monitor_->ShareMemory(0, OsMemCap(loop.window), loop.handle_a,
                                            loop.window, Perms(Perms::kRW),
                                            CapRights(CapRights::kAll), RevocationPolicy{});
    EXPECT_TRUE(to_a.ok());
    loop.root_share = *to_a;
    machine_->cpu(1).set_current_domain(loop.domain_a);
    const auto to_b = monitor_->ShareMemory(
        1, *to_a, *b_for_a, AddrRange{loop.window.base, 8 * kPageSize},
        Perms(Perms::kRW), CapRights(CapRights::kAll), RevocationPolicy{});
    EXPECT_TRUE(to_b.ok());
    machine_->cpu(2).set_current_domain(loop.domain_b);
    const auto back_to_a = monitor_->ShareMemory(
        2, *to_b, *a_for_b, AddrRange{loop.window.base, 4 * kPageSize},
        Perms(Perms::kRead), CapRights{}, RevocationPolicy{});
    EXPECT_TRUE(back_to_a.ok());
    machine_->cpu(1).set_current_domain(os_domain_);
    machine_->cpu(2).set_current_domain(os_domain_);
    return loop;
  }

  void VerifyJournalAgainstLiveGraph() {
    const TelemetrySnapshot snapshot = monitor_->DumpTelemetry();
    const Status verified = RemoteVerifier::VerifyJournal(
        monitor_->ExportJournal(), monitor_->public_key(),
        &snapshot.capability_graph_json);
    EXPECT_TRUE(verified.ok()) << verified.ToString();
  }
};

TEST_F(FailureInjectionTest, MetadataPoolExhaustionIsGraceful) {
  // A tiny monitor reservation: EPT frames run out after a few domains.
  MachineConfig config;
  config.memory_bytes = 512ull << 20;
  Machine machine(config);
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = monitor_image_;
  params.monitor_memory_bytes = 1ull << 20;  // 64 KiB image + ~240 frames
  auto outcome = MeasuredBoot(&machine, params);
  // Booting itself needs frames for the OS's EPT over ~508 MiB: with a
  // 1 MiB reservation this must fail CLEANLY, not crash.
  if (!outcome.ok()) {
    EXPECT_EQ(outcome.status().code(), ErrorCode::kResourceExhausted);
    return;
  }
  // If it booted, keep creating domains until the pool runs dry.
  Monitor& monitor = *outcome->monitor;
  Status last = OkStatus();
  for (int i = 0; i < 4096 && last.ok(); ++i) {
    last = monitor.CreateDomain(0, "eater").status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(*monitor.AuditHardwareConsistency());
}

TEST_F(FailureInjectionTest, BootRejectsBadParameters) {
  MachineConfig config;
  config.memory_bytes = 16ull << 20;
  {
    Machine machine(config);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    params.monitor_memory_bytes = 3 * 1024;  // not page aligned
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
  {
    Machine machine(config);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    params.monitor_memory_bytes = 64ull << 20;  // larger than the machine
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
  {
    Machine machine(config);
    const std::vector<uint8_t> huge(8ull << 20, 1);
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = huge;  // image larger than its reservation
    params.monitor_memory_bytes = 4ull << 20;
    EXPECT_FALSE(MeasuredBoot(&machine, params).ok());
  }
}

TEST_F(FailureInjectionTest, ApiRejectsForeignAndStaleHandles) {
  const auto created = monitor_->CreateDomain(0, "victim");
  ASSERT_TRUE(created.ok());
  // A different domain cannot use the OS's handle.
  const AddrRange window = Scratch(kMiB, kMiB);
  ASSERT_TRUE(monitor_
                  ->GrantMemory(0, OsMemCap(window), created->handle, window,
                                Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), created->handle, CapRights{},
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, window.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, created->handle).ok());
  // Inside the victim: the OS's handle id is meaningless here.
  EXPECT_EQ(monitor_->Seal(1, created->handle).code(), ErrorCode::kCapabilityNotOwned);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // Stale handle after destroy.
  ASSERT_TRUE(monitor_->DestroyDomain(0, created->handle).ok());
  EXPECT_FALSE(monitor_->Transition(1, created->handle).ok());
  EXPECT_FALSE(monitor_->Seal(0, created->handle).ok());
  EXPECT_FALSE(monitor_->DestroyDomain(0, created->handle).ok());
}

TEST_F(FailureInjectionTest, ZeroAndOverflowRanges) {
  const auto created = monitor_->CreateDomain(0, "d");
  ASSERT_TRUE(created.ok());
  const CapId os_mem = OsMemCap(Scratch(kMiB, kMiB));
  // Zero-size share.
  EXPECT_FALSE(monitor_
                   ->ShareMemory(0, os_mem, created->handle, AddrRange{Scratch(0, 0).base, 0},
                                 Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                   .ok());
  // Range whose end overflows uint64.
  EXPECT_FALSE(monitor_
                   ->ShareMemory(0, os_mem, created->handle,
                                 AddrRange{~0ull - kPageSize + 1, 2 * kPageSize},
                                 Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                   .ok());
  // Memory accesses beyond physical memory.
  EXPECT_FALSE(machine_->CheckedRead64(0, machine_->memory().size()).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, ~0ull - 4).ok());
}

TEST_F(FailureInjectionTest, TransitionStackUnderflowAndCoreBounds) {
  EXPECT_EQ(monitor_->ReturnFromDomain(0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(monitor_->Transition(99, CapId{1}).ok());  // bogus core
  EXPECT_FALSE(monitor_->FastReturn(1).ok());
}

TEST_F(FailureInjectionTest, LoaderRejectsBrokenInputs) {
  TycheImage image = TycheImage::MakeDemo("broken", 2 * kPageSize, 0);
  // Entry point outside any segment region is caught at seal time.
  image.set_entry_offset(64 * kMiB);
  LoadOptions load;
  load.base = Scratch(kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {OsCoreCap(1)};
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, image, load).ok());
  // Unaligned base.
  TycheImage good = TycheImage::MakeDemo("good", kPageSize, 0);
  load.base += 7;
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, good, load).ok());
  // Region overlapping memory another domain already owns exclusively.
  load.base = Scratch(2 * kMiB, 0).base;
  const auto first = LoadImage(monitor_.get(), 0, good, load);
  ASSERT_TRUE(first.ok());
  const auto second = LoadImage(monitor_.get(), 0, good, load);
  EXPECT_FALSE(second.ok());
  // After all the failures: tree and hardware still agree.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(FailureInjectionTest, RevokeCascadeUnderBackendFailureNeverTearsState) {
  const Loop loop = BuildCircularLoop();
  {
    // The first EPT sync of the cascade's effect application fails.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kVtxSyncMemory, /*trigger=*/1));
    const Status revoked = monitor_->Revoke(0, loop.root_share);
    // Revocation is a cleanup guarantee (§3.2): it is never rolled back. The
    // backend failure surfaces as the typed injected error instead.
    EXPECT_EQ(revoked.code(), ErrorCode::kAccessViolation) << revoked.ToString();
  }
  // The tree committed: the whole loop is gone for BOTH domains.
  EXPECT_TRUE(monitor_->engine().EffectivePerms(loop.domain_a, loop.window.base).empty());
  EXPECT_TRUE(monitor_->engine().EffectivePerms(loop.domain_b, loop.window.base).empty());
  // The backend fell back to its fail-safe (deny) state for the domain whose
  // sync was torn: hardware enforces a subset of the tree, so the audit and
  // the offline journal replay both still hold.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  VerifyJournalAgainstLiveGraph();

  // Liveness: a later successful operation repairs enforcement fully.
  const AddrRange fresh{loop.window.base, 4 * kPageSize};
  const auto reshared = monitor_->ShareMemory(0, OsMemCap(loop.window), loop.handle_a,
                                              fresh, Perms(Perms::kRW),
                                              CapRights(CapRights::kAll), RevocationPolicy{});
  ASSERT_TRUE(reshared.ok()) << reshared.status().ToString();
  auto* backend = static_cast<VtxBackend*>(&monitor_->backend());
  EXPECT_FALSE(backend->Degraded(loop.domain_a));
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(FailureInjectionTest, DestroyDomainUnderBackendFailureStillPurges) {
  const Loop loop = BuildCircularLoop();
  Status destroyed = OkStatus();
  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kVtxSyncMemory, /*trigger=*/1));
    destroyed = monitor_->DestroyDomain(0, loop.handle_b);
  }
  // The purge is the commit point: B is gone and its handle is stale, even
  // though the backend reported a (typed) failure applying the effects.
  EXPECT_EQ(destroyed.code(), ErrorCode::kAccessViolation) << destroyed.ToString();
  EXPECT_FALSE(monitor_->engine().IsRegistered(loop.domain_b));
  EXPECT_FALSE(monitor_->DestroyDomain(0, loop.handle_b).ok());
  // A keeps what it holds independently of B; what it received from B died
  // with the purge.
  EXPECT_FALSE(monitor_->engine().EffectivePerms(loop.domain_a, loop.window.base).empty());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  VerifyJournalAgainstLiveGraph();

  // The other domain can still be destroyed cleanly afterwards.
  EXPECT_TRUE(monitor_->DestroyDomain(0, loop.handle_a).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  VerifyJournalAgainstLiveGraph();
}

TEST_F(FailureInjectionTest, ShareRollbackRestoresTreeAndJournalReplays) {
  const Loop loop = BuildCircularLoop();
  const auto before = monitor_->engine().DomainCaps(loop.domain_b).size();
  const AddrRange extra = Scratch(4 * kMiB, 4 * kPageSize);
  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kVtxSyncMemory, /*trigger=*/1));
    const auto shared = monitor_->ShareMemory(0, OsMemCap(extra), loop.handle_b, extra,
                                              Perms(Perms::kRW), CapRights(CapRights::kAll),
                                              RevocationPolicy{});
    // The share is transactional: backend failure -> typed error AND the
    // capability-tree mutation is rolled back.
    EXPECT_EQ(shared.status().code(), ErrorCode::kAccessViolation);
  }
  EXPECT_EQ(monitor_->engine().DomainCaps(loop.domain_b).size(), before);
  EXPECT_TRUE(monitor_->engine().EffectivePerms(loop.domain_b, extra.base).empty());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  VerifyJournalAgainstLiveGraph();
}

TEST_F(FailureInjectionTest, ChannelSurvivesHostileCounters) {
  // A malicious peer scribbles garbage into the channel's control words;
  // the other side must fail cleanly, not read out of bounds.
  const AddrRange region = Scratch(8 * kMiB, 2 * kPageSize);
  auto channel = Channel::Create(monitor_.get(), 0, region);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(channel->Send(0, std::vector<uint8_t>{1, 2, 3}).ok());
  // Corrupt the length prefix to something absurd.
  ASSERT_TRUE(machine_->CheckedWrite64(0, region.base + kPageSize, ~0ull).ok());
  const auto received = channel->Recv(0);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), ErrorCode::kInternal);
}

TEST_F(FailureInjectionTest, PartialLoadFailureLeavesConsistentState) {
  // Loading with a core capability that is not the caller's fails midway
  // (after the domain exists, before sealing); the tree must stay sane and
  // subsequent loads at the same address must work.
  const TycheImage image = TycheImage::MakeDemo("partial", kPageSize, 0);
  LoadOptions load;
  load.base = Scratch(16 * kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {CapId{424242}};  // bogus
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, image, load).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  // The leaked half-built domain holds the range; the OS can still operate
  // elsewhere.
  load.base = Scratch(18 * kMiB, 0).base;
  load.core_caps = {OsCoreCap(1)};
  EXPECT_TRUE(LoadImage(monitor_.get(), 0, image, load).ok());
}

}  // namespace
}  // namespace tyche
