// Copyright 2026 The Tyche Reproduction Authors.
// Fleet fault sweep (ISSUE 9 tentpole deliverable): every fleet fault site —
// monitor crash, front-end response blackhole, breaker-probe loss, cache
// poisoning, queue overflow — injected at its first / middle / last
// occurrence within a fixed workload, on both isolation backends, plus a
// logged-seed randomized soak. The workload itself carries the invariants:
//
//   correctness   a verification NEVER returns success with a measurement
//                 other than the service's pinned golden one — not under
//                 crashes, poisoned reports, stale epochs, or overload;
//   availability  every request terminates within its deadline with either
//                 the correct verdict or a typed retryable error
//                 (kUnavailable / kDeadlineExceeded) or typed kOverloaded —
//                 no hangs, no silent drops;
//   recovery      after the storm the fleet settles back to full
//                 availability: every service re-attests green (on its
//                 replica if its home crashed), and the failed-over pair's
//                 journals splice into one verifiable history.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fleet/frontend.h"
#include "src/fleet/zipf.h"
#include "src/support/faults.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

constexpr uint64_t kWorkloadSeed = 0xC11E47;

bool TypedAvailabilityError(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kOverloaded ||
         code == ErrorCode::kDeadlineExceeded;
}

struct FleetWorld {
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<VerificationFrontEnd> frontend;
  std::vector<Digest> golden;          // pinned at install; NEVER changes
  std::vector<uint32_t> original_home;
};

std::unique_ptr<FleetWorld> MakeFleetWorld(IsaArch arch) {
  auto world = std::make_unique<FleetWorld>();
  FleetOptions fleet_options;
  fleet_options.arch = arch;
  world->fleet = Fleet::Create(fleet_options);
  if (world->fleet == nullptr) {
    return nullptr;
  }
  FrontEndOptions frontend_options;
  frontend_options.queue_capacity = 8;
  world->frontend = std::make_unique<VerificationFrontEnd>(world->fleet.get(),
                                                           frontend_options);
  for (uint32_t s = 0; s < world->fleet->num_services(); ++s) {
    world->golden.push_back(world->fleet->service(s).measurement);
    world->original_home.push_back(world->fleet->service(s).node);
  }
  return world;
}

// One checked verification: terminates within the deadline, and the verdict
// is either the golden measurement or a typed availability error.
bool VerifyChecked(FleetWorld* world, uint32_t service, uint64_t nonce) {
  const FrontEndOptions defaults;
  const uint64_t before = world->fleet->clock().now_ns;
  const auto verdict = world->frontend->Verify({service, nonce});
  const uint64_t elapsed = world->fleet->clock().now_ns - before;
  EXPECT_LE(elapsed, defaults.default_deadline_ns + 2 * defaults.poll_step_ns)
      << "service " << service << ": latency not bounded by the deadline";
  if (verdict.ok()) {
    EXPECT_EQ(verdict->measurement, world->golden[service])
        << "service " << service
        << ": verification SUCCEEDED WITH A WRONG MEASUREMENT";
    return true;
  }
  EXPECT_TRUE(TypedAvailabilityError(verdict.code()))
      << "service " << service
      << ": untyped failure: " << verdict.status().ToString();
  return false;
}

// The fixed workload every counting run, grid trial, and soak trial
// executes. Three phases — steady Zipf load, a scripted node crash under
// continued load, an overload burst through bounded admission — then a
// settle phase that demands full availability back.
void RunWorkload(FleetWorld* world) {
  Prng load(kWorkloadSeed);
  const ZipfPicker zipf(world->fleet->num_services(), 1.1);

  // Phase A: steady state. The Zipf head gets hot and populates the cache.
  for (int i = 0; i < 12; ++i) {
    VerifyChecked(world, zipf.Pick(load), 0xA000 + i);
  }

  // Phase B: node 0 dies mid-fleet (scripted, so every trial — including
  // the clean counting run — exercises breaker trips, half-open probes, and
  // the failover ladder). Load continues across all services meanwhile.
  world->fleet->node(0)->Crash();
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t s = 0; s < world->fleet->num_services(); ++s) {
      VerifyChecked(world, s, 0xB000 + pass * 0x100 + s);
    }
  }

  // Phase C: overload burst against a cold cache. Admission must bound the
  // queue, shed with typed kOverloaded, and still answer cache-servable
  // work inline. (The cache is emptied first so the burst actually queues.)
  for (uint32_t n = 0; n < world->fleet->num_nodes(); ++n) {
    world->frontend->cache().InvalidateEpochsBelow(n, ~0ull);
  }
  const size_t burst = 2 * 8 /* world queue_capacity */ + 4;
  size_t enqueued = 0;
  size_t shed = 0;
  for (size_t i = 0; i < burst; ++i) {
    const uint32_t service = zipf.Pick(load);
    const auto outcome =
        world->frontend->Submit({service, 0xC000 + static_cast<uint64_t>(i)});
    if (!outcome.ok()) {
      EXPECT_EQ(outcome.code(), ErrorCode::kOverloaded)
          << outcome.status().ToString();
      ++shed;
      continue;
    }
    if (outcome->verdict.has_value()) {
      EXPECT_EQ(outcome->verdict->measurement, world->golden[service]);
    } else {
      EXPECT_TRUE(outcome->enqueued);
      ++enqueued;
    }
  }
  EXPECT_LE(world->frontend->queue_depth(), 8u) << "admission queue unbounded";
  EXPECT_GT(shed, 0u) << "overload burst never shed";
  const auto drained = world->frontend->DrainQueue();
  EXPECT_EQ(drained.size(), enqueued);
  for (const auto& item : drained) {
    if (item.result.ok()) {
      EXPECT_EQ(item.result->measurement, world->golden[item.request.service]);
    } else {
      EXPECT_TRUE(TypedAvailabilityError(item.result.code()))
          << item.result.status().ToString();
    }
  }

  // Settle: graceful degradation must end. Every service — including those
  // that failed over — re-attests green within a few rounds.
  bool all_ok = false;
  for (int round = 0; round < 6 && !all_ok; ++round) {
    all_ok = true;
    for (uint32_t s = 0; s < world->fleet->num_services(); ++s) {
      if (!VerifyChecked(world, s, 0x5E77 + round * 0x100 + s)) {
        all_ok = false;
      }
    }
  }
  EXPECT_TRUE(all_ok) << "fleet never settled back to full availability";

  // The scripted crash must have driven a real failover, and the journals
  // of the failed-over pair must splice into one verifiable history.
  bool moved_from_node0 = false;
  for (uint32_t s = 0; s < world->fleet->num_services(); ++s) {
    if (world->original_home[s] == 0 && world->fleet->service(s).failovers > 0) {
      moved_from_node0 = true;
    }
  }
  EXPECT_TRUE(moved_from_node0) << "crashed node's domains never failed over";
  if (moved_from_node0) {
    const Status splice = VerifyJournalSplice(
        world->fleet->node(0)->monitor()->ExportJournal(),
        world->fleet->node(1)->monitor()->ExportJournal(),
        world->fleet->node(0)->monitor()->public_key(),
        world->fleet->node(1)->monitor()->public_key());
    EXPECT_TRUE(splice.ok()) << splice.ToString();
  }
}

// Counting run: the workload with every site observing but never failing.
// Only the fleet.* sites are kept — the channel and migration sites crossed
// by the failover ladder already have their own sweep.
std::map<std::string, uint64_t> CountOccurrences(IsaArch arch) {
  auto world = MakeFleetWorld(arch);
  EXPECT_NE(world, nullptr);
  if (world == nullptr) {
    return {};
  }
  FaultInjector::Instance().StartCounting();
  RunWorkload(world.get());
  auto counts = FaultInjector::Instance().StopCounting();
  for (auto it = counts.begin(); it != counts.end();) {
    it = it->first.rfind("fleet.", 0) == 0 ? std::next(it) : counts.erase(it);
  }
  return counts;
}

// One injected trial: fresh fleet, one (site, occurrence) fault, the full
// workload, and the invariants checked after every event inside it.
void RunTrial(IsaArch arch, const std::string& site, uint64_t trigger) {
  auto world = MakeFleetWorld(arch);
  ASSERT_NE(world, nullptr);
  {
    ScopedFaultPlan scoped(FaultPlan::Single(site, trigger));
    RunWorkload(world.get());
    EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u)
        << site << "#" << trigger << " did not fire exactly once";
  }
}

void RunSweep(IsaArch arch) {
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());

  // Coverage: the clean workload reaches every fleet site, including the
  // half-open breaker probe (driven by the scripted crash) and the batched
  // drain's forgery site (driven by the phase-C overload burst).
  for (const std::string_view site :
       {faults::kFleetNodeCrash, faults::kFleetVerifyTimeout,
        faults::kFleetBreakerProbe, faults::kFleetCachePoison,
        faults::kFleetQueueOverflow, faults::kFleetBatchForge}) {
    const auto it = counts.find(std::string(site));
    ASSERT_TRUE(it != counts.end() && it->second > 0)
        << "workload never reached " << site;
  }

  uint64_t trials = 0;
  for (const auto& [site, count] : counts) {
    for (const uint64_t trigger : std::set<uint64_t>{1, (count + 1) / 2, count}) {
      SCOPED_TRACE(site + "#" + std::to_string(trigger) + "/" +
                   std::to_string(count));
      RunTrial(arch, site, trigger);
      ++trials;
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  std::printf("[ sweep ] arch=%d sites=%zu trials=%llu\n", static_cast<int>(arch),
              counts.size(), static_cast<unsigned long long>(trials));
}

// A clean run is itself a test: scripted crash -> breaker -> probe ->
// failover -> settle, with the front-end metrics telling the story.
TEST(FleetSweep, CleanWorkloadFailsOverAndSettles) {
  auto world = MakeFleetWorld(IsaArch::kX86_64);
  ASSERT_NE(world, nullptr);
  RunWorkload(world.get());
  EXPECT_GE(world->fleet->failovers(), 1u);
  EXPECT_GE(world->fleet->migrations(), 2u);
  EXPECT_GE(world->fleet->node(0)->epoch(), 1u);
  EXPECT_GE(world->frontend->failovers_triggered(), 1u);
  EXPECT_GT(world->frontend->retries(), 0u);
  EXPECT_GT(world->frontend->cache().hits(), 0u);
  EXPECT_GT(world->frontend->shed(), 0u);
  const std::string scrape = world->frontend->metrics().ExportPrometheus();
  EXPECT_NE(scrape.find("tyche_fleet_failover_total"), std::string::npos);
}

// Quota fairness under Zipf-skewed tenant load (DESIGN.md §13): the heavy
// hitter exhausts ITS OWN bucket (typed kQuotaExceeded) while light tenants
// keep being admitted — per-tenant rejection must not depend on how loud the
// other tenants are, and the shared queue never sheds (quota != overload).
TEST(FleetSweep, QuotaFairnessZipfSoak) {
  auto fleet = Fleet::Create({});
  ASSERT_NE(fleet, nullptr);
  FrontEndOptions options;
  options.tenant_quota.rate_per_sec = 100.0;
  options.tenant_quota.burst = 5.0;
  VerificationFrontEnd frontend(fleet.get(), options);

  // Warm the cache so the soak isolates admission: every submit is
  // cache-servable, the queue never fills, and the only rejection left is
  // the per-tenant quota. (Verify() is not quota-charged; Submit() is.)
  for (uint32_t s = 0; s < fleet->num_services(); ++s) {
    ASSERT_TRUE(frontend.Verify({s, 0xAA00 + s}).ok());
  }

  constexpr uint32_t kTenants = 8;
  constexpr int kRequests = 400;
  const ZipfPicker tenant_zipf(kTenants, 1.3);
  Prng prng(0x50A4F41D);
  std::vector<uint64_t> submitted(kTenants, 0);
  std::vector<uint64_t> rejected(kTenants, 0);
  uint64_t total_rejected = 0;
  bool heavy_rejected_yet = false;
  bool light_admitted_after_heavy_rejection = false;
  for (int i = 0; i < kRequests; ++i) {
    fleet->clock().Advance(1'000'000);  // 1 ms between arrivals
    const uint32_t tenant = static_cast<uint32_t>(tenant_zipf.Pick(prng));
    VerifyRequest request;
    request.service = static_cast<uint32_t>(prng.Next() % fleet->num_services());
    request.nonce = 0xD000 + static_cast<uint64_t>(i);
    request.tenant = tenant;
    ++submitted[tenant];
    const auto outcome = frontend.Submit(request);
    if (outcome.ok()) {
      EXPECT_TRUE(outcome->verdict.has_value()) << "warm cache must serve inline";
      if (heavy_rejected_yet && tenant != 0) {
        light_admitted_after_heavy_rejection = true;
      }
    } else {
      ASSERT_EQ(outcome.code(), ErrorCode::kQuotaExceeded)
          << outcome.status().ToString();
      ++rejected[tenant];
      ++total_rejected;
      if (tenant == 0) {
        heavy_rejected_yet = true;
      }
    }
  }

  // The Zipf head outruns its refill and is throttled …
  EXPECT_GT(submitted[0], submitted[kTenants - 1]) << "load was not skewed";
  EXPECT_GT(rejected[0], 0u) << "heavy hitter never throttled";
  // … while other tenants keep being admitted even while it is over quota,
  // and tenants within their refill are never rejected at all.
  EXPECT_TRUE(light_admitted_after_heavy_rejection)
      << "a light tenant was starved by the heavy hitter's rejections";
  uint32_t unthrottled_tenants = 0;
  for (uint32_t t = 0; t < kTenants; ++t) {
    if (rejected[t] == 0) {
      ++unthrottled_tenants;
    }
  }
  EXPECT_GE(unthrottled_tenants, kTenants / 2)
      << "quota rejections bled across tenants";

  EXPECT_EQ(frontend.quota_rejections(), total_rejected);
  EXPECT_EQ(frontend.shed(), 0u) << "quota exhaustion must never read as overload";
  const std::string scrape = frontend.metrics().ExportPrometheus();
  for (const char* family :
       {"tyche_fleet_tenant_admitted_total",
        "tyche_fleet_tenant_quota_exceeded_total", "tyche_fleet_tenant_tokens"}) {
    EXPECT_NE(scrape.find(family), std::string::npos) << family;
  }
}

TEST(FleetSweep, EverySiteEveryOccurrenceVtx) { RunSweep(IsaArch::kX86_64); }
TEST(FleetSweep, EverySiteEveryOccurrencePmp) { RunSweep(IsaArch::kRiscV); }

// Randomized soak: (site, occurrence) pairs sampled from the observed
// counts. The seed is printed so any failing trial replays verbatim with
// TYCHE_FAULT_SEED.
TEST(FleetSweep, RandomizedFleetSoak) {
  const IsaArch arch = IsaArch::kX86_64;
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());
  uint64_t base_seed = 0xF1EE75EED;
  if (const char* env = std::getenv("TYCHE_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  constexpr int kTrials = 10;
  std::printf("[ soak ] base_seed=0x%llx trials=%d\n",
              static_cast<unsigned long long>(base_seed), kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial) * 0x9E3779B9ull;
    const FaultPlan plan = FaultPlan::FromSeed(seed, counts);
    ASSERT_FALSE(plan.empty());
    const FaultSpec& spec = plan.specs()[0];
    SCOPED_TRACE("seed " + std::to_string(seed) + " site " + spec.site + "#" +
                 std::to_string(spec.trigger));
    RunTrial(arch, spec.site, spec.trigger);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace tyche
