// Copyright 2026 The Tyche Reproduction Authors.
// Experiment F4 (paper Figure 4): the physical-memory view with
// domain-to-region mappings and per-region reference counts. The figure
// shows (left to right): a confidential region of the crypto engine (1),
// crypto<->SaaS shared memory (2), a confidential SaaS region (1), a region
// visible to the whole stack (4), a driver<->VM shared region (2), and a
// driver-private region (1). This test reconstructs exactly that sequence.

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class Figure4Test : public BootedMachineTest {};

TEST_F(Figure4Test, ReconstructsTheFigureRefCounts) {
  // Domains standing in for the figure's actors. None needs to run; the
  // view is purely about the capability state.
  const auto crypto = monitor_->CreateDomain(0, "crypto-engine");
  const auto saas = monitor_->CreateDomain(0, "saas-app");
  const auto vm = monitor_->CreateDomain(0, "saas-vm");
  const auto driver = monitor_->CreateDomain(0, "driver");
  ASSERT_TRUE(crypto.ok());
  ASSERT_TRUE(saas.ok());
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(driver.ok());

  const uint64_t base = Scratch(16 * kMiB, 0).base;
  const AddrRange crypto_conf{base, kMiB};                  // count 1
  const AddrRange crypto_saas{base + kMiB, kMiB};          // count 2
  const AddrRange saas_conf{base + 2 * kMiB, kMiB};        // count 1
  const AddrRange all_shared{base + 3 * kMiB, kMiB};       // count 4
  const AddrRange driver_vm{base + 4 * kMiB, kMiB};        // count 2
  const AddrRange driver_conf{base + 5 * kMiB, kMiB};      // count 1

  auto grant = [&](const AddrRange& range, CapId handle) {
    const auto result = monitor_->GrantMemory(
        0, *FindMemoryCap(*monitor_, os_domain_, range), handle, range, Perms(Perms::kRW),
        CapRights(CapRights::kAll), RevocationPolicy{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };
  auto share_from = [&](DomainId owner, CoreId core, const AddrRange& range, CapId handle) {
    const auto result = monitor_->ShareMemory(
        core, *FindMemoryCap(*monitor_, owner, range), handle, range, Perms(Perms::kRW),
        CapRights(CapRights::kShare), RevocationPolicy{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };

  // Exclusive regions: granted away from the OS entirely.
  grant(crypto_conf, crypto->handle);
  grant(saas_conf, saas->handle);
  grant(driver_conf, driver->handle);
  // crypto<->saas: grant to crypto, then crypto shares with saas. Sharing
  // requires the owner to act; hand the saas handle to the crypto domain and
  // run the share from a core executing as crypto. Simpler equivalent used
  // here: grant to crypto, then OS-mediated share is impossible (the OS no
  // longer holds a capability) -- which is the point. Instead grant to
  // crypto WITHOUT sealing and let crypto share: emulate by giving crypto a
  // core and running the call as crypto.
  grant(crypto_saas, crypto->handle);
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), crypto->handle,
                              CapRights(CapRights::kShare), RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, *FindUnitCap(*monitor_, os_domain_, ResourceKind::kDomain,
                                              saas->domain),
                              crypto->handle, CapRights(CapRights::kShare),
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, crypto->handle, crypto_conf.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, crypto->handle).ok());
  const CapId saas_handle_in_crypto =
      *FindUnitCap(*monitor_, crypto->domain, ResourceKind::kDomain, saas->domain);
  share_from(crypto->domain, 1, crypto_saas, saas_handle_in_crypto);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // driver<->vm: same pattern.
  grant(driver_vm, driver->handle);
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), driver->handle, CapRights(CapRights::kShare),
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, *FindUnitCap(*monitor_, os_domain_, ResourceKind::kDomain,
                                              vm->domain),
                              driver->handle, CapRights(CapRights::kShare),
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, driver->handle, driver_vm.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, driver->handle).ok());
  const CapId vm_handle_in_driver =
      *FindUnitCap(*monitor_, driver->domain, ResourceKind::kDomain, vm->domain);
  share_from(driver->domain, 1, driver_vm, vm_handle_in_driver);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // all_shared: visible to everyone (OS keeps it, shares with all four).
  for (const CapId handle : {crypto->handle, saas->handle, vm->handle}) {
    const auto result = monitor_->ShareMemory(
        0, *FindMemoryCap(*monitor_, os_domain_, all_shared), handle, all_shared,
        Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
    ASSERT_TRUE(result.ok());
  }

  // ---- The Figure 4 assertion: region -> reference count ----
  EXPECT_EQ(monitor_->engine().MemoryRefCount(crypto_conf), 1u);
  EXPECT_EQ(monitor_->engine().MemoryRefCount(crypto_saas), 2u);
  EXPECT_EQ(monitor_->engine().MemoryRefCount(saas_conf), 1u);
  EXPECT_EQ(monitor_->engine().MemoryRefCount(all_shared), 4u);
  EXPECT_EQ(monitor_->engine().MemoryRefCount(driver_vm), 2u);
  EXPECT_EQ(monitor_->engine().MemoryRefCount(driver_conf), 1u);

  // The MemoryView (what bench_refcount_view prints) contains the same
  // sequence of counts over the scenario window, in order: 1 2 1 4 2 1.
  std::vector<uint32_t> counts;
  for (const RegionView& view : monitor_->engine().MemoryView()) {
    if (view.range.base >= base && view.range.end() <= base + 6 * kMiB) {
      counts.push_back(view.ref_count());
    }
  }
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 2, 1, 4, 2, 1}));

  // Exclusive ownership queries match the figure's colour coding.
  EXPECT_TRUE(monitor_->engine().ExclusivelyOwned(crypto->domain, crypto_conf));
  EXPECT_FALSE(monitor_->engine().ExclusivelyOwned(crypto->domain, crypto_saas));
  EXPECT_TRUE(monitor_->engine().ExclusivelyOwned(driver->domain, driver_conf));
}

}  // namespace
}  // namespace tyche
