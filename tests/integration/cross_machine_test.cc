// Copyright 2026 The Tyche Reproduction Authors.
// Cross-machine TEEs (§4.2: "providing RDMA support for Tyche-based TEEs
// running on separate machines" + "extend attestation to multi-domain
// deployments"). Two independent machines, each booted under its own
// monitor; one enclave on each; an UNTRUSTED network (both OSes see every
// byte) between their netbufs. The remote verifier checks BOTH monitors and
// BOTH enclaves, provisions a DH-established session key, and the enclaves
// exchange data the network path never sees in the clear.

#include <gtest/gtest.h>

#include "src/crypto/authenticated.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

struct Node {
  std::unique_ptr<Testbed> testbed;
  Enclave enclave;
  AddrRange netbuf;  // shared with the node's OS: the "NIC ring"

  Machine& machine() { return testbed->machine(); }
  Monitor& monitor() { return testbed->monitor(); }
};

// The network: copies bytes between the two nodes' netbufs, as a NIC+switch
// fabric would. Both operating systems (and the wire) see everything.
Status NetworkTransfer(Node* from, Node* to, uint64_t size,
                       std::vector<uint8_t>* wire_tap) {
  std::vector<uint8_t> frame(size);
  TYCHE_RETURN_IF_ERROR(from->machine().CheckedRead(0, from->netbuf.base,
                                                    std::span<uint8_t>(frame)));
  *wire_tap = frame;  // what an on-path attacker records
  return to->machine().CheckedWrite(0, to->netbuf.base, std::span<const uint8_t>(frame));
}

class CrossMachineTest : public ::testing::Test {
 protected:
  static Node MakeNode(uint8_t endorsement) {
    TestbedOptions options;
    options.memory_bytes = 64ull << 20;
    auto testbed = Testbed::Create(options);
    EXPECT_TRUE(testbed.ok());
    // Distinct endorsement seeds would come from distinct TPMs; the demo
    // machines share DemoMonitorImage (same golden monitor measurement).
    (void)endorsement;

    const TycheImage image = TycheImage::MakeDemo("peer", 2 * kPageSize, 4 * kPageSize);
    LoadOptions load;
    load.base = testbed->Scratch(kMiB);
    load.size = kMiB;
    load.cores = {1};
    load.core_caps = {*testbed->OsCoreCap(1)};
    auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
    EXPECT_TRUE(enclave.ok());
    const AddrRange netbuf{load.base + image.segments()[1].offset,
                           image.segments()[1].size};
    return Node{std::make_unique<Testbed>(std::move(*testbed)), std::move(*enclave),
                netbuf};
  }
};

TEST_F(CrossMachineTest, AttestedEncryptedTransferBetweenMachines) {
  Node a = MakeNode(1);
  Node b = MakeNode(2);

  // ---- The customer verifies BOTH deployments remotely. ----
  const TycheImage image = TycheImage::MakeDemo("peer", 2 * kPageSize, 4 * kPageSize);
  for (Node* node : {&a, &b}) {
    CustomerVerifier customer(node->machine().tpm().attestation_key(),
                              node->testbed->golden_firmware(),
                              node->testbed->golden_monitor());
    ASSERT_TRUE(customer.VerifyMonitor(*node->monitor().Identity(1), 1).ok());
    const auto report = node->enclave.Attest(0, 2);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(customer
                    .VerifyDomainAgainstImage(*report, image, node->enclave.base(),
                                              node->enclave.size(), {1}, 2)
                    .ok());
  }

  // ---- Session establishment: DH public keys travel over the untrusted
  // network; each enclave derives the same session key inside. (In a full
  // deployment the DH publics would be signed by the monitors; here the
  // customer verified both sides and the exchange models the data path.)
  const SchnorrKeyPair key_a = DeriveKeyPair(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>("enclave-a-secret"), 16));
  const SchnorrKeyPair key_b = DeriveKeyPair(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>("enclave-b-secret"), 16));
  std::vector<uint8_t> tap;
  // A publishes g^a through its netbuf.
  ASSERT_TRUE(a.enclave.Enter(1).ok());
  ASSERT_TRUE(a.machine().CheckedWrite64(1, a.netbuf.base, key_a.pub.y).ok());
  ASSERT_TRUE(a.enclave.Exit(1).ok());
  ASSERT_TRUE(NetworkTransfer(&a, &b, 8, &tap).ok());
  // B reads g^a, publishes g^b.
  ASSERT_TRUE(b.enclave.Enter(1).ok());
  const uint64_t ga = *b.machine().CheckedRead64(1, b.netbuf.base);
  const Digest session_b = DhSharedSecret(key_b.priv, SchnorrPublicKey{ga});
  ASSERT_TRUE(b.machine().CheckedWrite64(1, b.netbuf.base, key_b.pub.y).ok());
  ASSERT_TRUE(b.enclave.Exit(1).ok());
  ASSERT_TRUE(NetworkTransfer(&b, &a, 8, &tap).ok());
  ASSERT_TRUE(a.enclave.Enter(1).ok());
  const uint64_t gb = *a.machine().CheckedRead64(1, a.netbuf.base);
  const Digest session_a = DhSharedSecret(key_a.priv, SchnorrPublicKey{gb});
  ASSERT_TRUE(a.enclave.Exit(1).ok());
  ASSERT_EQ(session_a, session_b);  // both sides hold the same key

  // ---- Data path: A sends a confidential record to B. ----
  const std::string record = "patient:7261 diagnosis:classified";
  ASSERT_TRUE(a.enclave.Enter(1).ok());
  const SealedBlob frame = AeadSeal(
      session_a, /*nonce=*/1,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(record.data()),
                               record.size()));
  const std::vector<uint8_t> wire_frame = frame.Serialize();
  ASSERT_TRUE(a.machine()
                  .CheckedWrite(1, a.netbuf.base, std::span<const uint8_t>(wire_frame))
                  .ok());
  ASSERT_TRUE(a.enclave.Exit(1).ok());
  ASSERT_TRUE(NetworkTransfer(&a, &b, wire_frame.size(), &tap).ok());

  // The on-path attacker (and both OSes) recorded the frame: ciphertext.
  const std::string tap_text(tap.begin(), tap.end());
  EXPECT_EQ(tap_text.find("patient"), std::string::npos);
  EXPECT_EQ(tap_text.find("classified"), std::string::npos);

  // B decrypts inside its enclave.
  ASSERT_TRUE(b.enclave.Enter(1).ok());
  std::vector<uint8_t> received(wire_frame.size());
  ASSERT_TRUE(
      b.machine().CheckedRead(1, b.netbuf.base, std::span<uint8_t>(received)).ok());
  const auto parsed = SealedBlob::Deserialize(received);
  ASSERT_TRUE(parsed.ok());
  const auto opened = AeadOpen(session_b, *parsed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(std::string(opened->begin(), opened->end()), record);
  ASSERT_TRUE(b.enclave.Exit(1).ok());

  // ---- Tampering on the wire is detected. ----
  std::vector<uint8_t> tampered = wire_frame;
  tampered[20] ^= 0xff;
  ASSERT_TRUE(
      b.machine().CheckedWrite(0, b.netbuf.base, std::span<const uint8_t>(tampered)).ok());
  ASSERT_TRUE(b.enclave.Enter(1).ok());
  std::vector<uint8_t> bad(tampered.size());
  ASSERT_TRUE(b.machine().CheckedRead(1, b.netbuf.base, std::span<uint8_t>(bad)).ok());
  const auto bad_parsed = SealedBlob::Deserialize(bad);
  if (bad_parsed.ok()) {
    EXPECT_FALSE(AeadOpen(session_b, *bad_parsed).ok());
  }
  ASSERT_TRUE(b.enclave.Exit(1).ok());

  // ---- Neither OS can reach the enclaves' private memory. ----
  EXPECT_FALSE(a.machine().CheckedRead64(0, a.enclave.base()).ok());
  EXPECT_FALSE(b.machine().CheckedRead64(0, b.enclave.base()).ok());
  EXPECT_TRUE(*a.monitor().AuditHardwareConsistency());
  EXPECT_TRUE(*b.monitor().AuditHardwareConsistency());
}

TEST_F(CrossMachineTest, DistinctMachinesDistinctMonitorKeys) {
  // Same monitor image, same measurement -- but each machine's TPM seed
  // differs in a real fleet; here the seeds are equal, so the derived keys
  // match. Prove that flipping the endorsement seed separates identities.
  MachineConfig config_a;
  config_a.memory_bytes = 16ull << 20;
  config_a.endorsement_seed = {1, 2, 3};
  MachineConfig config_b = config_a;
  config_b.endorsement_seed = {4, 5, 6};
  Machine machine_a(config_a);
  Machine machine_b(config_b);
  const std::vector<uint8_t> firmware = DemoFirmwareImage();
  const std::vector<uint8_t> image = DemoMonitorImage();
  BootParams params;
  params.firmware_image = firmware;
  params.monitor_image = image;
  auto boot_a = MeasuredBoot(&machine_a, params);
  auto boot_b = MeasuredBoot(&machine_b, params);
  ASSERT_TRUE(boot_a.ok());
  ASSERT_TRUE(boot_b.ok());
  // Same golden measurement (same image)...
  EXPECT_EQ(boot_a->monitor_measurement, boot_b->monitor_measurement);
  // ... but machine-bound keys: the TPM and monitor keys differ.
  EXPECT_FALSE(machine_a.tpm().attestation_key() == machine_b.tpm().attestation_key());
  EXPECT_FALSE(boot_a->monitor->public_key() == boot_b->monitor->public_key());
}

}  // namespace
}  // namespace tyche
