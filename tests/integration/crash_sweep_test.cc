// Copyright 2026 The Tyche Reproduction Authors.
// The crash-point sweep: the recovery counterpart of the fault sweep.
//
// One clean multi-domain workload runs per backend with snapshots enabled,
// producing the durable evidence a real deployment would hold: the journal
// (every engine mutation journaled AFTER it completed) and the snapshot
// store (one hash-committed snapshot per signed checkpoint). The monitor is
// then "killed" at EVERY journal-record boundary: for each prefix of the
// journal, a fresh machine recovers from (newest snapshot at-or-before the
// boundary, journal prefix) and must be indistinguishable from an uncrashed
// oracle -- the engine digest equals a from-genesis shadow replay of the
// prefix, hardware passes the consistency audit, and the recovered
// monitor's re-exported journal verifies offline against its own graph.
//
// Two more sweeps ride on the same evidence: recovery from every
// snapshot-anchored *compacted* journal (the TruncateBefore shape), and a
// fault sweep over every backend re-sync site inside Recover() itself --
// each injected failure must surface as a typed error and a clean retry
// must land on the oracle state. A seeded soak (TYCHE_FAULT_SEED,
// replayable) samples random (site, occurrence) pairs during recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/dispatch.h"
#include "src/monitor/recovery.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr PciBdf kNic = PciBdf(0, 3, 0);
constexpr uint64_t kMemoryBytes = 64ull << 20;
constexpr uint32_t kNumCores = 4;

std::unique_ptr<Machine> MakeMachine(IsaArch arch) {
  MachineConfig config;
  config.arch = arch;
  config.memory_bytes = kMemoryBytes;
  config.num_cores = kNumCores;
  auto machine = std::make_unique<Machine>(config);
  if (!machine->AddDevice(std::make_unique<DmaEngine>(kNic, "nic0")).ok()) {
    return nullptr;
  }
  return machine;
}

// The clean run's durable leftovers: everything recovery is allowed to use.
struct Evidence {
  std::vector<uint8_t> firmware = DemoFirmwareImage();
  std::vector<uint8_t> monitor_image = DemoMonitorImage();
  std::vector<JournalRecord> records;
  std::vector<JournalCheckpoint> checkpoints;
  SnapshotStore store;
  SchnorrPublicKey key;
  size_t boot_records = 0;  // records the boot itself wrote

  BootParams Params() const {
    BootParams params;
    params.firmware_image = firmware;
    params.monitor_image = monitor_image;
    return params;
  }
};

// The workload: two extra domains, a circular share chain, a grant with
// remainders, a device migration there and back, a sealed enclave with a
// transition, and a cascading revocation + teardown of B. Driven through
// Dispatch() so every boundary shape the ABI can journal appears: dispatch
// roots, mutations, cascades, effects, restores.
void RunWorkload(Machine* machine, Monitor* monitor, DomainId os_domain) {
  const auto call = [&](CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0,
                        uint64_t a2 = 0, uint64_t a3 = 0, uint64_t a4 = 0,
                        uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    const ApiResult result = Dispatch(monitor, core, regs);
    EXPECT_EQ(result.error, 0u) << "workload op " << ApiOpName(op) << " failed: "
                                << ErrorCodeName(static_cast<ErrorCode>(result.error));
    return result;
  };
  const uint64_t pack_all = static_cast<uint64_t>(CapRights::kAll) << 8;
  const uint64_t scratch_base = monitor->monitor_range().end();
  const auto mem_cap = [&](AddrRange range) {
    const auto cap = FindMemoryCap(*monitor, os_domain, range);
    return cap.ok() ? *cap : kInvalidCap;
  };

  const ApiResult a = call(0, ApiOp::kCreateDomain);
  const ApiResult b = call(0, ApiOp::kCreateDomain);
  const ApiResult b_for_a = call(0, ApiOp::kShareUnit, b.ret1, a.ret1, pack_all);
  const ApiResult a_for_b = call(0, ApiOp::kShareUnit, a.ret1, b.ret1, pack_all);

  // Circular shares: OS -> A (16 pages), A -> B (8), B -> A (4).
  const AddrRange window{scratch_base + kMiB, 16 * kPageSize};
  const ApiResult to_a = call(0, ApiOp::kShareMemory, mem_cap(window), a.ret1,
                              window.base, window.size, Perms::kRW, pack_all);
  machine->cpu(1).set_current_domain(a.ret0);
  const ApiResult to_b = call(1, ApiOp::kShareMemory, to_a.ret0, b_for_a.ret0,
                              window.base, 8 * kPageSize, Perms::kRW, pack_all);
  machine->cpu(2).set_current_domain(b.ret0);
  call(2, ApiOp::kShareMemory, to_b.ret0, a_for_b.ret0, window.base,
       4 * kPageSize, Perms::kRW, pack_all);
  machine->cpu(1).set_current_domain(os_domain);
  machine->cpu(2).set_current_domain(os_domain);

  // A grant that splits the OS root range into remainders.
  const AddrRange grant_window{scratch_base + 4 * kMiB, 8 * kPageSize};
  const ApiResult granted =
      call(0, ApiOp::kGrantMemory, mem_cap(grant_window), a.ret1,
           grant_window.base, grant_window.size, Perms::kRW, pack_all);

  // Device migration: NIC to A and back (IOMMU / IO-PMP moves both ways).
  const auto nic_cap = FindUnitCap(*monitor, os_domain, ResourceKind::kPciDevice,
                                   kNic.value);
  EXPECT_TRUE(nic_cap.ok());
  const ApiResult nic_granted = call(0, ApiOp::kGrantUnit, *nic_cap, a.ret1, pack_all);
  call(0, ApiOp::kRevoke, nic_granted.ret0);

  // Seal A with an executable identity and run it once on core 3.
  const AddrRange exec_window{scratch_base + 8 * kMiB, 4 * kPageSize};
  call(0, ApiOp::kShareMemory, mem_cap(exec_window), a.ret1, exec_window.base,
       exec_window.size, Perms::kRX, pack_all);
  const auto core_cap =
      FindUnitCap(*monitor, os_domain, ResourceKind::kCpuCore, 3);
  EXPECT_TRUE(core_cap.ok());
  call(0, ApiOp::kShareUnit, *core_cap, a.ret1, pack_all);
  call(0, ApiOp::kSetEntryPoint, a.ret1, exec_window.base);
  call(0, ApiOp::kExtendMeasurement, a.ret1, exec_window.base, exec_window.size);
  call(0, ApiOp::kSeal, a.ret1);
  call(3, ApiOp::kTransition, a.ret1);
  call(3, ApiOp::kReturn);

  // Cascading revocation of the share chain, the grant's restore, and B's
  // teardown. A stays alive and sealed across the crash boundary.
  call(0, ApiOp::kRevoke, to_a.ret0);
  call(0, ApiOp::kRevoke, granted.ret0);
  call(0, ApiOp::kDestroyDomain, b.ret1);
}

// Clean run: boot, enable snapshots, run the workload, keep the evidence.
// The journal is serialized WITHOUT a parting checkpoint -- a crashed
// monitor never gets to sign its death.
std::unique_ptr<Evidence> CollectEvidence(IsaArch arch) {
  auto evidence = std::make_unique<Evidence>();
  auto machine = MakeMachine(arch);
  if (machine == nullptr) {
    return nullptr;
  }
  auto outcome = MeasuredBoot(machine.get(), evidence->Params());
  if (!outcome.ok()) {
    return nullptr;
  }
  Monitor* monitor = outcome->monitor.get();
  evidence->boot_records = monitor->audit().journal().size();
  monitor->audit().journal().set_checkpoint_interval(16);
  if (!monitor->EnableSnapshots(&evidence->store).ok()) {
    return nullptr;
  }
  RunWorkload(machine.get(), monitor, outcome->initial_domain);
  evidence->records = monitor->audit().journal().Records();
  evidence->checkpoints = monitor->audit().journal().Checkpoints();
  evidence->key = monitor->public_key();
  return evidence;
}

// What an uncrashed monitor would hold after `records`: the from-genesis
// shadow replay. Tolerates a prefix cut mid-span (the crash model).
Digest OracleDigest(const std::vector<JournalRecord>& records) {
  CapabilityEngine shadow;
  ReplayOptions options;
  options.tolerate_truncated_tail = true;
  const auto replay = ReplayJournalInto(&shadow, records, options);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  return EngineDigest(shadow);
}

// `anchor_snapshot` is empty when the recovered journal reaches back to
// genesis (plain offline verification applies); a monitor recovered from a
// compacted journal keeps the truncation, so its export only verifies
// through the snapshot-anchored path -- exactly like tools/journal_verify.
void ExpectRecoveredMonitorIsSound(Monitor* monitor, const Digest& oracle,
                                   std::span<const uint8_t> anchor_snapshot = {}) {
  EXPECT_EQ(EngineDigest(monitor->engine()), oracle)
      << "recovered engine diverged from the uncrashed oracle";
  const auto consistent = monitor->AuditHardwareConsistency();
  ASSERT_TRUE(consistent.ok()) << consistent.status().ToString();
  EXPECT_TRUE(*consistent) << "hardware is not a projection of the tree";
  const TelemetrySnapshot dump = monitor->DumpTelemetry();
  const std::vector<uint8_t> wire = monitor->ExportJournal();
  const Status verified =
      anchor_snapshot.empty()
          ? RemoteVerifier::VerifyJournal(wire, monitor->public_key(),
                                          &dump.capability_graph_json)
          : VerifyJournalWithSnapshot(wire, anchor_snapshot, monitor->public_key(),
                                      dump.capability_graph_json);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
}

// One boundary: die after `prefix_len` records, recover on a fresh machine
// (RAM is gone; the journal prefix + snapshot store are the durable truth).
void RecoverAtBoundary(IsaArch arch, const Evidence& evidence, size_t prefix_len) {
  ParsedJournal prefix;
  prefix.records.assign(evidence.records.begin(),
                        evidence.records.begin() + prefix_len);
  const uint64_t last_seq = prefix.records.back().seq;
  for (const JournalCheckpoint& checkpoint : evidence.checkpoints) {
    if (checkpoint.seq <= last_seq) {
      prefix.checkpoints.push_back(checkpoint);
    }
  }
  const auto snapshot = evidence.store.LatestAtOrBefore(last_seq);
  const std::span<const uint8_t> snapshot_bytes =
      snapshot.ok() ? std::span<const uint8_t>(snapshot->bytes)
                    : std::span<const uint8_t>();

  auto machine = MakeMachine(arch);
  ASSERT_NE(machine, nullptr);
  auto outcome =
      MeasuredRecovery(machine.get(), evidence.Params(), snapshot_bytes, prefix);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectRecoveredMonitorIsSound(outcome->monitor.get(),
                                OracleDigest(prefix.records));
}

void SweepEveryBoundary(IsaArch arch) {
  const auto evidence = CollectEvidence(arch);
  ASSERT_NE(evidence, nullptr);
  ASSERT_GT(evidence->records.size(), evidence->boot_records);
  ASSERT_GE(evidence->store.size(), 2u)
      << "workload too short to cross two snapshot checkpoints";
  std::printf("[ sweep ] arch=%d boundaries=%zu snapshots=%zu\n",
              static_cast<int>(arch),
              evidence->records.size() - evidence->boot_records + 1,
              evidence->store.size());
  // Every boundary from "boot just finished" to "died with a full journal".
  for (size_t prefix_len = evidence->boot_records;
       prefix_len <= evidence->records.size(); ++prefix_len) {
    SCOPED_TRACE("boundary after record " + std::to_string(prefix_len - 1));
    RecoverAtBoundary(arch, *evidence, prefix_len);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Compaction sweep: for every snapshot-bearing checkpoint, recover from the
// journal TruncateBefore() would leave -- records strictly after the anchor
// plus the anchor checkpoint itself.
void SweepCompactedJournals(IsaArch arch) {
  const auto evidence = CollectEvidence(arch);
  ASSERT_NE(evidence, nullptr);
  const Digest oracle = OracleDigest(evidence->records);
  size_t anchors = 0;
  for (const JournalCheckpoint& anchor : evidence->checkpoints) {
    if (anchor.snapshot == Digest{}) {
      continue;
    }
    ++anchors;
    SCOPED_TRACE("anchor at seq " + std::to_string(anchor.seq));
    ParsedJournal compacted;
    for (const JournalRecord& record : evidence->records) {
      if (record.seq > anchor.seq) {
        compacted.records.push_back(record);
      }
    }
    for (const JournalCheckpoint& checkpoint : evidence->checkpoints) {
      if (checkpoint.seq >= anchor.seq) {
        compacted.checkpoints.push_back(checkpoint);
      }
    }
    const auto snapshot = evidence->store.LatestAtOrBefore(anchor.seq);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ(snapshot->digest, anchor.snapshot);

    auto machine = MakeMachine(arch);
    ASSERT_NE(machine, nullptr);
    auto outcome = MeasuredRecovery(machine.get(), evidence->Params(),
                                    snapshot->bytes, compacted);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ExpectRecoveredMonitorIsSound(outcome->monitor.get(), oracle, snapshot->bytes);
  }
  EXPECT_GE(anchors, 2u);
}

// One faulted recovery: PrepareMonitor by hand so the half-recovered
// monitor survives for the retry, arm `plan` around Recover() only.
// Returns the monitor after a successful clean retry.
void FaultedRecoveryTrial(IsaArch arch, const Evidence& evidence,
                          const FaultPlan& plan, bool require_fire) {
  ParsedJournal journal;
  journal.records = evidence.records;
  journal.checkpoints = evidence.checkpoints;
  const auto snapshot = evidence.store.Latest();
  ASSERT_TRUE(snapshot.ok());

  auto machine = MakeMachine(arch);
  ASSERT_NE(machine, nullptr);
  machine->tpm().Reset();
  auto prepared = PrepareMonitor(machine.get(), evidence.Params());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Monitor* monitor = prepared->monitor.get();

  Status faulted;
  {
    ScopedFaultPlan scoped(plan);
    faulted = monitor->Recover(snapshot->bytes, journal);
  }
  const bool fired = FaultInjector::Instance().fired_count() > 0;
  if (require_fire) {
    EXPECT_TRUE(fired) << "plan " << plan.ToString() << " never fired";
  }
  if (fired) {
    // The failure surfaced as a typed error, never a silent half-recovery.
    ASSERT_FALSE(faulted.ok()) << "fault fired but Recover() reported success";
    EXPECT_NE(faulted.code(), ErrorCode::kOk);
  }
  // Recover() is re-entrant: the same evidence, injector quiet, must land
  // exactly on the oracle state with consistent hardware.
  const Status retried = monitor->Recover(snapshot->bytes, journal);
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  ExpectRecoveredMonitorIsSound(monitor, OracleDigest(evidence.records));
}

// Counting run over a clean recovery: which injection sites does Recover()
// cross, and how often? Drives both the exhaustive re-sync sweep and the
// seeded soak.
std::map<std::string, uint64_t> CountRecoverySites(IsaArch arch,
                                                   const Evidence& evidence) {
  ParsedJournal journal;
  journal.records = evidence.records;
  journal.checkpoints = evidence.checkpoints;
  const auto snapshot = evidence.store.Latest();
  EXPECT_TRUE(snapshot.ok());
  auto machine = MakeMachine(arch);
  EXPECT_NE(machine, nullptr);
  machine->tpm().Reset();
  auto prepared = PrepareMonitor(machine.get(), evidence.Params());
  EXPECT_TRUE(prepared.ok());
  FaultInjector::Instance().StartCounting();
  const Status recovered = prepared->monitor->Recover(snapshot->bytes, journal);
  auto counts = FaultInjector::Instance().StopCounting();
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  // Drop the silent-corruption sites (journal.head_tamper,
  // engine.owned_desync): they corrupt state without failing the operation,
  // so Recover() legitimately reports success and only the invariant
  // watchdog detects them (tests/monitor/watchdog_test.cc). The resync
  // sweep asserts typed-error propagation, which they never produce.
  const auto& sweepable = AllFaultSites();
  for (auto it = counts.begin(); it != counts.end();) {
    const bool known = std::find(sweepable.begin(), sweepable.end(), it->first) !=
                       sweepable.end();
    it = known ? std::next(it) : counts.erase(it);
  }
  return counts;
}

void SweepResyncFaults(IsaArch arch, const std::set<std::string>& required_sites) {
  const auto evidence = CollectEvidence(arch);
  ASSERT_NE(evidence, nullptr);
  const auto counts = CountRecoverySites(arch, *evidence);
  for (const std::string& site : required_sites) {
    EXPECT_TRUE(counts.contains(site) && counts.at(site) > 0)
        << "recovery never crossed " << site;
  }
  // First / middle / last occurrence of every site recovery crosses.
  for (const auto& [site, count] : counts) {
    if (count == 0) {
      continue;
    }
    for (const uint64_t trigger : std::set<uint64_t>{1, (count + 1) / 2, count}) {
      SCOPED_TRACE(site + "#" + std::to_string(trigger) + "/" +
                   std::to_string(count));
      FaultedRecoveryTrial(arch, *evidence, FaultPlan::Single(site, trigger),
                           /*require_fire=*/true);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

void SoakRecovery(IsaArch arch, int trials) {
  const auto evidence = CollectEvidence(arch);
  ASSERT_NE(evidence, nullptr);
  const auto counts = CountRecoverySites(arch, *evidence);
  ASSERT_FALSE(counts.empty());
  uint64_t base_seed = 0xD1CE + static_cast<uint64_t>(arch);
  if (const char* env = std::getenv("TYCHE_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  std::printf("[ soak ] arch=%d base_seed=0x%llx trials=%d\n",
              static_cast<int>(arch),
              static_cast<unsigned long long>(base_seed), trials);
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial) * 0x9E3779B9ull;
    const FaultPlan plan = FaultPlan::FromSeed(seed, counts);
    ASSERT_FALSE(plan.empty());
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan.ToString());
    FaultedRecoveryTrial(arch, *evidence, plan, /*require_fire=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

const std::set<std::string> kVtxResyncSites = {
    std::string(faults::kVtxCreateContext),
    std::string(faults::kVtxSyncMemory),
    std::string(faults::kVtxAttachDevice),
    std::string(faults::kVtxBindCore),
};

const std::set<std::string> kPmpResyncSites = {
    std::string(faults::kPmpCreateContext),
    std::string(faults::kPmpRecompile),
    std::string(faults::kPmpBindCore),
    std::string(faults::kPmpAttachDevice),
};

TEST(CrashSweepTest, EveryRecordBoundaryOnVtx) { SweepEveryBoundary(IsaArch::kX86_64); }

TEST(CrashSweepTest, EveryRecordBoundaryOnPmp) { SweepEveryBoundary(IsaArch::kRiscV); }

TEST(CrashSweepTest, EverySnapshotAnchoredCompactionOnVtx) {
  SweepCompactedJournals(IsaArch::kX86_64);
}

TEST(CrashSweepTest, EverySnapshotAnchoredCompactionOnPmp) {
  SweepCompactedJournals(IsaArch::kRiscV);
}

TEST(CrashSweepTest, EveryResyncFaultSiteOnVtx) {
  SweepResyncFaults(IsaArch::kX86_64, kVtxResyncSites);
}

TEST(CrashSweepTest, EveryResyncFaultSiteOnPmp) {
  SweepResyncFaults(IsaArch::kRiscV, kPmpResyncSites);
}

TEST(CrashSweepTest, RandomizedRecoveryFaultSoakOnVtx) {
  SoakRecovery(IsaArch::kX86_64, 12);
}

TEST(CrashSweepTest, RandomizedRecoveryFaultSoakOnPmp) {
  SoakRecovery(IsaArch::kRiscV, 12);
}

}  // namespace
}  // namespace tyche
