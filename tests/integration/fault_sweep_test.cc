// Copyright 2026 The Tyche Reproduction Authors.
// The exhaustive fault sweep: a fixed workload touches every subsystem
// (domain lifecycle, circular memory sharing, device moves, transitions,
// sealed storage, the OS allocator), a counting run learns how often each
// injection site is reached, and then the workload is replayed with a fault
// injected at the FIRST, MIDDLE and LAST occurrence of every site, on both
// backends. After every single injected failure the monitor must hold the
// transactional line: a typed error surfaced to the caller, the capability
// tree and the hardware agree (AuditHardwareConsistency), and the exported
// journal still verifies offline with its shadow replay matching the live
// capability-graph snapshot -- no torn states, ever.
//
// A randomized soak (seeded, logged, replayable via TYCHE_FAULT_SEED) then
// samples (site, occurrence) pairs uniformly for >= 100 extra trials.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/dispatch.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr PciBdf kNic = PciBdf(0, 3, 0);

// A freshly booted machine per trial. Boot runs with the injector quiet, so
// occurrence numbering always starts at the first workload instruction --
// that is what makes "the Nth occurrence" reproducible across trials.
struct Testbed {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<LinOs> os;
  DomainId os_domain = kInvalidDomain;

  static std::unique_ptr<Testbed> Create(IsaArch arch) {
    auto bed = std::make_unique<Testbed>();
    MachineConfig config;
    config.arch = arch;
    config.memory_bytes = 128ull << 20;
    config.num_cores = 4;
    bed->machine = std::make_unique<Machine>(config);
    if (!bed->machine->AddDevice(std::make_unique<DmaEngine>(kNic, "nic0")).ok()) {
      return nullptr;
    }
    BootParams params;
    params.firmware_image = DemoFirmwareImage();
    params.monitor_image = DemoMonitorImage();
    auto outcome = MeasuredBoot(bed->machine.get(), params);
    if (!outcome.ok()) {
      return nullptr;
    }
    bed->monitor = std::move(outcome->monitor);
    bed->os_domain = outcome->initial_domain;
    const uint64_t os_base = bed->monitor->monitor_range().end();
    const uint64_t os_size = config.memory_bytes - os_base;
    const auto mem_cap =
        FindMemoryCap(*bed->monitor, bed->os_domain, AddrRange{os_base, os_size});
    if (!mem_cap.ok()) {
      return nullptr;
    }
    bed->os = std::make_unique<LinOs>(bed->monitor.get(), bed->os_domain, *mem_cap,
                                      AddrRange{os_base + os_size / 2, os_size / 2});
    return bed;
  }

  AddrRange Scratch(uint64_t offset, uint64_t size) const {
    return AddrRange{monitor->monitor_range().end() + offset, size};
  }
  CapId MemCap(AddrRange range) const {
    const auto cap = FindMemoryCap(*monitor, os_domain, range);
    return cap.ok() ? *cap : kInvalidCap;
  }
  CapId CoreCap(CoreId core) const {
    const auto cap = FindUnitCap(*monitor, os_domain, ResourceKind::kCpuCore, core);
    return cap.ok() ? *cap : kInvalidCap;
  }
  CapId DeviceCap(PciBdf bdf) const {
    const auto cap =
        FindUnitCap(*monitor, os_domain, ResourceKind::kPciDevice, bdf.value);
    return cap.ok() ? *cap : kInvalidCap;
  }
};

// Every non-OK error code the workload observed, in order. Under injection
// the workload keeps going after a failed step (later steps may fail with
// follow-on errors); the sweep only requires that the INJECTED code
// surfaced somewhere -- no failure may be silently swallowed.
struct WorkloadLog {
  std::vector<ErrorCode> errors;

  void Note(uint64_t error) {
    if (error != 0) {
      errors.push_back(static_cast<ErrorCode>(error));
    }
  }
  void Note(const Status& status) {
    if (!status.ok()) {
      errors.push_back(status.code());
    }
  }
  bool Saw(ErrorCode code) const {
    for (const ErrorCode e : errors) {
      if (e == code) {
        return true;
      }
    }
    return false;
  }
};

// The deterministic workload. Exercises, in a fixed order: domain creation,
// cross-handles, a circular memory-sharing loop (OS -> A -> B -> A), a
// memory grant with remainders, a device grant + revoke (IOMMU / IOPMP
// moves), an executable share + seal + transition + sealed storage
// (AEAD open), an OS process (range + page-table frame allocators), a
// cascading revocation of the circular loop, and both domain destructions.
WorkloadLog RunWorkload(Testbed& bed) {
  WorkloadLog log;
  Monitor* monitor = bed.monitor.get();
  Machine* machine = bed.machine.get();

  const auto call = [&](CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0,
                        uint64_t a2 = 0, uint64_t a3 = 0, uint64_t a4 = 0,
                        uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    const ApiResult result = Dispatch(monitor, core, regs);
    log.Note(result.error);
    return result;
  };
  const uint64_t pack_all = static_cast<uint64_t>(CapRights::kAll) << 8;

  // Two domains plus mutual handles.
  const ApiResult a = call(0, ApiOp::kCreateDomain);
  const ApiResult b = call(0, ApiOp::kCreateDomain);
  const ApiResult b_for_a = call(0, ApiOp::kShareUnit, b.ret1, a.ret1, pack_all);
  const ApiResult a_for_b = call(0, ApiOp::kShareUnit, a.ret1, b.ret1, pack_all);

  // Circular memory: OS -> A (16 pages), A -> B (8), B -> A (4).
  const AddrRange window = bed.Scratch(kMiB, 16 * kPageSize);
  const ApiResult to_a = call(0, ApiOp::kShareMemory, bed.MemCap(window), a.ret1,
                              window.base, window.size, Perms::kRW, pack_all);
  machine->cpu(1).set_current_domain(a.ret0);
  const ApiResult to_b = call(1, ApiOp::kShareMemory, to_a.ret0, b_for_a.ret0,
                              window.base, 8 * kPageSize, Perms::kRW, pack_all);
  machine->cpu(2).set_current_domain(b.ret0);
  const ApiResult back_to_a = call(2, ApiOp::kShareMemory, to_b.ret0, a_for_b.ret0,
                                   window.base, 4 * kPageSize, Perms::kRW, pack_all);
  machine->cpu(1).set_current_domain(bed.os_domain);
  machine->cpu(2).set_current_domain(bed.os_domain);

  // A grant that splits the OS's root range into remainders.
  const AddrRange grant_window = bed.Scratch(4 * kMiB, 8 * kPageSize);
  const ApiResult granted =
      call(0, ApiOp::kGrantMemory, bed.MemCap(grant_window), a.ret1,
           grant_window.base, grant_window.size, Perms::kRW, pack_all);

  // Device migration: grant the NIC to A (detach from the OS, attach to A),
  // then revoke it back (detach from A, restore + attach to the OS).
  const ApiResult nic_granted =
      call(0, ApiOp::kGrantUnit, bed.DeviceCap(kNic), a.ret1, pack_all);
  call(0, ApiOp::kRevoke, nic_granted.ret0);

  // Executable window, entry point, seal, transition onto core 3, sealed
  // storage round trip (UnsealData crosses the AEAD-open fault site).
  const AddrRange exec_window = bed.Scratch(8 * kMiB, 4 * kPageSize);
  call(0, ApiOp::kShareMemory, bed.MemCap(exec_window), a.ret1, exec_window.base,
       exec_window.size, Perms::kRX, pack_all);
  call(0, ApiOp::kShareUnit, bed.CoreCap(3), a.ret1, pack_all);
  call(0, ApiOp::kSetEntryPoint, a.ret1, exec_window.base);
  call(0, ApiOp::kSeal, a.ret1);
  call(3, ApiOp::kTransition, a.ret1);
  const std::vector<uint8_t> secret = {0x74, 0x79, 0x63, 0x68, 0x65};
  const auto sealed = monitor->SealData(3, secret);
  log.Note(sealed.status());
  if (sealed.ok()) {
    const auto opened = monitor->UnsealData(3, *sealed);
    log.Note(opened.status());
  }
  call(3, ApiOp::kReturn);

  // OS-side pressure: a process allocation walks the range allocator and the
  // page-table frame pool.
  const auto pid = bed.os->CreateProcess("sweep", 16 * kPageSize);
  log.Note(pid.status());
  if (pid.ok()) {
    log.Note(bed.os->KillProcess(*pid));
  }

  // Cascading revocation of the circular loop, then the grant's restore,
  // then both domains go away entirely.
  call(0, ApiOp::kRevoke, to_a.ret0);
  call(0, ApiOp::kRevoke, granted.ret0);
  call(0, ApiOp::kDestroyDomain, b.ret1);
  call(0, ApiOp::kDestroyDomain, a.ret1);
  (void)back_to_a;
  return log;
}

// The post-trial invariants: hardware agrees with the tree, and the journal
// verifies offline with its shadow replay matching the live graph snapshot.
void VerifyConsistency(Testbed& bed) {
  const auto consistent = bed.monitor->AuditHardwareConsistency();
  ASSERT_TRUE(consistent.ok()) << consistent.status().ToString();
  EXPECT_TRUE(*consistent) << "hardware diverged from the capability tree";

  const TelemetrySnapshot snapshot = bed.monitor->DumpTelemetry();
  const std::vector<uint8_t> wire = bed.monitor->ExportJournal();
  const Status verified = RemoteVerifier::VerifyJournal(
      wire, bed.monitor->public_key(), &snapshot.capability_graph_json);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
}

// Counting run: boots clean, runs the workload once under observation, and
// returns the per-site occurrence counts. The clean workload must be
// error-free -- otherwise triggers derived from it would be meaningless.
std::map<std::string, uint64_t> CountOccurrences(IsaArch arch) {
  auto bed = Testbed::Create(arch);
  EXPECT_NE(bed, nullptr);
  if (bed == nullptr) {
    return {};
  }
  FaultInjector::Instance().StartCounting();
  const WorkloadLog log = RunWorkload(*bed);
  auto counts = FaultInjector::Instance().StopCounting();
  // Counting observes every MaybeInject site the workload reaches, including
  // the silent-corruption sites (journal.head_tamper, engine.owned_desync)
  // that by design never surface a typed error -- only the invariant
  // watchdog notices them (tests/monitor/watchdog_test.cc). Restrict the
  // sweep to the enumerable error-surfacing sites.
  const auto& sweepable = AllFaultSites();
  for (auto it = counts.begin(); it != counts.end();) {
    const bool known = std::find(sweepable.begin(), sweepable.end(), it->first) !=
                       sweepable.end();
    it = known ? std::next(it) : counts.erase(it);
  }
  EXPECT_TRUE(log.errors.empty())
      << "clean workload reported " << log.errors.size() << " errors, first: "
      << ErrorCodeName(log.errors.empty() ? ErrorCode::kOk : log.errors[0]);
  VerifyConsistency(*bed);
  return counts;
}

// One injected trial: fresh machine, one (site, occurrence) fault, full
// workload, then the invariants with the injector quiescent again.
void RunTrial(IsaArch arch, const FaultPlan& plan, ErrorCode expected_code) {
  auto bed = Testbed::Create(arch);
  ASSERT_NE(bed, nullptr);
  WorkloadLog log;
  {
    ScopedFaultPlan scoped(plan);
    log = RunWorkload(*bed);
  }
  // Disarm() keeps the fired record: exactly one fault was delivered.
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u)
      << "plan " << plan.ToString() << " did not fire exactly once";
  EXPECT_TRUE(log.Saw(expected_code))
      << "injected " << ErrorCodeName(expected_code)
      << " never surfaced as a typed error";
  VerifyConsistency(*bed);
}

void RunSweep(IsaArch arch, const std::set<std::string>& required_sites) {
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());

  // Coverage: the workload reaches every site this backend registers.
  std::set<std::string> observed;
  for (const auto& [site, count] : counts) {
    if (count > 0) {
      observed.insert(site);
    }
  }
  for (const std::string& site : required_sites) {
    EXPECT_TRUE(observed.contains(site)) << "workload never reached " << site;
  }

  // First / middle / last occurrence of every observed site.
  for (const auto& [site, count] : counts) {
    const std::set<uint64_t> triggers = {1, (count + 1) / 2, count};
    for (const uint64_t trigger : triggers) {
      SCOPED_TRACE(site + "#" + std::to_string(trigger) + "/" +
                   std::to_string(count));
      RunTrial(arch, FaultPlan::Single(site, trigger), DefaultFaultCode(site));
    }
  }
}

void RunSoak(IsaArch arch, int trials) {
  const auto counts = CountOccurrences(arch);
  ASSERT_FALSE(counts.empty());
  uint64_t base_seed = 0xC0FFEE + static_cast<uint64_t>(arch);
  if (const char* env = std::getenv("TYCHE_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  // The seed is printed so any failing trial is replayable verbatim.
  std::printf("[ soak ] arch=%d base_seed=0x%llx trials=%d\n",
              static_cast<int>(arch),
              static_cast<unsigned long long>(base_seed), trials);
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial) * 0x9E3779B9ull;
    const FaultPlan plan = FaultPlan::FromSeed(seed, counts);
    ASSERT_FALSE(plan.empty());
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan.ToString());
    RunTrial(arch, plan, plan.specs()[0].code);
  }
}

const std::set<std::string> kVtxRequired = {
    std::string(faults::kFrameAlloc),       std::string(faults::kIommuAttach),
    std::string(faults::kRangeAlloc),       std::string(faults::kAeadOpen),
    std::string(faults::kVtxCreateContext), std::string(faults::kVtxSyncMemory),
    std::string(faults::kVtxAttachDevice),  std::string(faults::kVtxDetachDevice),
    std::string(faults::kVtxBindCore),
};

const std::set<std::string> kPmpRequired = {
    std::string(faults::kFrameAlloc),       std::string(faults::kRangeAlloc),
    std::string(faults::kAeadOpen),         std::string(faults::kPmpCreateContext),
    std::string(faults::kPmpRecompile),     std::string(faults::kPmpBindCore),
    std::string(faults::kPmpSyncDevice),    std::string(faults::kPmpAttachDevice),
    std::string(faults::kPmpDetachDevice),
};

TEST(FaultSweepTest, EverySiteFirstMiddleLastOnVtx) {
  RunSweep(IsaArch::kX86_64, kVtxRequired);
}

TEST(FaultSweepTest, EverySiteFirstMiddleLastOnPmp) {
  RunSweep(IsaArch::kRiscV, kPmpRequired);
}

TEST(FaultSweepTest, RandomizedSeedSoakOnVtx) { RunSoak(IsaArch::kX86_64, 50); }

TEST(FaultSweepTest, RandomizedSeedSoakOnPmp) { RunSoak(IsaArch::kRiscV, 50); }

}  // namespace
}  // namespace tyche
