// Copyright 2026 The Tyche Reproduction Authors.

#include "src/baseline/monopoly.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

class MonopolyTest : public ::testing::Test {
 protected:
  MonopolyTest() {
    kernel_ = stack_.AddActor("linux", PrivLevel::kGuestKernel, 0);
    app_ = stack_.AddActor("app", PrivLevel::kUserProcess, kernel_);
    other_app_ = stack_.AddActor("other", PrivLevel::kUserProcess, kernel_);
    EXPECT_TRUE(stack_.Assign(0, kernel_, AddrRange{0, 64 * kMiB}).ok());
    EXPECT_TRUE(stack_.Assign(kernel_, app_, AddrRange{8 * kMiB, kMiB}).ok());
    EXPECT_TRUE(stack_.Assign(kernel_, other_app_, AddrRange{16 * kMiB, kMiB}).ok());
  }

  CommodityStack stack_;
  uint32_t kernel_ = 0;
  uint32_t app_ = 0;
  uint32_t other_app_ = 0;
};

TEST_F(MonopolyTest, ActorsSeeTheirOwnMemory) {
  EXPECT_TRUE(stack_.CanAccess(app_, AddrRange{8 * kMiB, kPageSize}));
  EXPECT_TRUE(stack_.CanAccess(other_app_, AddrRange{16 * kMiB, kPageSize}));
}

TEST_F(MonopolyTest, SiblingsAreIsolatedFromEachOther) {
  // Process isolation DOES work sideways...
  EXPECT_FALSE(stack_.CanAccess(app_, AddrRange{16 * kMiB, kPageSize}));
  EXPECT_FALSE(stack_.CanAccess(other_app_, AddrRange{8 * kMiB, kPageSize}));
}

TEST_F(MonopolyTest, PrivilegedCodeSeesEverything) {
  // ... but NOT upwards: the kernel and the hypervisor read every process.
  EXPECT_TRUE(stack_.CanAccess(kernel_, AddrRange{8 * kMiB, kPageSize}));
  EXPECT_TRUE(stack_.CanAccess(kernel_, AddrRange{16 * kMiB, kPageSize}));
  EXPECT_TRUE(stack_.CanAccess(0, AddrRange{8 * kMiB, kPageSize}));
}

TEST_F(MonopolyTest, ChildrenCannotProtectThemselves) {
  EXPECT_EQ(stack_.ProtectFromAncestors(app_, AddrRange{8 * kMiB, kPageSize}).code(),
            ErrorCode::kUnimplemented);
}

TEST_F(MonopolyTest, NoAttestation) {
  EXPECT_EQ(stack_.Attest(app_).code(), ErrorCode::kUnimplemented);
}

TEST_F(MonopolyTest, OnlyParentsAssign) {
  EXPECT_EQ(stack_.Assign(app_, other_app_, AddrRange{32 * kMiB, kMiB}).code(),
            ErrorCode::kPolicyViolation);
  EXPECT_EQ(stack_.Assign(0, 999, AddrRange{32 * kMiB, kMiB}).code(),
            ErrorCode::kNotFound);
}

TEST_F(MonopolyTest, ActorLookup) {
  ASSERT_NE(stack_.GetActor(kernel_), nullptr);
  EXPECT_EQ(stack_.GetActor(kernel_)->name, "linux");
  EXPECT_EQ(stack_.GetActor(424242), nullptr);
}

}  // namespace
}  // namespace tyche
