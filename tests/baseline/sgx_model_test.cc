// Copyright 2026 The Tyche Reproduction Authors.

#include "src/baseline/sgx_model.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

class SgxTest : public ::testing::Test {
 protected:
  SgxTest() : sgx_(/*epc_pages=*/64, &cycles_) {}

  SgxEnclaveId MakeInitialized(uint32_t process, AddrRange elrange, int pages = 2) {
    const auto id = sgx_.Ecreate(process, elrange);
    EXPECT_TRUE(id.ok());
    const std::vector<uint8_t> content(128, 0x42);
    for (int i = 0; i < pages; ++i) {
      EXPECT_TRUE(sgx_.Eadd(*id, static_cast<uint64_t>(i) * kPageSize,
                            std::span<const uint8_t>(content))
                      .ok());
    }
    EXPECT_TRUE(sgx_.Einit(*id).ok());
    return *id;
  }

  CycleAccount cycles_;
  SgxProcessor sgx_;
};

TEST_F(SgxTest, LifecycleAndMeasurement) {
  const SgxEnclaveId id = MakeInitialized(1, AddrRange{0x100000, kMiB});
  const auto mr = sgx_.MrEnclave(id);
  ASSERT_TRUE(mr.ok());
  EXPECT_FALSE(mr->IsZero());
  ASSERT_TRUE(sgx_.Eenter(id).ok());
  ASSERT_TRUE(sgx_.Eexit(id).ok());
  ASSERT_TRUE(sgx_.Eremove(id).ok());
  EXPECT_FALSE(sgx_.Eenter(id).ok());
}

TEST_F(SgxTest, MeasurementDependsOnContentAndLayout) {
  const SgxEnclaveId a = MakeInitialized(1, AddrRange{0x100000, kMiB});
  const SgxEnclaveId b = MakeInitialized(2, AddrRange{0x100000, kMiB});
  EXPECT_EQ(*sgx_.MrEnclave(a), *sgx_.MrEnclave(b));  // same recipe, same hash
  const SgxEnclaveId c = MakeInitialized(3, AddrRange{0x200000, kMiB});
  EXPECT_NE(*sgx_.MrEnclave(a), *sgx_.MrEnclave(c));  // ELRANGE differs
}

TEST_F(SgxTest, ElrangeValidation) {
  EXPECT_FALSE(sgx_.Ecreate(1, AddrRange{0x100000, 3 * kPageSize}).ok());  // not pow2
  EXPECT_FALSE(sgx_.Ecreate(1, AddrRange{0x101000, kMiB}).ok());  // misaligned
}

TEST_F(SgxTest, NoAddressReuse) {
  const SgxEnclaveId id = MakeInitialized(1, AddrRange{0x100000, kMiB});
  ASSERT_TRUE(sgx_.Eremove(id).ok());
  // Same process, same (or overlapping) range: forbidden forever.
  EXPECT_EQ(sgx_.Ecreate(1, AddrRange{0x100000, kMiB}).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(sgx_.Ecreate(1, AddrRange{0, 2 * kMiB}).code(), ErrorCode::kAlreadyExists);
  // Different process: fine.
  EXPECT_TRUE(sgx_.Ecreate(2, AddrRange{0x100000, kMiB}).ok());
}

TEST_F(SgxTest, NoNesting) {
  const SgxEnclaveId id = MakeInitialized(1, AddrRange{0x100000, kMiB});
  ASSERT_TRUE(sgx_.Eenter(id).ok());
  // From enclave mode, creating another enclave is architecturally
  // impossible.
  EXPECT_EQ(sgx_.Ecreate(1, AddrRange{0x400000, kMiB}).code(), ErrorCode::kUnimplemented);
  ASSERT_TRUE(sgx_.Eexit(id).ok());
}

TEST_F(SgxTest, NoEnclaveToEnclaveSharing) {
  const SgxEnclaveId a = MakeInitialized(1, AddrRange{0x100000, kMiB});
  const SgxEnclaveId b = MakeInitialized(1, AddrRange{0x400000, kMiB});
  EXPECT_EQ(sgx_.ShareBetweenEnclaves(a, b, AddrRange{0x100000, kPageSize}).code(),
            ErrorCode::kUnimplemented);
}

TEST_F(SgxTest, EpcExhaustion) {
  // 64 EPC pages; each enclave adds 2. The 33rd EADD pair fails.
  int built = 0;
  for (int i = 0; i < 40; ++i) {
    const auto id =
        sgx_.Ecreate(static_cast<uint32_t>(i), AddrRange{0x100000, kMiB});
    ASSERT_TRUE(id.ok());
    const std::vector<uint8_t> content(16, 1);
    const Status first = sgx_.Eadd(*id, 0, std::span<const uint8_t>(content));
    if (!first.ok()) {
      EXPECT_EQ(first.code(), ErrorCode::kResourceExhausted);
      break;
    }
    ASSERT_TRUE(sgx_.Eadd(*id, kPageSize, std::span<const uint8_t>(content)).ok());
    ++built;
  }
  EXPECT_EQ(built, 32);
  EXPECT_EQ(sgx_.epc_free_pages(), 0u);
}

TEST_F(SgxTest, EremoveFreesEpc) {
  const SgxEnclaveId id = MakeInitialized(1, AddrRange{0x100000, kMiB}, /*pages=*/8);
  EXPECT_EQ(sgx_.epc_free_pages(), 64u - 8u);
  ASSERT_TRUE(sgx_.Eremove(id).ok());
  EXPECT_EQ(sgx_.epc_free_pages(), 64u);
}

TEST_F(SgxTest, OrderingRulesEnforced) {
  const auto id = sgx_.Ecreate(1, AddrRange{0x100000, kMiB});
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(sgx_.Eenter(*id).ok());  // before EINIT
  EXPECT_FALSE(sgx_.MrEnclave(*id).ok());
  ASSERT_TRUE(sgx_.Einit(*id).ok());
  EXPECT_FALSE(sgx_.Einit(*id).ok());  // double init
  const std::vector<uint8_t> content(16, 1);
  EXPECT_FALSE(sgx_.Eadd(*id, 0, std::span<const uint8_t>(content)).ok());  // after EINIT
  ASSERT_TRUE(sgx_.Eenter(*id).ok());
  EXPECT_FALSE(sgx_.Eremove(*id).ok());  // while executing
  ASSERT_TRUE(sgx_.Eexit(*id).ok());
  EXPECT_FALSE(sgx_.Eexit(*id).ok());
}

TEST_F(SgxTest, CostsCharged) {
  cycles_.Reset();
  const SgxEnclaveId id = MakeInitialized(1, AddrRange{0x100000, kMiB});
  const uint64_t build_cost = cycles_.cycles();
  EXPECT_EQ(build_cost, sgx_.costs().ecreate + 2 * sgx_.costs().eadd_per_page +
                            sgx_.costs().einit);
  cycles_.Reset();
  ASSERT_TRUE(sgx_.Eenter(id).ok());
  ASSERT_TRUE(sgx_.Eexit(id).ok());
  EXPECT_EQ(cycles_.cycles(), sgx_.costs().eenter + sgx_.costs().eexit);
}

}  // namespace
}  // namespace tyche
