// Copyright 2026 The Tyche Reproduction Authors.
// Monitor integration: boot, domain lifecycle, policies, transitions,
// hardware consistency.

#include "src/monitor/monitor.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/monitor/boot.h"
#include "src/monitor/pmp_backend.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

TEST(ApiOpNameTest, EveryOpHasAUniqueName) {
  // Telemetry dumps index this table by raw op value; a newly added ApiOp
  // without a name would silently render as the fallback marker.
  std::set<std::string> seen;
  for (uint64_t raw = 0; raw < static_cast<uint64_t>(ApiOp::kOpCount); ++raw) {
    const char* name = ApiOpName(static_cast<ApiOp>(raw));
    ASSERT_NE(name, nullptr) << "op " << raw;
    const std::string text(name);
    EXPECT_FALSE(text.empty()) << "op " << raw;
    EXPECT_NE(text, "?") << "op " << raw;
    EXPECT_NE(text, "unknown") << "op " << raw;
    EXPECT_TRUE(seen.insert(text).second) << "duplicate name '" << text << "' for op " << raw;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(ApiOp::kOpCount));
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : MonitorTest(IsaArch::kX86_64) {}

  explicit MonitorTest(IsaArch arch)
      : machine_([arch] {
          MachineConfig config;
          config.arch = arch;
          config.memory_bytes = 64ull << 20;
          config.num_cores = 4;
          return config;
        }()) {
    firmware_ = DemoFirmwareImage();
    image_ = DemoMonitorImage();
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = image_;
    auto outcome = MeasuredBoot(&machine_, params);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    monitor_ = std::move(outcome->monitor);
    os_ = outcome->initial_domain;
  }

  // Creates a child domain of the OS with `size` bytes of RWX memory granted
  // exclusively, one core shared, entry at its base. Returns the handle.
  CapId MakeChildDomain(uint64_t base, uint64_t size, bool seal) {
    auto created = monitor_->CreateDomain(0, "child");
    EXPECT_TRUE(created.ok());
    const CapId handle = created->handle;
    const CapId os_mem = OsMemoryCap();
    auto grant = monitor_->GrantMemory(0, os_mem, handle, AddrRange{base, size},
                                       Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                       RevocationPolicy(RevocationPolicy::kZeroMemory));
    EXPECT_TRUE(grant.ok()) << grant.status().ToString();
    const CapId os_core = OsUnitCap(ResourceKind::kCpuCore, 0);
    auto core = monitor_->ShareUnit(0, os_core, handle, CapRights(CapRights::kShare),
                                    RevocationPolicy{});
    EXPECT_TRUE(core.ok()) << core.status().ToString();
    EXPECT_TRUE(monitor_->SetEntryPoint(0, handle, base).ok());
    if (seal) {
      EXPECT_TRUE(monitor_->Seal(0, handle).ok());
    }
    return handle;
  }

  // Finds the OS's (largest) active memory capability.
  CapId OsMemoryCap() {
    CapId best = kInvalidCap;
    uint64_t best_size = 0;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == os_ && cap.kind == ResourceKind::kMemory &&
          cap.range.size > best_size) {
        best = cap.id;
        best_size = cap.range.size;
      }
    });
    return best;
  }

  CapId OsUnitCap(ResourceKind kind, uint64_t unit) {
    CapId found = kInvalidCap;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == os_ && cap.kind == kind && cap.unit == unit) {
        found = cap.id;
      }
    });
    return found;
  }

  std::vector<uint8_t> firmware_;
  std::vector<uint8_t> image_;
  Machine machine_;
  std::unique_ptr<Monitor> monitor_;
  DomainId os_ = kInvalidDomain;
};

TEST_F(MonitorTest, BootInstallsInitialDomainEverywhere) {
  for (CoreId core = 0; core < machine_.num_cores(); ++core) {
    EXPECT_EQ(monitor_->CurrentDomain(core), os_);
  }
  // The OS can touch its memory but not the monitor's.
  const uint64_t os_addr = monitor_->monitor_range().end() + 0x1000;
  EXPECT_TRUE(machine_.CheckedWrite64(0, os_addr, 1).ok());
  EXPECT_FALSE(machine_.CheckedRead64(0, 0x1000).ok());
}

TEST_F(MonitorTest, CreateDomainHandsHandleToCreator) {
  const auto created = monitor_->CreateDomain(0, "enclave");
  ASSERT_TRUE(created.ok());
  const Capability* handle = *monitor_->engine().Get(created->handle);
  EXPECT_EQ(handle->owner, os_);
  EXPECT_EQ(handle->kind, ResourceKind::kDomain);
  EXPECT_EQ(handle->unit, created->domain);
  const auto domain = monitor_->GetDomain(created->domain);
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ((*domain)->creator, os_);
  EXPECT_EQ((*domain)->state, DomainState::kCreated);
}

TEST_F(MonitorTest, GrantedMemoryMovesAccess) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/false);
  const Capability* cap = *monitor_->engine().Get(handle);
  const DomainId child = static_cast<DomainId>(cap->unit);

  // OS lost access to the granted range (hardware-enforced).
  EXPECT_FALSE(machine_.CheckedRead64(0, base).ok());
  // The child can access it once running on the core.
  EXPECT_TRUE(monitor_->Transition(0, handle).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), child);
  EXPECT_TRUE(machine_.CheckedWrite64(0, base, 0x1234).ok());
  EXPECT_TRUE(monitor_->ReturnFromDomain(0).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), os_);
}

TEST_F(MonitorTest, SealRequiresEntryPointAndExecPerms) {
  const auto created = monitor_->CreateDomain(0, "d");
  ASSERT_TRUE(created.ok());
  // No entry point yet.
  EXPECT_EQ(monitor_->Seal(0, created->handle).code(), ErrorCode::kFailedPrecondition);
  // Entry point in memory the domain does not own.
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, 16 * kMiB).ok());
  EXPECT_EQ(monitor_->Seal(0, created->handle).code(), ErrorCode::kPolicyViolation);
}

TEST_F(MonitorTest, SealedDomainRejectsNewResources) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/true);
  const auto share = monitor_->ShareMemory(0, OsMemoryCap(), handle,
                                           AddrRange{32 * kMiB, kMiB}, Perms(Perms::kRW),
                                           CapRights{}, RevocationPolicy{});
  EXPECT_EQ(share.code(), ErrorCode::kDomainSealed);
}

TEST_F(MonitorTest, TransitionRequiresCoreOwnership) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/true);
  // Core 1 was never shared with the child.
  EXPECT_EQ(monitor_->Transition(1, handle).code(), ErrorCode::kTransitionDenied);
  EXPECT_TRUE(monitor_->Transition(0, handle).ok());
}

TEST_F(MonitorTest, TransitionRequiresEntryPoint) {
  const auto created = monitor_->CreateDomain(0, "no-entry");
  ASSERT_TRUE(created.ok());
  const CapId os_core = OsUnitCap(ResourceKind::kCpuCore, 0);
  ASSERT_TRUE(monitor_->ShareUnit(0, os_core, created->handle,
                                  CapRights(CapRights::kShare), RevocationPolicy{})
                  .ok());
  EXPECT_EQ(monitor_->Transition(0, created->handle).code(), ErrorCode::kTransitionDenied);
}

TEST_F(MonitorTest, NestedTransitionsUnwindInOrder) {
  const CapId h1 = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/false);
  const DomainId d1 = static_cast<DomainId>((*monitor_->engine().Get(h1))->unit);

  // d1 creates its own nested child: share the handle path via the OS for
  // simplicity -- OS transitions into d1, d1 creates d2.
  ASSERT_TRUE(monitor_->Transition(0, h1).ok());
  const auto created = monitor_->CreateDomain(0, "nested");
  ASSERT_TRUE(created.ok());
  // d1 grants part of its memory to d2 and lets it run on core 0.
  CapId d1_mem = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == d1 && cap.kind == ResourceKind::kMemory) {
      d1_mem = cap.id;
    }
  });
  ASSERT_TRUE(monitor_->GrantMemory(0, d1_mem, created->handle,
                                    AddrRange{16 * kMiB + 512 * 1024, 512 * 1024},
                                    Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                    RevocationPolicy{})
                  .ok());
  CapId d1_core = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == d1 && cap.kind == ResourceKind::kCpuCore && cap.unit == 0) {
      d1_core = cap.id;
    }
  });
  ASSERT_TRUE(monitor_->ShareUnit(0, d1_core, created->handle, CapRights{},
                                  RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, 16 * kMiB + 512 * 1024).ok());

  ASSERT_TRUE(monitor_->Transition(0, created->handle).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), created->domain);
  ASSERT_TRUE(monitor_->ReturnFromDomain(0).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), d1);
  ASSERT_TRUE(monitor_->ReturnFromDomain(0).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), os_);
  EXPECT_EQ(monitor_->ReturnFromDomain(0).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(MonitorTest, RevocationZeroesAndRestoresAccess) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/false);
  // Write a secret into the child's memory via the child itself.
  ASSERT_TRUE(monitor_->Transition(0, handle).ok());
  ASSERT_TRUE(machine_.CheckedWrite64(0, base, 0xdeadbeef).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(0).ok());

  // OS revokes the grant (it owns the parent cap with revoke rights).
  CapId granted = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.kind == ResourceKind::kMemory && cap.origin == CapOrigin::kGrant &&
        cap.range.base == base) {
      granted = cap.id;
    }
  });
  ASSERT_NE(granted, kInvalidCap);
  ASSERT_TRUE(monitor_->Revoke(0, granted).ok());

  // Policy ran: memory zeroed before the OS regains access.
  EXPECT_EQ(*machine_.CheckedRead64(0, base), 0u);
  EXPECT_TRUE(machine_.CheckedWrite64(0, base, 1).ok());
}

TEST_F(MonitorTest, DestroyDomainReclaimsEverything) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/true);
  const DomainId child = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);
  ASSERT_TRUE(monitor_->DestroyDomain(0, handle).ok());
  EXPECT_EQ((*monitor_->GetDomain(child))->state, DomainState::kDead);
  // Zeroing revocation policy ran on the granted range.
  EXPECT_EQ(*machine_.CheckedRead64(0, base), 0u);
  // OS has access back.
  EXPECT_TRUE(machine_.CheckedWrite64(0, base, 5).ok());
}

TEST_F(MonitorTest, DestroyRunningDomainRefused) {
  const CapId handle = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/true);
  ASSERT_TRUE(monitor_->Transition(0, handle).ok());
  // From inside the child, the OS handle is unusable; switch to core 1
  // (still the OS) to attempt destruction.
  EXPECT_EQ(monitor_->DestroyDomain(1, handle).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(monitor_->ReturnFromDomain(0).ok());
  EXPECT_TRUE(monitor_->DestroyDomain(1, handle).ok());
}

TEST_F(MonitorTest, FastTransitionAfterRegistration) {
  const CapId handle = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/true);
  const DomainId child = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);
  // Unregistered: denied.
  EXPECT_EQ(monitor_->FastTransition(0, child).code(), ErrorCode::kTransitionDenied);
  ASSERT_TRUE(monitor_->RegisterFastTransition(0, handle).ok());

  const uint64_t cycles_before = machine_.cycles().cycles();
  ASSERT_TRUE(monitor_->FastTransition(0, child).ok());
  const uint64_t fast_cost = machine_.cycles().cycles() - cycles_before;
  EXPECT_EQ(monitor_->CurrentDomain(0), child);
  // The paper's claim: ~100-cycle transitions; certainly far below the
  // trap-mediated path.
  EXPECT_LE(fast_cost, 2 * CostModel::Default().vmfunc_switch);
  ASSERT_TRUE(monitor_->FastReturn(0).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), os_);
  EXPECT_EQ(monitor_->stats().fast_transitions, 2u);
}

TEST_F(MonitorTest, HardwareAlwaysConsistentWithCapabilities) {
  const CapId handle = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/false);
  ASSERT_TRUE(*monitor_->AuditHardwareConsistency());
  ASSERT_TRUE(monitor_->ShareMemory(0, OsMemoryCap(), handle, AddrRange{32 * kMiB, kMiB},
                                    Perms(Perms::kRW), CapRights{}, RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(*monitor_->AuditHardwareConsistency());
  ASSERT_TRUE(monitor_->DestroyDomain(0, handle).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(MonitorTest, ApiCallsAreCounted) {
  const uint64_t calls_before = monitor_->stats().TotalCalls();
  (void)monitor_->CreateDomain(0, "x");
  EXPECT_EQ(monitor_->stats().TotalCalls(), calls_before + 1);
  EXPECT_EQ(monitor_->stats().api_calls[static_cast<size_t>(ApiOp::kCreateDomain)], 1u);
}

TEST_F(MonitorTest, EnumerateListsResources) {
  const CapId handle = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/true);
  const auto resources = monitor_->Enumerate(0, handle);
  ASSERT_TRUE(resources.ok());
  bool has_memory = false;
  bool has_core = false;
  for (const ResourceClaim& claim : *resources) {
    if (claim.kind == ResourceKind::kMemory) {
      has_memory = true;
      EXPECT_EQ(claim.ref_count, 1u);  // granted exclusively
    }
    if (claim.kind == ResourceKind::kCpuCore) {
      has_core = true;
      EXPECT_EQ(claim.ref_count, 2u);  // shared with the OS
    }
  }
  EXPECT_TRUE(has_memory);
  EXPECT_TRUE(has_core);
}


TEST_F(MonitorTest, ExclusiveCoreIsSchedulingGuarantee) {
  // §4.1: capabilities "ensure exclusive access to a CPU core" and "expose
  // denial of service". A tenant that holds a core EXCLUSIVELY (attested
  // refcount 1) knows no other domain can ever be scheduled onto it: the
  // monitor refuses transitions for domains without the core capability.
  const CapId tenant = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/false);
  // Move core 2 exclusively to the tenant (grant, not share).
  ASSERT_TRUE(monitor_
                  ->GrantUnit(0, OsUnitCap(ResourceKind::kCpuCore, 2), tenant,
                              CapRights{}, RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->Seal(0, tenant).ok());
  const auto report = monitor_->AttestDomain(0, tenant, 1);
  ASSERT_TRUE(report.ok());
  for (const ResourceClaim& claim : report->resources) {
    if (claim.kind == ResourceKind::kCpuCore && claim.unit == 2) {
      EXPECT_EQ(claim.ref_count, 1u);  // the attested guarantee
    }
  }
  // A second tenant cannot be scheduled onto core 2...
  const CapId intruder = MakeChildDomain(32 * kMiB, kMiB, /*seal=*/true);
  EXPECT_EQ(monitor_->Transition(2, intruder).code(), ErrorCode::kTransitionDenied);
  // ... while the rightful owner can.
  EXPECT_TRUE(monitor_->Transition(2, tenant).ok());
  EXPECT_TRUE(monitor_->ReturnFromDomain(2).ok());
}

// The same lifecycle on the RISC-V / PMP machine.
class RiscVMonitorTest : public MonitorTest {
 protected:
  RiscVMonitorTest() : MonitorTest(IsaArch::kRiscV) {}
};

TEST_F(RiscVMonitorTest, LifecycleOnPmpBackend) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeChildDomain(base, kMiB, /*seal=*/true);
  const DomainId child = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);

  EXPECT_FALSE(machine_.CheckedRead64(0, base).ok());
  ASSERT_TRUE(monitor_->Transition(0, handle).ok());
  EXPECT_EQ(monitor_->CurrentDomain(0), child);
  EXPECT_TRUE(machine_.CheckedWrite64(0, base, 7).ok());
  // The child cannot touch OS memory.
  EXPECT_FALSE(machine_.CheckedRead64(0, 32 * kMiB).ok());
  // ... nor the monitor (guard entry).
  EXPECT_FALSE(machine_.CheckedRead64(0, 0x1000).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(0).ok());
  EXPECT_TRUE(machine_.CheckedRead64(0, 32 * kMiB).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(RiscVMonitorTest, FastPathUnavailable) {
  const CapId handle = MakeChildDomain(16 * kMiB, kMiB, /*seal=*/true);
  EXPECT_EQ(monitor_->RegisterFastTransition(0, handle).code(), ErrorCode::kUnimplemented);
}

TEST_F(RiscVMonitorTest, FragmentedLayoutExhaustsPmp) {
  // Share many discontiguous single pages into one domain until the PMP
  // entry budget is exceeded: the monitor must reject the share and roll the
  // capability back.
  const auto created = monitor_->CreateDomain(0, "fragmented");
  ASSERT_TRUE(created.ok());
  const CapId os_mem = OsMemoryCap();
  int accepted = 0;
  Status last = OkStatus();
  for (int i = 0; i < 20; ++i) {
    // Non-adjacent, NAPOT-compatible single pages.
    const AddrRange page{16 * kMiB + static_cast<uint64_t>(i) * 2 * kPageSize, kPageSize};
    last = monitor_->ShareMemory(0, os_mem, created->handle, page, Perms(Perms::kRW),
                                 CapRights{}, RevocationPolicy{})
               .status();
    if (!last.ok()) {
      break;
    }
    ++accepted;
  }
  EXPECT_EQ(last.code(), ErrorCode::kPmpExhausted);
  EXPECT_EQ(accepted, PmpBackend::kDomainEntryBudget);
  // After the rollback the engine and hardware still agree.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

}  // namespace
}  // namespace tyche
