// Copyright 2026 The Tyche Reproduction Authors.
// Online invariant watchdog (src/monitor/watchdog.h): the first LIVE use of
// the audit machinery. The tests stage silent corruption -- state flipped
// without any operation failing, the class of bug no error path can see --
// through the fault framework's non-sweep sites, then assert the watchdog
// (a) detects it within the configured dispatch interval, (b) flips the
// exported health gauge, and (c) produces a flight-recorder capture whose
// span id names the violating dispatch.

#include "src/monitor/watchdog.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/monitor/dispatch.h"
#include "src/os/testbed.h"
#include "src/support/faults.h"
#include "src/support/flight_recorder.h"
#include "src/support/journal.h"

namespace tyche {
namespace {

JournalRecord MakeRecord(uint64_t span, uint32_t domain) {
  JournalRecord record;
  record.span = span;
  record.event = static_cast<uint8_t>(JournalEvent::kDispatch);
  record.domain = domain;
  return record;
}

// ===== Unit level: one watchdog over hand-built journal/engine state =====

class WatchdogUnitTest : public ::testing::Test {
 protected:
  WatchdogUnitTest() : flight_(nullptr, nullptr), watchdog_(&journal_, &engine_, &flight_) {}

  std::vector<FlightRecord> WatchdogCaptures() {
    std::vector<FlightRecord> out;
    for (const FlightRecord& record : flight_.Snapshot()) {
      if (record.reason == "watchdog") {
        out.push_back(record);
      }
    }
    return out;
  }

  Journal journal_;
  CapabilityEngine engine_;
  FlightRecorder flight_;
  InvariantWatchdog watchdog_;
};

TEST_F(WatchdogUnitTest, DisabledIntervalNeverChecks) {
  ASSERT_EQ(watchdog_.interval(), 0u);
  for (int i = 0; i < 100; ++i) {
    watchdog_.MaybeTick(/*op=*/1, /*span=*/static_cast<uint64_t>(i));
  }
  EXPECT_EQ(watchdog_.checks(), 0u);
  EXPECT_TRUE(watchdog_.healthy());
}

TEST_F(WatchdogUnitTest, TickHonorsInterval) {
  watchdog_.set_interval(4);
  for (int i = 0; i < 8; ++i) {
    watchdog_.MaybeTick(1, 0);
  }
  EXPECT_EQ(watchdog_.checks(), 2u);  // dispatches 4 and 8
  EXPECT_TRUE(watchdog_.healthy());
  EXPECT_EQ(watchdog_.violations(), 0u);
}

TEST_F(WatchdogUnitTest, CleanJournalStaysHealthyAcrossIncrementalChecks) {
  for (uint64_t i = 0; i < 16; ++i) {
    (void)journal_.Append(MakeRecord(i, 1));
    watchdog_.CheckNow(1, i);
  }
  EXPECT_TRUE(watchdog_.chain_healthy());
  EXPECT_EQ(watchdog_.violations(), 0u);
}

TEST_F(WatchdogUnitTest, ChainTamperDetectedStickyWithCapture) {
  (void)journal_.Append(MakeRecord(1, 1));
  watchdog_.CheckNow(1, 1);
  ASSERT_TRUE(watchdog_.chain_healthy());

  {
    // Flip a bit in the live chain head, silently, on the next append.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kJournalHeadTamper, 1));
    (void)journal_.Append(MakeRecord(2, 1));
  }
  watchdog_.CheckNow(/*op=*/7, /*span=*/42);
  EXPECT_FALSE(watchdog_.chain_healthy());
  EXPECT_FALSE(watchdog_.healthy());
  EXPECT_EQ(watchdog_.violations(), 1u);

  const auto captures = WatchdogCaptures();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].span, 42u);
  EXPECT_EQ(captures[0].op, 7u);
  EXPECT_NE(captures[0].detail.find("journal_chain"), std::string::npos);

  // Sticky: the broken chain is not re-verified (and not re-captured) on
  // every subsequent tick.
  watchdog_.CheckNow(7, 43);
  EXPECT_EQ(watchdog_.violations(), 1u);
  EXPECT_EQ(WatchdogCaptures().size(), 1u);
}

TEST_F(WatchdogUnitTest, OwnedIndexDesyncDetected) {
  engine_.RegisterDomain(1, CapabilityEngine::kNoCreator);
  ASSERT_TRUE(
      engine_.MintMemory(1, AddrRange{0x1000, 0x1000}, Perms(Perms::kRW), CapRights(CapRights::kAll)).ok());
  watchdog_.CheckNow(1, 1);
  ASSERT_TRUE(watchdog_.index_healthy());

  {
    // The next capability insertion silently skips the per-owner index.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kEngineOwnedDesync, 1));
    ASSERT_TRUE(
        engine_.MintMemory(1, AddrRange{0x3000, 0x1000}, Perms(Perms::kRW), CapRights(CapRights::kAll))
            .ok());
  }
  watchdog_.CheckNow(/*op=*/9, /*span=*/77);
  EXPECT_FALSE(watchdog_.index_healthy());
  EXPECT_EQ(watchdog_.violations(), 1u);
  const auto captures = WatchdogCaptures();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].span, 77u);
  EXPECT_NE(captures[0].detail.find("owned_index"), std::string::npos);
}

// Transient backend check: the gauge recovers when the fail-safe count
// returns to zero, and only the healthy->unhealthy edge captures.
TEST_F(WatchdogUnitTest, BackendFailsafeIsTransientAndEdgeTriggered) {
  struct StubBackend : Backend {
    Status CreateDomainContext(DomainId, uint16_t) override { return OkStatus(); }
    Status DestroyDomainContext(DomainId) override { return OkStatus(); }
    Status SyncMemory(DomainId, const AddrRange&) override { return OkStatus(); }
    Status AttachDevice(DomainId, uint16_t) override { return OkStatus(); }
    Status DetachDevice(DomainId, uint16_t) override { return OkStatus(); }
    Status BindCore(DomainId, CoreId) override { return OkStatus(); }
    Status RegisterFastPath(DomainId, CoreId) override { return OkStatus(); }
    Status FastBindCore(DomainId, CoreId) override { return OkStatus(); }
    void FlushDomain(DomainId) override {}
    Result<bool> ValidateAgainst(const CapabilityEngine&, DomainId) override {
      return true;
    }
    const char* name() const override { return "stub"; }
    using Backend::NoteFailsafeCleared;
    using Backend::NoteFailsafeEntered;
  };
  StubBackend backend;
  watchdog_.set_backend(&backend);

  watchdog_.CheckNow(1, 1);
  EXPECT_TRUE(watchdog_.backend_healthy());

  backend.NoteFailsafeEntered();
  watchdog_.CheckNow(1, 2);
  EXPECT_FALSE(watchdog_.backend_healthy());
  EXPECT_EQ(WatchdogCaptures().size(), 1u);
  watchdog_.CheckNow(1, 3);  // still dirty: no second capture
  EXPECT_EQ(WatchdogCaptures().size(), 1u);

  backend.NoteFailsafeCleared();
  watchdog_.CheckNow(1, 4);
  EXPECT_TRUE(watchdog_.backend_healthy());  // transient: recovered

  backend.NoteFailsafeEntered();
  watchdog_.CheckNow(1, 5);  // fresh edge: captures again
  EXPECT_EQ(WatchdogCaptures().size(), 2u);
}

// ===== Integration level: corruption injected under live dispatch =====

std::vector<FlightRecord> CapturesWithReason(Monitor& monitor, const std::string& reason) {
  std::vector<FlightRecord> out;
  for (const FlightRecord& record : monitor.flight_recorder().Snapshot()) {
    if (record.reason == reason) {
      out.push_back(record);
    }
  }
  return out;
}

TEST(WatchdogDispatchTest, ChainTamperCaughtByViolatingDispatchAtIntervalOne) {
  auto testbed = Testbed::Create(TestbedOptions{});
  ASSERT_TRUE(testbed.ok());
  Monitor& monitor = testbed->monitor();
  monitor.EnableWatchdog(1);

  auto poll = [&] {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
    return Dispatch(&monitor, 0, regs);
  };
  poll();
  ASSERT_TRUE(monitor.watchdog().healthy());
  ASSERT_GE(monitor.watchdog().checks(), 1u);

  {
    // The journal record of the NEXT dispatch flips a chain-head bit as it
    // lands; that dispatch's own end-of-call tick must then catch it.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kJournalHeadTamper, 1));
    poll();
  }
  EXPECT_FALSE(monitor.watchdog().chain_healthy());
  EXPECT_GE(monitor.watchdog().violations(), 1u);

  // The capture's span id names the violating dispatch: with interval 1 the
  // detecting tick runs inside that same dispatch, and the fault-site delta
  // capture (taken by the dispatcher for the same call) pins its span.
  const auto watchdog_captures = CapturesWithReason(monitor, "watchdog");
  const auto fault_captures = CapturesWithReason(monitor, "fault_site");
  ASSERT_EQ(watchdog_captures.size(), 1u);
  ASSERT_EQ(fault_captures.size(), 1u);
  EXPECT_NE(watchdog_captures[0].span, 0u);
  EXPECT_EQ(watchdog_captures[0].span, fault_captures[0].span);
  EXPECT_NE(watchdog_captures[0].detail.find("journal_chain"), std::string::npos);

  // The health gauge is exported and flipped.
  const std::string metrics = monitor.ExportMetrics();
  EXPECT_NE(metrics.find("tyche_watchdog_healthy"), std::string::npos);
  bool saw_flipped_gauge = false;
  std::istringstream lines(metrics);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("tyche_watchdog_healthy") != std::string::npos &&
        line.find("journal_chain") != std::string::npos) {
      saw_flipped_gauge = line.size() >= 2 && line.substr(line.size() - 2) == " 0";
    }
  }
  EXPECT_TRUE(saw_flipped_gauge);
}

TEST(WatchdogDispatchTest, OwnedIndexDesyncCaughtWithinInterval) {
  auto testbed = Testbed::Create(TestbedOptions{});
  ASSERT_TRUE(testbed.ok());
  Monitor& monitor = testbed->monitor();
  constexpr uint64_t kInterval = 4;
  monitor.EnableWatchdog(kInterval);

  auto poll = [&] {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
    return Dispatch(&monitor, 0, regs);
  };

  {
    // The management capability minted by this create skips the per-owner
    // index -- silent desync, the op itself succeeds.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kEngineOwnedDesync, 1));
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(ApiOp::kCreateDomain);
    const ApiResult created = Dispatch(&monitor, 0, regs);
    ASSERT_EQ(created.error, 0u);
  }

  // Detection within N further dispatches, by construction of the interval.
  for (uint64_t i = 0; i < kInterval; ++i) {
    poll();
  }
  EXPECT_FALSE(monitor.watchdog().index_healthy());
  EXPECT_GE(monitor.watchdog().violations(), 1u);
  const auto captures = CapturesWithReason(monitor, "watchdog");
  ASSERT_GE(captures.size(), 1u);
  EXPECT_NE(captures[0].detail.find("owned_index"), std::string::npos);
}

TEST(WatchdogDispatchTest, HealthyWorkloadExportsCleanGauges) {
  auto testbed = Testbed::Create(TestbedOptions{});
  ASSERT_TRUE(testbed.ok());
  Monitor& monitor = testbed->monitor();
  monitor.EnableWatchdog(2);

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kCreateDomain);
  ASSERT_EQ(Dispatch(&monitor, 0, regs).error, 0u);
  regs = ApiRegs{};
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (int i = 0; i < 8; ++i) {
    Dispatch(&monitor, 0, regs);
  }
  EXPECT_TRUE(monitor.watchdog().healthy());
  EXPECT_GE(monitor.watchdog().checks(), 4u);
  EXPECT_EQ(monitor.watchdog().violations(), 0u);
  EXPECT_TRUE(CapturesWithReason(monitor, "watchdog").empty());

  const std::string metrics = monitor.ExportMetrics();
  EXPECT_NE(metrics.find("tyche_watchdog_checks_total"), std::string::npos);
}

}  // namespace
}  // namespace tyche
