// Copyright 2026 The Tyche Reproduction Authors.
// Cross-domain interrupt routing (§4.1 exploration feature) and the
// scrub-on-exit transition policy (side-channel mitigation).

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class InterruptTest : public BootedMachineTest {
 protected:
  InterruptTest() : BootedMachineTest(FixtureOptions{.with_nic = true}) {}

  // Builds a sealed domain owning the NIC exclusively, with a 1 MiB window.
  CapId MakeDeviceDomain() {
    const auto created = monitor_->CreateDomain(0, "driver");
    EXPECT_TRUE(created.ok());
    const AddrRange window = Scratch(kMiB, kMiB);
    EXPECT_TRUE(monitor_
                    ->GrantMemory(0, OsMemCap(window), created->handle, window,
                                  Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                  RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_
                    ->ShareUnit(0, OsCoreCap(1), created->handle, CapRights{},
                                RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_
                    ->GrantUnit(0, OsDeviceCap(kNicBdf.value), created->handle,
                                CapRights(CapRights::kGrant), RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_->SetEntryPoint(0, created->handle, window.base).ok());
    return created->handle;
  }
};

TEST_F(InterruptTest, UnroutedInterruptsAreDropped) {
  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  EXPECT_FALSE(machine_->interrupts().Raise(kNicBdf, 42));
  EXPECT_EQ(machine_->interrupts().stats().dropped, 1u);
  (void)nic;
}

TEST_F(InterruptTest, ExclusiveOwnerRoutesAndReceives) {
  const CapId handle = MakeDeviceDomain();
  const DomainId driver = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);

  // The driver routes its own device's interrupts to itself (from inside).
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  const CapId device_cap =
      *FindUnitCap(*monitor_, driver, ResourceKind::kPciDevice, kNicBdf.value);
  ASSERT_TRUE(monitor_->RouteInterrupt(1, device_cap).ok());

  // The NIC completes a copy inside the driver's window and raises vector 5.
  const AddrRange window = monitor_->engine().DomainMemoryMap(driver)[0].range;
  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  ASSERT_TRUE(nic->CopyAndNotify(machine_.get(), window.base, window.base + kPageSize,
                                 256, /*vector=*/5)
                  .ok());

  const auto interrupt = monitor_->TakeInterrupt(1);
  ASSERT_TRUE(interrupt.ok());
  EXPECT_EQ(interrupt->vector, 5u);
  EXPECT_EQ(interrupt->source, kNicBdf);
  EXPECT_EQ(monitor_->TakeInterrupt(1).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // The OS does NOT see the driver's interrupts.
  EXPECT_EQ(monitor_->TakeInterrupt(0).code(), ErrorCode::kNotFound);
}

TEST_F(InterruptTest, RoutingRequiresExclusiveOwnership) {
  // The OS shares (not grants) the NIC with a domain: refcount 2, so the
  // domain cannot claim its interrupt stream.
  const auto created = monitor_->CreateDomain(0, "shared-holder");
  ASSERT_TRUE(created.ok());
  const AddrRange window = Scratch(kMiB, kMiB);
  ASSERT_TRUE(monitor_
                  ->GrantMemory(0, OsMemCap(window), created->handle, window,
                                Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), created->handle, CapRights{},
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsDeviceCap(kNicBdf.value), created->handle, CapRights{},
                              RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, window.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, created->handle).ok());
  const DomainId domain = monitor_->CurrentDomain(1);
  const CapId device_cap =
      *FindUnitCap(*monitor_, domain, ResourceKind::kPciDevice, kNicBdf.value);
  EXPECT_EQ(monitor_->RouteInterrupt(1, device_cap).code(), ErrorCode::kPolicyViolation);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
}

TEST_F(InterruptTest, RouteCannotClaimForeignDevice) {
  // A domain without the device capability cannot route its interrupts.
  const auto created = monitor_->CreateDomain(0, "thief");
  ASSERT_TRUE(created.ok());
  // The OS's own cap id, used by the wrong caller... the thief has no cap
  // at all, so use a bogus id and the OS's id from the wrong domain.
  EXPECT_FALSE(monitor_->RouteInterrupt(1, CapId{987654}).ok());
}

TEST_F(InterruptTest, RevokingDeviceTearsDownRoute) {
  const CapId handle = MakeDeviceDomain();
  const DomainId driver = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  const CapId device_cap =
      *FindUnitCap(*monitor_, driver, ResourceKind::kPciDevice, kNicBdf.value);
  ASSERT_TRUE(monitor_->RouteInterrupt(1, device_cap).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // The OS revokes the device grant: route must die with the ownership.
  CapId granted = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == driver && cap.kind == ResourceKind::kPciDevice) {
      granted = cap.id;
    }
  });
  ASSERT_TRUE(monitor_->Revoke(0, granted).ok());
  EXPECT_FALSE(machine_->interrupts().Raise(kNicBdf, 7));  // dropped: no route
  EXPECT_FALSE(machine_->interrupts().RouteOf(kNicBdf).has_value());
}

TEST_F(InterruptTest, DestroyDomainPurgesPendingInterrupts) {
  const CapId handle = MakeDeviceDomain();
  const DomainId driver = static_cast<DomainId>((*monitor_->engine().Get(handle))->unit);
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  const CapId device_cap =
      *FindUnitCap(*monitor_, driver, ResourceKind::kPciDevice, kNicBdf.value);
  ASSERT_TRUE(monitor_->RouteInterrupt(1, device_cap).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  ASSERT_TRUE(machine_->interrupts().Raise(kNicBdf, 9));
  EXPECT_EQ(machine_->interrupts().PendingCount(driver), 1u);

  ASSERT_TRUE(monitor_->DestroyDomain(0, handle).ok());
  EXPECT_EQ(machine_->interrupts().PendingCount(driver), 0u);
  EXPECT_FALSE(machine_->interrupts().RouteOf(kNicBdf).has_value());
}

class TransitionPolicyTest : public BootedMachineTest {
 protected:
  Result<CreateDomainResult> MakeRunnable(const std::string& name, uint64_t offset,
                                          bool scrub) {
    auto created = monitor_->CreateDomain(0, name);
    if (!created.ok()) {
      return created;
    }
    const AddrRange window = Scratch(offset, kMiB);
    TYCHE_RETURN_IF_ERROR(monitor_
                              ->GrantMemory(0, OsMemCap(window), created->handle, window,
                                            Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                            RevocationPolicy{})
                              .status());
    TYCHE_RETURN_IF_ERROR(monitor_
                              ->ShareUnit(0, OsCoreCap(1), created->handle, CapRights{},
                                          RevocationPolicy{})
                              .status());
    TYCHE_RETURN_IF_ERROR(monitor_->SetEntryPoint(0, created->handle, window.base));
    if (scrub) {
      TYCHE_RETURN_IF_ERROR(monitor_->SetTransitionPolicy(0, created->handle, true));
    }
    TYCHE_RETURN_IF_ERROR(monitor_->Seal(0, created->handle));
    return created;
  }
};

TEST_F(TransitionPolicyTest, ScrubOnExitChargesAndFlushes) {
  const auto plain = MakeRunnable("plain", kMiB, /*scrub=*/false);
  const auto scrubbed = MakeRunnable("scrubbed", 4 * kMiB, /*scrub=*/true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(scrubbed.ok());

  // Round trip into the plain domain.
  uint64_t before = machine_->cycles().cycles();
  ASSERT_TRUE(monitor_->Transition(1, plain->handle).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  const uint64_t plain_cost = machine_->cycles().cycles() - before;

  // Round trip into the scrub-on-exit domain: one extra scrub on the way
  // out (the OS does not have the policy, so entering charges nothing).
  const uint64_t flushes_before = machine_->cpu(1).tlb().stats().flushes;
  before = machine_->cycles().cycles();
  ASSERT_TRUE(monitor_->Transition(1, scrubbed->handle).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  const uint64_t scrub_cost = machine_->cycles().cycles() - before;

  EXPECT_EQ(scrub_cost, plain_cost + CostModel::Default().microarch_scrub +
                            CostModel::Default().tlb_flush);
  EXPECT_GT(machine_->cpu(1).tlb().stats().flushes, flushes_before);
}

TEST_F(TransitionPolicyTest, ScrubDomainsExcludedFromFastPath) {
  const auto scrubbed = MakeRunnable("scrubbed", kMiB, /*scrub=*/true);
  ASSERT_TRUE(scrubbed.ok());
  EXPECT_EQ(monitor_->RegisterFastTransition(1, scrubbed->handle).code(),
            ErrorCode::kPolicyViolation);
  const auto plain = MakeRunnable("plain", 4 * kMiB, /*scrub=*/false);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(monitor_->RegisterFastTransition(1, plain->handle).ok());
}

TEST_F(TransitionPolicyTest, PolicyFrozenAtSeal) {
  const auto sealed = MakeRunnable("sealed", kMiB, /*scrub=*/false);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(monitor_->SetTransitionPolicy(0, sealed->handle, true).code(),
            ErrorCode::kDomainSealed);
}

}  // namespace
}  // namespace tyche
