// Copyright 2026 The Tyche Reproduction Authors.
// Backend-level tests: effect projection, PMP compilation, device binding.

#include <gtest/gtest.h>

#include "src/monitor/pmp_backend.h"
#include "src/monitor/vtx_backend.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

using MappedRegion = CapabilityEngine::MappedRegion;

TEST(PmpCompileTest, NapotRegionCostsOneEntry) {
  const std::vector<MappedRegion> map = {
      {AddrRange{16 * kMiB, kMiB}, Perms(Perms::kRWX)},
  };
  const auto program = PmpBackend::Compile(map, 15);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->entries.size(), 1u);
  EXPECT_EQ(program->entries[0].mode, PmpAddressMode::kNapot);
}

TEST(PmpCompileTest, IrregularRegionCostsTorPair) {
  const std::vector<MappedRegion> map = {
      {AddrRange{4 * kMiB, 12 * kMiB}, Perms(Perms::kRW)},  // 12 MiB: not pow2
  };
  const auto program = PmpBackend::Compile(map, 15);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->entries.size(), 2u);
  EXPECT_EQ(program->entries[0].mode, PmpAddressMode::kOff);
  EXPECT_EQ(program->entries[1].mode, PmpAddressMode::kTor);
}

TEST(PmpCompileTest, MisalignedPowerOfTwoFallsBackToTor) {
  // Size is a power of two but the base is not size-aligned.
  const std::vector<MappedRegion> map = {
      {AddrRange{3 * kMiB, 2 * kMiB}, Perms(Perms::kRW)},
  };
  const auto program = PmpBackend::Compile(map, 15);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->entries.size(), 2u);
}

TEST(PmpCompileTest, BudgetEnforced) {
  std::vector<MappedRegion> map;
  for (int i = 0; i < 8; ++i) {
    map.push_back({AddrRange{static_cast<uint64_t>(i) * 2 * kMiB, kMiB},
                   Perms(Perms::kRead)});
  }
  EXPECT_TRUE(PmpBackend::Compile(map, 8).ok());
  EXPECT_EQ(PmpBackend::Compile(map, 7).code(), ErrorCode::kPmpExhausted);
}

TEST(PmpCompileTest, MixedLayoutCounting) {
  const std::vector<MappedRegion> map = {
      {AddrRange{0, kMiB}, Perms(Perms::kRead)},            // NAPOT: 1
      {AddrRange{3 * kMiB, 5 * kMiB}, Perms(Perms::kRW)},   // TOR: 2
      {AddrRange{16 * kMiB, 4 * kMiB}, Perms(Perms::kRX)},  // NAPOT: 1
  };
  const auto program = PmpBackend::Compile(map, 4);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->entries.size(), 4u);
  EXPECT_FALSE(PmpBackend::Compile(map, 3).ok());
}

class VtxBackendTest : public ::testing::Test {
 protected:
  VtxBackendTest()
      : machine_([] {
          MachineConfig config;
          config.memory_bytes = 64ull << 20;
          config.num_cores = 2;
          return config;
        }()),
        metadata_(AddrRange{0, 4ull << 20}) {
    engine_.RegisterDomain(0, CapabilityEngine::kNoCreator);
    engine_.RegisterDomain(1, 0);
    backend_ = std::make_unique<VtxBackend>(&machine_, &engine_, &metadata_);
    root_ = *engine_.MintMemory(0, AddrRange{4 * kMiB, 60 * kMiB}, Perms(Perms::kRWX),
                                CapRights(CapRights::kAll));
  }

  Machine machine_;
  FrameAllocator metadata_;
  CapabilityEngine engine_;
  std::unique_ptr<VtxBackend> backend_;
  CapId root_ = kInvalidCap;
};

TEST_F(VtxBackendTest, SyncProjectsCapabilities) {
  ASSERT_TRUE(backend_->CreateDomainContext(0, 1).ok());
  ASSERT_TRUE(backend_->SyncMemory(0, AddrRange{4 * kMiB, 60 * kMiB}).ok());
  const NestedPageTable* ept = backend_->DomainEpt(0);
  ASSERT_NE(ept, nullptr);
  EXPECT_EQ(ept->mapped_pages(), 60 * kMiB / kPageSize);
  EXPECT_TRUE(*backend_->ValidateAgainst(engine_, 0));
}

TEST_F(VtxBackendTest, SyncRemovesRevokedAccess) {
  ASSERT_TRUE(backend_->CreateDomainContext(0, 1).ok());
  ASSERT_TRUE(backend_->CreateDomainContext(1, 2).ok());
  ASSERT_TRUE(backend_->SyncMemory(0, AddrRange{4 * kMiB, 60 * kMiB}).ok());

  CapEffects effects;
  const AddrRange sub{16 * kMiB, kMiB};
  const CapId child = *engine_.ShareMemory(0, root_, 1, sub, Perms(Perms::kRW),
                                           CapRights(CapRights::kAll), RevocationPolicy{},
                                           &effects);
  ASSERT_TRUE(backend_->SyncMemory(1, sub).ok());
  EXPECT_EQ(backend_->DomainEpt(1)->mapped_pages(), kMiB / kPageSize);
  EXPECT_TRUE(*backend_->ValidateAgainst(engine_, 1));

  ASSERT_TRUE(engine_.Revoke(0, child).ok());
  ASSERT_TRUE(backend_->SyncMemory(1, sub).ok());
  EXPECT_EQ(backend_->DomainEpt(1)->mapped_pages(), 0u);
  EXPECT_TRUE(*backend_->ValidateAgainst(engine_, 1));
}

TEST_F(VtxBackendTest, ValidateDetectsRogueMapping) {
  ASSERT_TRUE(backend_->CreateDomainContext(1, 2).ok());
  // Map a page into domain 1's EPT that no capability justifies (simulating
  // a compromised executive). The audit must catch it.
  NestedPageTable* ept = const_cast<NestedPageTable*>(backend_->DomainEpt(1));
  ASSERT_TRUE(ept->MapPage(8 * kMiB, 8 * kMiB, Perms(Perms::kRW)).ok());
  EXPECT_FALSE(*backend_->ValidateAgainst(engine_, 1));
}

TEST_F(VtxBackendTest, FastPathRequiresRegistration) {
  ASSERT_TRUE(backend_->CreateDomainContext(0, 1).ok());
  EXPECT_EQ(backend_->FastBindCore(0, 0).code(), ErrorCode::kTransitionDenied);
  ASSERT_TRUE(backend_->RegisterFastPath(0, 0).ok());
  EXPECT_TRUE(backend_->FastBindCore(0, 0).ok());
  EXPECT_EQ(machine_.CoreEpt(0), backend_->DomainEpt(0));
}

TEST_F(VtxBackendTest, DeviceAttachFollowsDomain) {
  ASSERT_TRUE(backend_->CreateDomainContext(0, 1).ok());
  ASSERT_TRUE(backend_->AttachDevice(0, PciBdf(0, 3, 0).value).ok());
  EXPECT_EQ(machine_.iommu().ContextOf(PciBdf(0, 3, 0)), backend_->DomainEpt(0));
  ASSERT_TRUE(backend_->DetachDevice(0, PciBdf(0, 3, 0).value).ok());
  EXPECT_EQ(machine_.iommu().ContextOf(PciBdf(0, 3, 0)), nullptr);
  EXPECT_EQ(backend_->DetachDevice(0, PciBdf(0, 3, 0).value).code(), ErrorCode::kNotFound);
}

TEST_F(VtxBackendTest, DestroyReleasesTableFrames) {
  ASSERT_TRUE(backend_->CreateDomainContext(0, 1).ok());
  ASSERT_TRUE(backend_->SyncMemory(0, AddrRange{4 * kMiB, 16 * kMiB}).ok());
  const uint64_t frames_used = metadata_.total_frames() - metadata_.free_frames();
  EXPECT_GT(frames_used, 0u);
  ASSERT_TRUE(backend_->DestroyDomainContext(0).ok());
  EXPECT_EQ(metadata_.free_frames(), metadata_.total_frames());
}

}  // namespace
}  // namespace tyche
