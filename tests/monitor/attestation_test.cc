// Copyright 2026 The Tyche Reproduction Authors.
// The two-tier attestation protocol end to end, including the negative
// cases: wrong monitor image, tampered reports, stale nonces.

#include "src/monitor/attestation.h"

#include <gtest/gtest.h>

#include "src/monitor/boot.h"
#include "src/monitor/monitor.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

class AttestationTest : public ::testing::Test {
 protected:
  AttestationTest() {
    MachineConfig config;
    config.memory_bytes = 64ull << 20;
    config.num_cores = 2;
    machine_ = std::make_unique<Machine>(config);
    firmware_ = DemoFirmwareImage();
    image_ = DemoMonitorImage();
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = image_;
    auto outcome = MeasuredBoot(machine_.get(), params);
    EXPECT_TRUE(outcome.ok());
    monitor_ = std::move(outcome->monitor);
    os_ = outcome->initial_domain;
    golden_firmware_ = outcome->firmware_measurement;
    golden_monitor_ = outcome->monitor_measurement;
  }

  RemoteVerifier MakeVerifier() {
    return RemoteVerifier(machine_->tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  }

  // Builds a minimal sealed enclave and returns (handle, expected golden
  // measurement computed offline like a customer would).
  CapId MakeSealedEnclave(uint64_t base) {
    auto created = monitor_->CreateDomain(0, "enclave");
    EXPECT_TRUE(created.ok());
    CapId os_mem = kInvalidCap;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == os_ && cap.kind == ResourceKind::kMemory &&
          cap.range.size > 8 * kMiB) {
        os_mem = cap.id;
      }
    });
    EXPECT_TRUE(monitor_->GrantMemory(0, os_mem, created->handle, AddrRange{base, kMiB},
                                      Perms(Perms::kRWX), CapRights(CapRights::kAll),
                                      RevocationPolicy(RevocationPolicy::kObfuscate))
                    .ok());
    CapId os_core = kInvalidCap;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == os_ && cap.kind == ResourceKind::kCpuCore && cap.unit == 0) {
        os_core = cap.id;
      }
    });
    EXPECT_TRUE(monitor_->ShareUnit(0, os_core, created->handle, CapRights{},
                                    RevocationPolicy{})
                    .ok());
    EXPECT_TRUE(monitor_->SetEntryPoint(0, created->handle, base).ok());
    EXPECT_TRUE(monitor_->ExtendMeasurement(0, created->handle, AddrRange{base, kMiB}).ok());
    EXPECT_TRUE(monitor_->Seal(0, created->handle).ok());
    return created->handle;
  }

  std::vector<uint8_t> firmware_;
  std::vector<uint8_t> image_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Monitor> monitor_;
  DomainId os_ = kInvalidDomain;
  Digest golden_firmware_;
  Digest golden_monitor_;
};

TEST_F(AttestationTest, Tier1MonitorIdentityVerifies) {
  const auto identity = monitor_->Identity(/*nonce=*/0xabc);
  ASSERT_TRUE(identity.ok());
  EXPECT_TRUE(MakeVerifier().VerifyMonitor(*identity, 0xabc).ok());
}

TEST_F(AttestationTest, Tier1RejectsStaleNonce) {
  const auto identity = monitor_->Identity(1);
  EXPECT_EQ(MakeVerifier().VerifyMonitor(*identity, 2).code(),
            ErrorCode::kAttestationMismatch);
}

TEST_F(AttestationTest, Tier1RejectsWrongMonitorImage) {
  // A machine booted with a DIFFERENT monitor image cannot convince the
  // verifier holding the golden measurement.
  MachineConfig config;
  config.memory_bytes = 64ull << 20;
  Machine evil_machine(config);
  std::vector<uint8_t> evil_image = DemoMonitorImage();
  evil_image[0] ^= 0xff;  // one flipped byte: a backdoored monitor
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = evil_image;
  auto outcome = MeasuredBoot(&evil_machine, params);
  ASSERT_TRUE(outcome.ok());
  const auto identity = outcome->monitor->Identity(7);
  ASSERT_TRUE(identity.ok());
  // Verifier still holds the GOLDEN monitor measurement.
  RemoteVerifier verifier(evil_machine.tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  EXPECT_FALSE(verifier.VerifyMonitor(*identity, 7).ok());
}

TEST_F(AttestationTest, Tier1RejectsKeySubstitution) {
  // An attacker relaying a good quote cannot claim a different monitor key:
  // PCR1 binds the key hash.
  auto identity = *monitor_->Identity(3);
  identity.monitor_key = DeriveKeyPair(std::span<const uint8_t>(
                                           reinterpret_cast<const uint8_t*>("evil"), 4))
                             .pub;
  EXPECT_FALSE(MakeVerifier().VerifyMonitor(identity, 3).ok());
}

TEST_F(AttestationTest, Tier1MonitorKeyIsMeasurementBound) {
  // Different monitor image => different derived key (the seed is bound to
  // the measurement), so even the TPM-side key derivation isolates images.
  MachineConfig config;
  config.memory_bytes = 64ull << 20;
  Machine other_machine(config);
  std::vector<uint8_t> other_image = DemoMonitorImage();
  other_image[1] ^= 1;
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = other_image;
  auto outcome = MeasuredBoot(&other_machine, params);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->monitor->public_key() == monitor_->public_key());
}

TEST_F(AttestationTest, Tier2DomainReportVerifies) {
  const CapId handle = MakeSealedEnclave(16 * kMiB);
  const auto report = monitor_->AttestDomain(0, handle, /*nonce=*/42);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(MakeVerifier()
                  .VerifyDomain(*report, monitor_->public_key(), 42,
                                /*expected_measurement=*/nullptr)
                  .ok());
  EXPECT_TRUE(report->sealed);
  EXPECT_FALSE(report->measurement.IsZero());
}

TEST_F(AttestationTest, Tier2GoldenMeasurementMatchesOfflineComputation) {
  // A customer recomputes the expected measurement offline: content hash of
  // the measured range (as loaded), then the config hash. We reproduce the
  // monitor's computation independently here.
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeSealedEnclave(base);
  const auto report = *monitor_->AttestDomain(0, handle, 1);

  // Offline: measure content (zeros, since nothing was loaded)...
  Sha256 offline;
  const Digest content = Sha256::Hash(std::vector<uint8_t>(kMiB, 0));
  offline.UpdateValue(base);
  offline.UpdateValue(static_cast<uint64_t>(kMiB));
  offline.Update(std::span<const uint8_t>(content.bytes.data(), 32));
  // ...then the config: entry point + sorted resource list.
  offline.Update(std::string_view("tyche-config-v1"));
  offline.UpdateValue(base);
  // Memory cap first (kind 0), then the core cap (kind 1).
  offline.UpdateValue(static_cast<uint8_t>(ResourceKind::kMemory));
  offline.UpdateValue(base);
  offline.UpdateValue(static_cast<uint64_t>(kMiB));
  offline.UpdateValue(static_cast<uint64_t>(0));
  offline.UpdateValue(static_cast<uint8_t>(Perms::kRWX));
  offline.UpdateValue(static_cast<uint8_t>(ResourceKind::kCpuCore));
  offline.UpdateValue(static_cast<uint64_t>(0));
  offline.UpdateValue(static_cast<uint64_t>(0));
  offline.UpdateValue(static_cast<uint64_t>(0));
  offline.UpdateValue(static_cast<uint8_t>(0));
  const Digest expected = offline.Finalize();

  EXPECT_EQ(report.measurement, expected);
  EXPECT_TRUE(MakeVerifier()
                  .VerifyDomain(report, monitor_->public_key(), 1, &expected)
                  .ok());
}

TEST_F(AttestationTest, Tier2RejectsTamperedResources) {
  const CapId handle = MakeSealedEnclave(16 * kMiB);
  auto report = *monitor_->AttestDomain(0, handle, 42);
  // The untrusted OS relays the report but hides a sharing relationship.
  report.resources[0].ref_count = 1;
  report.resources[0].range.size += kPageSize;
  EXPECT_FALSE(
      MakeVerifier().VerifyDomain(report, monitor_->public_key(), 42, nullptr).ok());
}

TEST_F(AttestationTest, Tier2RejectsUnsealedDomain) {
  auto created = monitor_->CreateDomain(0, "unsealed");
  ASSERT_TRUE(created.ok());
  const auto report = monitor_->AttestDomain(0, created->handle, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(
      MakeVerifier().VerifyDomain(*report, monitor_->public_key(), 1, nullptr).ok());
}

TEST_F(AttestationTest, Tier2RefCountsExposeSharing) {
  const uint64_t base = 16 * kMiB;
  const CapId handle = MakeSealedEnclave(base);
  auto report = *monitor_->AttestDomain(0, handle, 5);
  EXPECT_TRUE(RemoteVerifier::MaxRefCount(report, 1));  // memory is exclusive
  EXPECT_FALSE(RemoteVerifier::AllResourcesExclusive(report));  // core is shared

  // Now build a domain whose memory is shared with the OS: the report must
  // show ref_count 2, and the customer's exclusivity policy must reject it.
  auto created = monitor_->CreateDomain(0, "leaky");
  ASSERT_TRUE(created.ok());
  CapId os_mem = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == os_ && cap.kind == ResourceKind::kMemory && cap.range.size > 8 * kMiB) {
      os_mem = cap.id;
    }
  });
  ASSERT_TRUE(monitor_->ShareMemory(0, os_mem, created->handle, AddrRange{32 * kMiB, kMiB},
                                    Perms(Perms::kRWX), CapRights{}, RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, created->handle, 32 * kMiB).ok());
  ASSERT_TRUE(monitor_->Seal(0, created->handle).ok());
  const auto leaky = *monitor_->AttestDomain(0, created->handle, 6);
  EXPECT_FALSE(RemoteVerifier::MaxRefCount(leaky, 1));
}

TEST_F(AttestationTest, ExpectedPcrHelpersMatchTpm) {
  const auto identity = *monitor_->Identity(9);
  EXPECT_EQ(*machine_->tpm().ReadPcr(Tpm::kPcrFirmware), ExpectedPcr0(golden_firmware_));
  EXPECT_EQ(*machine_->tpm().ReadPcr(Tpm::kPcrMonitor),
            ExpectedPcr1(golden_monitor_, identity.monitor_key));
}

}  // namespace
}  // namespace tyche
