// Copyright 2026 The Tyche Reproduction Authors.
// PMP fail-safe: when a capability mutation leaves a domain's layout
// inexpressible in the PMP entry budget, the backend must degrade to
// DENY-ALL for that domain (hardware enforces a subset of the tree, never
// stale access), and recover once the layout fits again.
//
// The tricky trigger is REVOCATION: revoking the middle capability of a
// merged region can SPLIT it and increase the entry count past the budget.

#include <gtest/gtest.h>

#include "src/monitor/pmp_backend.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class PmpFailsafeTest : public BootedMachineTest {
 protected:
  PmpFailsafeTest() : BootedMachineTest(FixtureOptions{.arch = IsaArch::kRiscV}) {}
};

TEST_F(PmpFailsafeTest, RevocationSplitNeverLeavesStaleAccess) {
  const auto created = monitor_->CreateDomain(0, "tight");
  ASSERT_TRUE(created.ok());
  const CapId handle = created->handle;

  // 13 disjoint NAPOT single pages: 13 entries. SHARED (not granted) so the
  // OS's own layout stays compact and expressible.
  std::vector<CapId> single_pages;
  for (int i = 0; i < 13; ++i) {
    const AddrRange page{Scratch(static_cast<uint64_t>(i) * 2 * kPageSize, 0).base,
                         kPageSize};
    const auto share = monitor_->ShareMemory(0, OsMemCap(page), handle, page,
                                             Perms(Perms::kRW), CapRights{},
                                             RevocationPolicy{});
    ASSERT_TRUE(share.ok()) << i << ": " << share.status().ToString();
    single_pages.push_back(*share);
  }
  // One merged 7-page region built from three grants (3p + 1p + 3p): the
  // merged map compiles to one TOR pair (2 entries). Total now 15 = budget.
  const uint64_t merged_base = Scratch(kMiB, 0).base;
  const AddrRange piece_a{merged_base, 3 * kPageSize};
  const AddrRange piece_b{merged_base + 3 * kPageSize, kPageSize};
  const AddrRange piece_c{merged_base + 4 * kPageSize, 3 * kPageSize};
  CapId bridge = kInvalidCap;
  for (const AddrRange& piece : {piece_a, piece_b, piece_c}) {
    const auto grant = monitor_->GrantMemory(0, OsMemCap(piece), handle, piece,
                                             Perms(Perms::kRW), CapRights(CapRights::kAll),
                                             RevocationPolicy{});
    ASSERT_TRUE(grant.ok()) << grant.status().ToString();
    if (piece.base == piece_b.base) {
      bridge = grant->granted;
    }
  }
  auto* backend = static_cast<PmpBackend*>(&monitor_->backend());
  EXPECT_EQ(*backend->DomainEntryCount(created->domain), 15);

  // Give the domain a core and run it, warming its PMP file.
  ASSERT_TRUE(monitor_
                  ->ShareUnit(0, OsCoreCap(1), handle, CapRights{}, RevocationPolicy{})
                  .ok());
  ASSERT_TRUE(monitor_->SetEntryPoint(0, handle, merged_base).ok());
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  EXPECT_TRUE(machine_->CheckedRead64(1, merged_base).ok());
  EXPECT_TRUE(machine_->CheckedRead64(1, piece_b.base).ok());

  // Revoke the bridge: the merged region splits into two TOR pairs
  // (15 - 2 + 4 = 17 > 15): inexpressible. The revocation itself reports
  // the backend failure...
  const Status revoke = monitor_->Revoke(0, bridge);
  EXPECT_EQ(revoke.code(), ErrorCode::kPmpExhausted);

  // ... but the CRITICAL property holds: the domain has NO stale access.
  // Fail-safe means deny-all, so even still-owned pages fault -- and the
  // revoked bridge page faults above all.
  EXPECT_FALSE(machine_->CheckedRead64(1, piece_b.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, merged_base).ok());
  EXPECT_EQ(*backend->DomainEntryCount(created->domain), 0);
  // Sound (subset) state passes the audit.
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());

  // Recovery: drop enough single pages that the layout fits again; the next
  // sync reinstates enforcement of exactly the remaining capabilities.
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  // Dropping the first page still leaves 16 required entries: the revoke
  // lands in the tree but the backend reports the layout is still too big.
  EXPECT_EQ(monitor_->Revoke(0, single_pages[0]).code(), ErrorCode::kPmpExhausted);
  // The second drop brings the layout to 15 entries: enforcement resumes.
  ASSERT_TRUE(monitor_->Revoke(0, single_pages[1]).ok());
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  EXPECT_TRUE(machine_->CheckedRead64(1, merged_base).ok());       // piece_a is back
  EXPECT_FALSE(machine_->CheckedRead64(1, piece_b.base).ok());     // bridge stays gone
  EXPECT_TRUE(machine_->CheckedRead64(1, piece_c.base).ok());      // piece_c is back
  EXPECT_FALSE(machine_->CheckedRead64(1, Scratch(0, 0).base).ok());  // dropped page gone
  EXPECT_GT(*backend->DomainEntryCount(created->domain), 0);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
}

// Regression: SyncMemory visits EVERY hart running the domain. It used to
// return after the first hart's rewrite, so a failure on a later hart was
// silently skipped -- leaving that core enforcing the stale (possibly
// revoked) program. Now the per-core failure propagates to the caller and
// the domain drops to deny-all on ALL harts: no torn split where one core
// runs the new program and another the old one.
TEST_F(PmpFailsafeTest, PerCoreWriteFailurePropagatesAndDeniesAllHarts) {
  const auto created = monitor_->CreateDomain(0, "twocore");
  ASSERT_TRUE(created.ok());
  const CapId handle = created->handle;
  const AddrRange page{Scratch(0, 0).base, kPageSize};
  ASSERT_TRUE(monitor_
                  ->ShareMemory(0, OsMemCap(page), handle, page, Perms(Perms::kRW),
                                CapRights{}, RevocationPolicy{})
                  .ok());
  for (const CoreId core : {CoreId{1}, CoreId{2}}) {
    ASSERT_TRUE(monitor_
                    ->ShareUnit(0, OsCoreCap(core), handle, CapRights{},
                                RevocationPolicy{})
                    .ok());
  }
  ASSERT_TRUE(monitor_->SetEntryPoint(0, handle, page.base).ok());
  ASSERT_TRUE(monitor_->Transition(1, handle).ok());
  ASSERT_TRUE(monitor_->Transition(2, handle).ok());
  EXPECT_TRUE(machine_->CheckedRead64(1, page.base).ok());
  EXPECT_TRUE(machine_->CheckedRead64(2, page.base).ok());

  auto* backend = static_cast<PmpBackend*>(&monitor_->backend());
  {
    // The recompile succeeds; the rewrite of the SECOND hart fails.
    ScopedFaultPlan plan(FaultPlan::Single(faults::kPmpBindCore, /*trigger=*/2));
    const Status synced = backend->SyncMemory(created->domain, page);
    EXPECT_EQ(synced.code(), ErrorCode::kInternal) << synced.ToString();
  }
  // Fail safe: BOTH harts deny, not just the one whose write failed.
  EXPECT_TRUE(backend->Denied(created->domain));
  EXPECT_FALSE(machine_->CheckedRead64(1, page.base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(2, page.base).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());

  // Recovery: the next clean sync reinstates enforcement on every hart.
  ASSERT_TRUE(backend->SyncMemory(created->domain, page).ok());
  EXPECT_FALSE(backend->Denied(created->domain));
  EXPECT_TRUE(machine_->CheckedRead64(1, page.base).ok());
  EXPECT_TRUE(machine_->CheckedRead64(2, page.base).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

}  // namespace
}  // namespace tyche
