// Copyright 2026 The Tyche Reproduction Authors.
// Crash-consistent recovery: snapshot-anchored and fresh-boot Recover(),
// attestation continuity across the crash, re-entrancy under injected
// re-sync faults, journal compaction interplay, and the offline
// snapshot-anchored verifier. The crash-point *sweep* (every record
// boundary) lives in tests/integration/crash_sweep_test.cc; these tests pin
// the semantics at a single, well-understood crash point.

#include "src/monitor/recovery.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/dispatch.h"
#include "src/support/faults.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr PciBdf kNic = PciBdf(0, 3, 0);

// A booted machine whose monitor journals with a small checkpoint interval
// and writes snapshots through an in-memory store -- so every test has
// several snapshot-bearing checkpoints to anchor recovery on.
struct RecoveryBed {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Monitor> monitor;
  DomainId os_domain = kInvalidDomain;
  SnapshotStore store;
  std::vector<uint8_t> firmware;
  std::vector<uint8_t> monitor_image;
  Digest golden_firmware;
  Digest golden_monitor;

  static std::unique_ptr<RecoveryBed> Create(IsaArch arch = IsaArch::kX86_64) {
    auto bed = std::make_unique<RecoveryBed>();
    MachineConfig config;
    config.arch = arch;
    config.memory_bytes = 128ull << 20;
    config.num_cores = 4;
    bed->machine = std::make_unique<Machine>(config);
    if (!bed->machine->AddDevice(std::make_unique<DmaEngine>(kNic, "nic0")).ok()) {
      return nullptr;
    }
    bed->firmware = DemoFirmwareImage();
    bed->monitor_image = DemoMonitorImage();
    auto outcome = MeasuredBoot(bed->machine.get(), bed->Params());
    if (!outcome.ok()) {
      return nullptr;
    }
    bed->monitor = std::move(outcome->monitor);
    bed->os_domain = outcome->initial_domain;
    bed->golden_firmware = outcome->firmware_measurement;
    bed->golden_monitor = outcome->monitor_measurement;
    bed->monitor->audit().journal().set_checkpoint_interval(8);
    EXPECT_TRUE(bed->monitor->EnableSnapshots(&bed->store).ok());
    return bed;
  }

  BootParams Params() const {
    BootParams params;
    params.firmware_image = firmware;
    params.monitor_image = monitor_image;
    return params;
  }

  AddrRange Scratch(uint64_t offset, uint64_t size) const {
    return AddrRange{monitor->monitor_range().end() + offset, size};
  }
  CapId MemCap(AddrRange range) const {
    const auto cap = FindMemoryCap(*monitor, os_domain, range);
    return cap.ok() ? *cap : kInvalidCap;
  }
  CapId CoreCap(CoreId core) const {
    const auto cap = FindUnitCap(*monitor, os_domain, ResourceKind::kCpuCore, core);
    return cap.ok() ? *cap : kInvalidCap;
  }
  CapId DeviceCap(PciBdf bdf) const {
    const auto cap =
        FindUnitCap(*monitor, os_domain, ResourceKind::kPciDevice, bdf.value);
    return cap.ok() ? *cap : kInvalidCap;
  }
};

// What the workload leaves behind for the recovered monitor to prove it
// still knows: a sealed enclave with an exclusive device, an unsealed
// worker holding a granted range, and a live cross-domain share.
struct WorkloadState {
  DomainId a = kInvalidDomain;
  CapId a_handle = kInvalidCap;
  DomainId b = kInvalidDomain;
  CapId b_handle = kInvalidCap;
  Digest a_measurement;  // from the pre-crash attestation
};

WorkloadState RunWorkload(RecoveryBed& bed) {
  WorkloadState state;
  Monitor* m = bed.monitor.get();
  const CapRights all{CapRights::kAll};
  const RevocationPolicy obfuscate(RevocationPolicy::kObfuscate);

  const auto a = m->CreateDomain(0, "enclave-a");
  const auto b = m->CreateDomain(0, "worker-b");
  EXPECT_TRUE(a.ok() && b.ok());
  if (!a.ok() || !b.ok()) {
    return state;
  }
  state.a = a->domain;
  state.a_handle = a->handle;
  state.b = b->domain;
  state.b_handle = b->handle;

  // A live share (OS keeps access), a grant that splits remainders, and the
  // NIC moved exclusively to A (attached to A at the crash point).
  const AddrRange window = bed.Scratch(kMiB, 16 * kPageSize);
  EXPECT_TRUE(m->ShareMemory(0, bed.MemCap(window), a->handle, window,
                             Perms(Perms::kRW), all, obfuscate)
                  .ok());
  const AddrRange grant_window = bed.Scratch(4 * kMiB, 8 * kPageSize);
  EXPECT_TRUE(m->GrantMemory(0, bed.MemCap(grant_window), b->handle, grant_window,
                             Perms(Perms::kRW), all, obfuscate)
                  .ok());
  EXPECT_TRUE(m->GrantUnit(0, bed.DeviceCap(kNic), a->handle, all, obfuscate).ok());

  // Give A an executable identity and seal it: the seal record carries the
  // finalized measurement + entry point, so recovery must reproduce both.
  const AddrRange exec_window = bed.Scratch(8 * kMiB, 4 * kPageSize);
  EXPECT_TRUE(m->ShareMemory(0, bed.MemCap(exec_window), a->handle, exec_window,
                             Perms(Perms::kRX), all, obfuscate)
                  .ok());
  EXPECT_TRUE(m->ShareUnit(0, bed.CoreCap(3), a->handle, all, obfuscate).ok());
  EXPECT_TRUE(m->SetEntryPoint(0, a->handle, exec_window.base).ok());
  EXPECT_TRUE(m->ExtendMeasurement(0, a->handle, exec_window).ok());
  EXPECT_TRUE(m->Seal(0, a->handle).ok());

  const auto report = m->AttestDomain(0, a->handle, /*nonce=*/0x1001);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    state.a_measurement = report->measurement;
  }
  // A revocation cascade after the last likely checkpoint, so the replayed
  // suffix exercises cascade records too.
  const AddrRange spare = bed.Scratch(12 * kMiB, 4 * kPageSize);
  const auto shared = m->ShareMemory(0, bed.MemCap(spare), b->handle, spare,
                                     Perms(Perms::kRW), all, obfuscate);
  EXPECT_TRUE(shared.ok());
  if (shared.ok()) {
    EXPECT_TRUE(m->Revoke(0, *shared).ok());
  }
  return state;
}

// The crash: serialize the journal exactly as it stands (no parting
// checkpoint -- a dying monitor cannot sign its own death), drop the
// monitor, and boot a recovery on the same machine from `snapshot_bytes`.
Status CrashAndRecover(RecoveryBed& bed, std::span<const uint8_t> snapshot_bytes) {
  const std::vector<uint8_t> wire = bed.monitor->audit().journal().Serialize();
  auto parsed = Journal::Deserialize(wire);
  if (!parsed.ok()) {
    return parsed.status();
  }
  bed.monitor.reset();
  auto outcome = MeasuredRecovery(bed.machine.get(), bed.Params(), snapshot_bytes, *parsed);
  if (!outcome.ok()) {
    return outcome.status();
  }
  bed.monitor = std::move(outcome->monitor);
  return OkStatus();
}

void ExpectConsistent(Monitor* monitor) {
  const auto consistent = monitor->AuditHardwareConsistency();
  ASSERT_TRUE(consistent.ok()) << consistent.status().ToString();
  EXPECT_TRUE(*consistent) << "hardware diverged from the capability tree";
}

TEST(RecoveryTest, SnapshotPlusSuffixRebuildsTheExactEngine) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  const WorkloadState state = RunWorkload(*bed);
  ASSERT_GE(bed->store.size(), 1u) << "workload never crossed a checkpoint";

  const Digest oracle = EngineDigest(bed->monitor->engine());
  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  const Status recovered = CrashAndRecover(*bed, snapshot->bytes);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();

  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
  EXPECT_EQ(bed->monitor->stats().recoveries, 1u);
  EXPECT_EQ(bed->monitor->audit().journal().EventCount(JournalEvent::kRecovery), 1u);

  // The domain table survived: A is still the sealed enclave it was.
  const auto domain_a = bed->monitor->GetDomain(state.a);
  ASSERT_TRUE(domain_a.ok());
  EXPECT_TRUE((*domain_a)->sealed());
  EXPECT_EQ((*domain_a)->measurement, state.a_measurement);
  const auto domain_b = bed->monitor->GetDomain(state.b);
  ASSERT_TRUE(domain_b.ok());
  EXPECT_FALSE((*domain_b)->sealed());

  // The monitor keeps working and its journal keeps verifying: new records
  // extend the restored chain under the same key.
  EXPECT_TRUE(bed->monitor->CreateDomain(0, "post-crash").ok());
  const TelemetrySnapshot dump = bed->monitor->DumpTelemetry();
  const Status verified = RemoteVerifier::VerifyJournal(
      bed->monitor->ExportJournal(), bed->monitor->public_key(),
      &dump.capability_graph_json);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
}

TEST(RecoveryTest, TelemetryResetsButTheRecoveryIsMarked) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  // One ABI-dispatched call so the trace ring (which records Dispatch()
  // crossings, not direct monitor calls) has something to lose.
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kCreateDomain);
  EXPECT_EQ(Dispatch(bed->monitor.get(), 0, regs).error, 0u);
  const TelemetrySnapshot before = bed->monitor->DumpTelemetry();
  EXPECT_GT(before.stats.TotalCalls(), 0u);
  EXPECT_FALSE(before.trace.empty());

  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(CrashAndRecover(*bed, snapshot->bytes).ok());

  // Counters and the trace ring restart -- a post-recovery dump must never
  // mix epochs -- but the recovery itself is marked, and the journal (which
  // IS durable) still carries the full history.
  const TelemetrySnapshot after = bed->monitor->DumpTelemetry();
  EXPECT_EQ(after.stats.TotalCalls(), 0u);
  EXPECT_EQ(after.stats.recoveries, 1u);
  EXPECT_TRUE(after.trace.empty());
  EXPECT_EQ(after.trace_recorded, 0u);
  EXPECT_GT(after.journal_records, 0u);
}

TEST(RecoveryTest, RecoveredMonitorAttestsLikeTheOriginal) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  const WorkloadState state = RunWorkload(*bed);
  const SchnorrPublicKey old_key = bed->monitor->public_key();

  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(CrashAndRecover(*bed, snapshot->bytes).ok());

  // Same image, same machine => same measurement-bound key: old checkpoint
  // signatures verify and new attestations chain to the same identity.
  EXPECT_EQ(bed->monitor->public_key(), old_key);

  // Tier 1: the re-measured boot reproduces the golden PCR values.
  const auto identity = bed->monitor->Identity(/*nonce=*/0x2002);
  ASSERT_TRUE(identity.ok()) << identity.status().ToString();
  const RemoteVerifier verifier(bed->machine->tpm().attestation_key(),
                                bed->golden_firmware, bed->golden_monitor);
  const Status tier1 = verifier.VerifyMonitor(*identity, 0x2002);
  EXPECT_TRUE(tier1.ok()) << tier1.ToString();

  // Tier 2: the recovered monitor re-attests the sealed enclave with the
  // measurement it had before the crash.
  const auto handle = FindUnitCap(*bed->monitor, bed->os_domain,
                                  ResourceKind::kDomain, state.a);
  ASSERT_TRUE(handle.ok());
  const auto report = bed->monitor->AttestDomain(0, *handle, /*nonce=*/0x3003);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->measurement, state.a_measurement);
  const Status tier2 = verifier.VerifyDomain(*report, bed->monitor->public_key(),
                                             0x3003, &state.a_measurement);
  EXPECT_TRUE(tier2.ok()) << tier2.ToString();
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const Digest oracle = EngineDigest(bed->monitor->engine());
  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  const auto parsed = Journal::Deserialize(bed->monitor->audit().journal().Serialize());
  ASSERT_TRUE(parsed.ok());

  ASSERT_TRUE(CrashAndRecover(*bed, snapshot->bytes).ok());
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);

  // Recovering again from the very same evidence is a no-op on the state:
  // Recover() stages everything and only commits a verified image.
  const Status again = bed->monitor->Recover(snapshot->bytes, *parsed);
  ASSERT_TRUE(again.ok()) << again.ToString();
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  EXPECT_EQ(bed->monitor->stats().recoveries, 2u);
  ExpectConsistent(bed->monitor.get());
}

TEST(RecoveryTest, FreshBootRecoveryReplaysTheWholeJournal) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const Digest oracle = EngineDigest(bed->monitor->engine());

  // No snapshot at all: replay from genesis. Slower, same destination.
  const Status recovered = CrashAndRecover(*bed, {});
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
}

TEST(RecoveryTest, EmptyJournalRecoversToABareBoot) {
  // A monitor that crashed before its first journal record (or whose journal
  // medium was lost) recovers to exactly the installed-initial-domain state.
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  const Digest oracle = EngineDigest(bed->monitor->engine());
  const Status recovered = CrashAndRecover(*bed, {});
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
}

TEST(RecoveryTest, TruncatedJournalRequiresItsAnchoringSnapshot) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const Digest oracle = EngineDigest(bed->monitor->engine());

  // Compact away the prefix behind the newest snapshot-bearing checkpoint.
  Journal& journal = bed->monitor->audit().journal();
  const auto checkpoints = journal.Checkpoints();
  const JournalCheckpoint* anchor = nullptr;
  for (const JournalCheckpoint& checkpoint : checkpoints) {
    if (checkpoint.snapshot != Digest{}) {
      anchor = &checkpoint;
    }
  }
  ASSERT_NE(anchor, nullptr);
  const uint64_t anchor_seq = anchor->seq;
  ASSERT_TRUE(journal.TruncateBefore(anchor_seq).ok());
  const auto snapshot = bed->store.LatestAtOrBefore(anchor_seq);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->seq, anchor_seq);

  const std::vector<uint8_t> wire = journal.Serialize();
  const auto parsed = Journal::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  BootParams params = bed->Params();
  bed->monitor.reset();

  // Without the anchoring snapshot there is nothing to replay onto.
  const auto without = MeasuredRecovery(bed->machine.get(), params, {}, *parsed);
  ASSERT_FALSE(without.ok());
  EXPECT_EQ(without.status().code(), ErrorCode::kFailedPrecondition);

  // With it, the compacted journal recovers to the same engine.
  auto outcome = MeasuredRecovery(bed->machine.get(), params, snapshot->bytes, *parsed);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  bed->monitor = std::move(outcome->monitor);
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
}

TEST(RecoveryTest, TamperedSnapshotIsRejectedBeforeTouchingState) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  std::vector<uint8_t> tampered = snapshot->bytes;
  tampered[tampered.size() / 2] ^= 0x01;

  // A flipped bit changes the digest, so no signed checkpoint binds it.
  const Status recovered = CrashAndRecover(*bed, tampered);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.code(), ErrorCode::kJournalSignatureInvalid);
}

TEST(RecoveryTest, ResyncFaultSurfacesTypedErrorAndRetrySucceeds) {
  auto bed = RecoveryBed::Create(IsaArch::kX86_64);
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const Digest oracle = EngineDigest(bed->monitor->engine());
  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  const auto parsed = Journal::Deserialize(bed->monitor->audit().journal().Serialize());
  ASSERT_TRUE(parsed.ok());
  bed->monitor.reset();

  // Recover by hand (MeasuredRecovery would discard the half-built monitor)
  // so the retry exercises Recover()'s re-entrancy.
  bed->machine->tpm().Reset();
  auto prepared = PrepareMonitor(bed->machine.get(), bed->Params());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  bed->monitor = std::move(prepared->monitor);
  {
    ScopedFaultPlan scoped(FaultPlan::Single(faults::kVtxCreateContext, 1));
    const Status faulted = bed->monitor->Recover(snapshot->bytes, *parsed);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.code(), DefaultFaultCode(faults::kVtxCreateContext));
  }
  EXPECT_EQ(FaultInjector::Instance().fired_count(), 1u);

  // Same evidence, no fault: the retry lands on the same engine.
  const Status retried = bed->monitor->Recover(snapshot->bytes, *parsed);
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
}

TEST(RecoveryTest, OfflineVerifierAcceptsSnapshotAnchoredJournal) {
  auto bed = RecoveryBed::Create();
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const SchnorrPublicKey key = bed->monitor->public_key();

  // Export checkpoints the tail (the verifier is strict about coverage --
  // this is the "auditor received a journal" path, not the crash path).
  // Anchor the verification on an EARLIER snapshot so a real suffix replays.
  const auto checkpoints = bed->monitor->audit().journal().Checkpoints();
  uint64_t first_anchored = 0;
  bool found = false;
  for (const JournalCheckpoint& checkpoint : checkpoints) {
    if (checkpoint.snapshot != Digest{}) {
      first_anchored = checkpoint.seq;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const auto snapshot = bed->store.LatestAtOrBefore(first_anchored);
  ASSERT_TRUE(snapshot.ok());
  const std::vector<uint8_t> wire = bed->monitor->ExportJournal();
  const TelemetrySnapshot dump = bed->monitor->DumpTelemetry();

  const Status ok = VerifyJournalWithSnapshot(wire, snapshot->bytes, key,
                                              dump.capability_graph_json);
  EXPECT_TRUE(ok.ok()) << ok.ToString();

  // Wrong expected graph: the replay diverges from the claimed state.
  std::string wrong_graph = dump.capability_graph_json;
  ASSERT_FALSE(wrong_graph.empty());
  wrong_graph.back() = wrong_graph.back() == '}' ? ']' : '}';
  const Status divergent = VerifyJournalWithSnapshot(wire, snapshot->bytes, key, wrong_graph);
  ASSERT_FALSE(divergent.ok());
  EXPECT_EQ(divergent.code(), ErrorCode::kJournalReplayDivergence);

  // A snapshot no signed checkpoint binds is refused outright.
  std::vector<uint8_t> unbound = snapshot->bytes;
  unbound[8] ^= 0x40;
  const Status rejected =
      VerifyJournalWithSnapshot(wire, unbound, key, dump.capability_graph_json);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kJournalSignatureInvalid);

  // A flipped record byte breaks the hash chain.
  std::vector<uint8_t> broken = wire;
  broken[broken.size() / 2] ^= 0x01;
  const Status chain = VerifyJournalWithSnapshot(broken, snapshot->bytes, key,
                                                 dump.capability_graph_json);
  EXPECT_FALSE(chain.ok());
}

TEST(RecoveryTest, SnapshotStorePrunesWithCompaction) {
  SnapshotStore store;
  for (uint64_t seq : {7ull, 15ull, 23ull}) {
    MonitorSnapshot snapshot;
    snapshot.seq = seq;
    snapshot.bytes = {static_cast<uint8_t>(seq)};
    store.Put(std::move(snapshot));
  }
  EXPECT_EQ(store.size(), 3u);
  const auto mid = store.LatestAtOrBefore(20);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->seq, 15u);
  EXPECT_EQ(store.LatestAtOrBefore(3).status().code(), ErrorCode::kNotFound);

  store.PruneOlderThan(15);
  EXPECT_EQ(store.size(), 2u);
  const auto latest = store.Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->seq, 23u);
}

TEST(RecoveryTest, SnapshotStorePruneEdgeCases) {
  SnapshotStore store;
  store.PruneOlderThan(100);  // pruning an empty store is a no-op
  EXPECT_EQ(store.size(), 0u);

  const auto fill = [&store] {
    for (uint64_t seq : {7ull, 15ull, 23ull}) {
      MonitorSnapshot snapshot;
      snapshot.seq = seq;
      snapshot.bytes = {static_cast<uint8_t>(seq)};
      store.Put(std::move(snapshot));
    }
  };

  // Prune-none: every snapshot sits at or after the cutoff.
  fill();
  store.PruneOlderThan(0);
  EXPECT_EQ(store.size(), 3u);
  store.PruneOlderThan(7);  // boundary: seq == cutoff survives (strict <)
  EXPECT_EQ(store.size(), 3u);
  ASSERT_TRUE(store.LatestAtOrBefore(7).ok());
  EXPECT_EQ(store.LatestAtOrBefore(7)->seq, 7u);

  // Boundary between checkpoints: only strictly-older snapshots drop, and
  // LatestAtOrBefore for the pruned range now reports kNotFound.
  store.PruneOlderThan(23);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.LatestAtOrBefore(22).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(store.Latest().ok());
  EXPECT_EQ(store.Latest()->seq, 23u);

  // Prune-all: a cutoff beyond the newest snapshot empties the store...
  store.PruneOlderThan(24);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Latest().status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.LatestAtOrBefore(1000).status().code(), ErrorCode::kNotFound);

  // ...and the store keeps working after being emptied.
  fill();
  EXPECT_EQ(store.size(), 3u);
  ASSERT_TRUE(store.Latest().ok());
  EXPECT_EQ(store.Latest()->seq, 23u);
}

TEST(RecoveryTest, RecoveryWorksOnThePmpBackendToo) {
  auto bed = RecoveryBed::Create(IsaArch::kRiscV);
  ASSERT_NE(bed, nullptr);
  RunWorkload(*bed);
  const Digest oracle = EngineDigest(bed->monitor->engine());
  const auto snapshot = bed->store.Latest();
  ASSERT_TRUE(snapshot.ok());
  const Status recovered = CrashAndRecover(*bed, snapshot->bytes);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(EngineDigest(bed->monitor->engine()), oracle);
  ExpectConsistent(bed->monitor.get());
}

}  // namespace
}  // namespace tyche
