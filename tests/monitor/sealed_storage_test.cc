// Copyright 2026 The Tyche Reproduction Authors.
// Measurement-bound sealed storage: data sealed by a domain opens only for
// the SAME code identity under the SAME monitor -- across instances -- and
// for nobody else.

#include <gtest/gtest.h>

#include "src/crypto/authenticated.h"
#include "src/monitor/dispatch.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class SealedStorageTest : public BootedMachineTest {
 protected:
  // Builds a sealed enclave from `image` at `offset`, returns its handle.
  Result<Enclave> MakeEnclave(const TycheImage& image, uint64_t offset) {
    LoadOptions load;
    load.base = Scratch(offset, 0).base;
    load.size = kMiB;
    load.cores = {1};
    load.core_caps = {OsCoreCap(1)};
    return Enclave::Create(monitor_.get(), 0, image, load);
  }

  std::vector<uint8_t> Secret() { return {'k', '3', 'y', '!', 0x00, 0xff, 0x42}; }
};

TEST_F(SealedStorageTest, SealUnsealRoundTripSameInstance) {
  const TycheImage image = TycheImage::MakeDemo("sealer", 2 * kPageSize, 0);
  auto enclave = MakeEnclave(image, kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());
  const auto blob = monitor_->SealData(1, Secret());
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  const auto opened = monitor_->UnsealData(1, *blob);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(*opened, Secret());
  ASSERT_TRUE(enclave->Exit(1).ok());
}

TEST_F(SealedStorageTest, SameImageNewInstanceCanUnseal) {
  const TycheImage image = TycheImage::MakeDemo("persist", 2 * kPageSize, 0);
  std::vector<uint8_t> blob;
  {
    auto first = MakeEnclave(image, kMiB);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first->Enter(1).ok());
    const auto sealed = monitor_->SealData(1, Secret());
    ASSERT_TRUE(sealed.ok());
    blob = *sealed;
    ASSERT_TRUE(first->Exit(1).ok());
    ASSERT_TRUE(monitor_->DestroyDomain(0, first->handle()).ok());
  }
  // A fresh instance of the SAME image, at the SAME address/config: same
  // measurement, so the blob opens.
  auto second = MakeEnclave(image, kMiB);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->Enter(1).ok());
  const auto opened = monitor_->UnsealData(1, blob);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(*opened, Secret());
  ASSERT_TRUE(second->Exit(1).ok());
}

TEST_F(SealedStorageTest, DifferentCodeCannotUnseal) {
  const TycheImage image = TycheImage::MakeDemo("honest", 2 * kPageSize, 0);
  auto sealer = MakeEnclave(image, kMiB);
  ASSERT_TRUE(sealer.ok());
  ASSERT_TRUE(sealer->Enter(1).ok());
  const auto blob = monitor_->SealData(1, Secret());
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(sealer->Exit(1).ok());

  // A DIFFERENT image (one byte of code differs) gets a different key.
  TycheImage evil_image = TycheImage::MakeDemo("honest", 2 * kPageSize, 0);
  const_cast<std::vector<uint8_t>&>(evil_image.segments()[0].data)[0] ^= 1;
  auto evil = MakeEnclave(evil_image, 4 * kMiB);
  ASSERT_TRUE(evil.ok());
  ASSERT_TRUE(evil->Enter(1).ok());
  const auto opened = monitor_->UnsealData(1, *blob);
  EXPECT_EQ(opened.code(), ErrorCode::kSignatureInvalid);
  ASSERT_TRUE(evil->Exit(1).ok());
}

TEST_F(SealedStorageTest, UnsealedDomainRefused) {
  // The OS (never sealed) can neither seal nor unseal.
  EXPECT_EQ(monitor_->SealData(0, Secret()).code(), ErrorCode::kDomainNotSealed);
  EXPECT_EQ(monitor_->UnsealData(0, std::vector<uint8_t>(64)).code(),
            ErrorCode::kDomainNotSealed);
}

TEST_F(SealedStorageTest, TamperedBlobRejected) {
  const TycheImage image = TycheImage::MakeDemo("sealer", 2 * kPageSize, 0);
  auto enclave = MakeEnclave(image, kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());
  const auto blob = monitor_->SealData(1, Secret());
  ASSERT_TRUE(blob.ok());
  for (size_t i = 0; i < blob->size(); i += 5) {
    std::vector<uint8_t> tampered = *blob;
    tampered[i] ^= 0x80;
    EXPECT_FALSE(monitor_->UnsealData(1, tampered).ok()) << "byte " << i;
  }
  // Truncation.
  std::vector<uint8_t> truncated(blob->begin(), blob->begin() + 10);
  EXPECT_FALSE(monitor_->UnsealData(1, truncated).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());
}

TEST_F(SealedStorageTest, DifferentMonitorCannotUnseal) {
  const TycheImage image = TycheImage::MakeDemo("sealer", 2 * kPageSize, 0);
  auto enclave = MakeEnclave(image, kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());
  const auto blob = monitor_->SealData(1, Secret());
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(enclave->Exit(1).ok());

  // A machine running a modified monitor image derives a different sealing
  // root; the same enclave there cannot open the blob.
  MachineConfig config;
  config.memory_bytes = 128ull << 20;
  config.num_cores = 4;
  Machine other_machine(config);
  std::vector<uint8_t> other_image = DemoMonitorImage();
  other_image[3] ^= 1;
  BootParams params;
  params.firmware_image = firmware_;
  params.monitor_image = other_image;
  auto outcome = MeasuredBoot(&other_machine, params);
  ASSERT_TRUE(outcome.ok());
  Monitor& other_monitor = *outcome->monitor;
  LoadOptions load;
  load.base = other_monitor.monitor_range().end() + kMiB;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {
      *FindUnitCap(other_monitor, outcome->initial_domain, ResourceKind::kCpuCore, 1)};
  auto twin = Enclave::Create(&other_monitor, 0, image, load);
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE(twin->Enter(1).ok());
  EXPECT_FALSE(other_monitor.UnsealData(1, *blob).ok());
}

TEST_F(SealedStorageTest, DispatchAbiSealUnseal) {
  const TycheImage image = TycheImage::MakeDemo("abi", 2 * kPageSize, 0);
  auto enclave = MakeEnclave(image, kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->Enter(1).ok());

  // Buffers inside the enclave's own heap.
  const uint64_t in = enclave->base() + 16 * kPageSize;
  const uint64_t out = enclave->base() + 32 * kPageSize;
  const std::vector<uint8_t> secret = Secret();
  ASSERT_TRUE(machine_->CheckedWrite(1, in, std::span<const uint8_t>(secret)).ok());

  ApiRegs seal;
  seal.op = static_cast<uint64_t>(ApiOp::kSealData);
  seal.arg0 = in;
  seal.arg1 = secret.size();
  seal.arg2 = out;
  seal.arg3 = 4096;
  const ApiResult sealed = Dispatch(monitor_.get(), 1, seal);
  ASSERT_EQ(sealed.error, 0u);

  ApiRegs unseal;
  unseal.op = static_cast<uint64_t>(ApiOp::kUnsealData);
  unseal.arg0 = out;
  unseal.arg1 = sealed.ret0;
  unseal.arg2 = in + kPageSize;
  unseal.arg3 = 4096;
  const ApiResult opened = Dispatch(monitor_.get(), 1, unseal);
  ASSERT_EQ(opened.error, 0u);
  std::vector<uint8_t> recovered(opened.ret0);
  ASSERT_TRUE(machine_->CheckedRead(1, in + kPageSize, std::span<uint8_t>(recovered)).ok());
  EXPECT_EQ(recovered, secret);
  ASSERT_TRUE(enclave->Exit(1).ok());

  // The OS cannot abuse the ABI to read the enclave's buffers: it has no
  // mapping there, so the CheckedRead in dispatch faults.
  ApiRegs steal = seal;
  const ApiResult stolen = Dispatch(monitor_.get(), 0, steal);
  EXPECT_NE(stolen.error, 0u);
}

class AeadTest : public ::testing::Test {};

TEST_F(AeadTest, RoundTripAndTamper) {
  const Digest key = Sha256::Hash(std::string_view("key"));
  const std::vector<uint8_t> plaintext(1000, 0x5a);
  const SealedBlob blob = AeadSeal(key, 7, plaintext);
  EXPECT_NE(blob.ciphertext, plaintext);  // actually encrypted
  EXPECT_EQ(*AeadOpen(key, blob), plaintext);

  SealedBlob bad = blob;
  bad.ciphertext[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key, bad).ok());
  SealedBlob bad_nonce = blob;
  bad_nonce.nonce ^= 1;
  EXPECT_FALSE(AeadOpen(key, bad_nonce).ok());
  const Digest other = Sha256::Hash(std::string_view("other"));
  EXPECT_FALSE(AeadOpen(other, blob).ok());
}

TEST_F(AeadTest, EmptyAndLargePayloads) {
  const Digest key = Sha256::Hash(std::string_view("key"));
  const SealedBlob empty = AeadSeal(key, 1, {});
  EXPECT_TRUE(AeadOpen(key, empty)->empty());
  std::vector<uint8_t> big(100000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i);
  }
  const SealedBlob blob = AeadSeal(key, 2, big);
  EXPECT_EQ(*AeadOpen(key, blob), big);
}

TEST_F(AeadTest, SerializeRoundTrip) {
  const Digest key = Sha256::Hash(std::string_view("key"));
  const SealedBlob blob = AeadSeal(key, 9, std::vector<uint8_t>{1, 2, 3});
  const auto parsed = SealedBlob::Deserialize(blob.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*AeadOpen(key, *parsed), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(SealedBlob::Deserialize(std::vector<uint8_t>(10)).ok());
  std::vector<uint8_t> bad_length = blob.Serialize();
  bad_length[8] ^= 1;  // corrupt the length field
  EXPECT_FALSE(SealedBlob::Deserialize(bad_length).ok());
}

TEST_F(AeadTest, DistinctNoncesDistinctCiphertexts) {
  const Digest key = Sha256::Hash(std::string_view("key"));
  const std::vector<uint8_t> plaintext(64, 0);
  EXPECT_NE(AeadSeal(key, 1, plaintext).ciphertext, AeadSeal(key, 2, plaintext).ciphertext);
}

}  // namespace
}  // namespace tyche
