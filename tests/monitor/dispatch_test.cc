// Copyright 2026 The Tyche Reproduction Authors.
// The register-level ABI: a full enclave lifecycle driven purely through
// Dispatch() with integer registers, plus a hostile-register fuzz pass.

#include "src/monitor/dispatch.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/tyche/verifier.h"
#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class DispatchTest : public BootedMachineTest {
 protected:
  ApiResult Call(CoreId core, ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                 uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs;
    regs.op = static_cast<uint64_t>(op);
    regs.arg0 = a0;
    regs.arg1 = a1;
    regs.arg2 = a2;
    regs.arg3 = a3;
    regs.arg4 = a4;
    regs.arg5 = a5;
    return Dispatch(monitor_.get(), core, regs);
  }

  static uint64_t Pack(uint8_t rights, uint8_t policy) {
    return (static_cast<uint64_t>(rights) << 8) | policy;
  }
};

TEST_F(DispatchTest, FullLifecycleThroughRegisters) {
  // create
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u) << created.error;
  const uint64_t handle = created.ret1;

  // grant memory
  const AddrRange window = Scratch(kMiB, kMiB);
  const ApiResult grant =
      Call(0, ApiOp::kGrantMemory, OsMemCap(window), handle, window.base, window.size,
           Perms::kRWX, Pack(CapRights::kAll, RevocationPolicy::kZeroMemory));
  ASSERT_EQ(grant.error, 0u);

  // share core 1
  const ApiResult core_share = Call(0, ApiOp::kShareUnit, OsCoreCap(1), handle,
                                    Pack(CapRights::kShare, 0));
  ASSERT_EQ(core_share.error, 0u);

  // entry point + measurement + seal
  ASSERT_EQ(Call(0, ApiOp::kSetEntryPoint, handle, window.base).error, 0u);
  ASSERT_EQ(Call(0, ApiOp::kExtendMeasurement, handle, window.base, kPageSize).error, 0u);
  ASSERT_EQ(Call(0, ApiOp::kSeal, handle).error, 0u);

  // enumerate
  const ApiResult enumerated = Call(0, ApiOp::kEnumerate, handle);
  ASSERT_EQ(enumerated.error, 0u);
  EXPECT_GE(enumerated.ret0, 2u);  // memory + core

  // attest into a caller-owned out-buffer, then parse + verify the wire.
  const uint64_t out_buffer = Scratch(8 * kMiB, 0).base;
  const ApiResult attested =
      Call(0, ApiOp::kAttestDomain, handle, /*nonce=*/77, out_buffer, 4096);
  ASSERT_EQ(attested.error, 0u);
  std::vector<uint8_t> wire(attested.ret0);
  ASSERT_TRUE(machine_->CheckedRead(0, out_buffer, std::span<uint8_t>(wire)).ok());
  const auto report = DeserializeAttestation(wire);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  RemoteVerifier verifier(machine_->tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  EXPECT_TRUE(verifier.VerifyDomain(*report, monitor_->public_key(), 77, nullptr).ok());

  // transition + return
  ASSERT_EQ(Call(1, ApiOp::kTransition, handle).error, 0u);
  EXPECT_NE(monitor_->CurrentDomain(1), os_domain_);
  ASSERT_EQ(Call(1, ApiOp::kReturn).error, 0u);
  EXPECT_EQ(monitor_->CurrentDomain(1), os_domain_);

  // destroy
  ASSERT_EQ(Call(0, ApiOp::kDestroyDomain, handle).error, 0u);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(DispatchTest, AttestOutBufferMustBeCallerWritable) {
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  ASSERT_EQ(created.error, 0u);
  // Out-buffer inside the MONITOR's memory: the checked write faults.
  const ApiResult attested = Call(0, ApiOp::kAttestDomain, created.ret1, 1, 0x1000, 4096);
  EXPECT_NE(attested.error, 0u);
  // Out-buffer too small: typed error, nothing written.
  const ApiResult small =
      Call(0, ApiOp::kAttestDomain, created.ret1, 1, Scratch(8 * kMiB, 0).base, 16);
  EXPECT_EQ(small.error, static_cast<uint64_t>(ErrorCode::kResourceExhausted));
}

TEST_F(DispatchTest, BogusOpsRejected) {
  EXPECT_EQ(Call(0, static_cast<ApiOp>(250)).error,
            static_cast<uint64_t>(ErrorCode::kInvalidArgument));
  EXPECT_EQ(Call(0, ApiOp::kOpCount).error,
            static_cast<uint64_t>(ErrorCode::kInvalidArgument));
}

TEST_F(DispatchTest, SerializationRoundTrip) {
  const ApiResult created = Call(0, ApiOp::kCreateDomain);
  const AddrRange window = Scratch(kMiB, kMiB);
  ASSERT_EQ(Call(0, ApiOp::kGrantMemory, OsMemCap(window), created.ret1, window.base,
                 window.size, Perms::kRWX, Pack(CapRights::kAll, 0))
                .error,
            0u);
  ASSERT_EQ(Call(0, ApiOp::kSetEntryPoint, created.ret1, window.base).error, 0u);
  ASSERT_EQ(Call(0, ApiOp::kSeal, created.ret1).error, 0u);
  const auto report = monitor_->AttestDomain(0, created.ret1, 9);
  ASSERT_TRUE(report.ok());
  const auto round = DeserializeAttestation(SerializeAttestation(*report));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->domain, report->domain);
  EXPECT_EQ(round->nonce, report->nonce);
  EXPECT_EQ(round->measurement, report->measurement);
  EXPECT_EQ(round->resources, report->resources);
  EXPECT_EQ(round->report_digest, report->report_digest);
  EXPECT_EQ(round->signature, report->signature);

  const auto identity = monitor_->Identity(4);
  ASSERT_TRUE(identity.ok());
  const auto identity_round =
      DeserializeMonitorIdentity(SerializeMonitorIdentity(*identity));
  ASSERT_TRUE(identity_round.ok());
  EXPECT_EQ(identity_round->monitor_key, identity->monitor_key);
  EXPECT_EQ(identity_round->boot_quote.pcr_values, identity->boot_quote.pcr_values);
  RemoteVerifier verifier(machine_->tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  EXPECT_TRUE(verifier.VerifyMonitor(*identity_round, 4).ok());
}

TEST_F(DispatchTest, DeserializationSurvivesGarbage) {
  Prng prng(99);
  // Truncations of a valid report.
  const auto created = Call(0, ApiOp::kCreateDomain);
  const auto report = monitor_->AttestDomain(0, created.ret1, 1);
  ASSERT_TRUE(report.ok());
  const std::vector<uint8_t> wire = SerializeAttestation(*report);
  for (size_t len = 0; len < wire.size(); len += 7) {
    const auto parsed =
        DeserializeAttestation(std::span<const uint8_t>(wire.data(), len));
    EXPECT_FALSE(parsed.ok()) << "accepted truncation at " << len;
  }
  // Random garbage.
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> garbage(prng.Below(256));
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(prng.Next());
    }
    (void)DeserializeAttestation(garbage);  // must not crash
    (void)DeserializeMonitorIdentity(garbage);
  }
  // Bit flips in a valid report must be caught no later than verification.
  RemoteVerifier verifier(machine_->tpm().attestation_key(), golden_firmware_,
                          golden_monitor_);
  for (int round = 0; round < 64; ++round) {
    std::vector<uint8_t> flipped = wire;
    flipped[prng.Below(flipped.size())] ^= static_cast<uint8_t>(1 + prng.Below(255));
    const auto parsed = DeserializeAttestation(flipped);
    if (!parsed.ok()) {
      continue;  // structurally rejected
    }
    EXPECT_FALSE(
        verifier.VerifyDomain(*parsed, monitor_->public_key(), report->nonce, nullptr)
            .ok())
        << "accepted a flipped report";
  }
}

TEST_F(DispatchTest, HostileRegisterFuzz) {
  Prng prng(31337);
  for (int round = 0; round < 3000; ++round) {
    ApiRegs regs;
    regs.op = prng.Below(24);  // includes invalid ops
    regs.arg0 = prng.Chance(1, 2) ? prng.Below(64) : prng.Next();
    regs.arg1 = prng.Chance(1, 2) ? prng.Below(64) : prng.Next();
    regs.arg2 = prng.Chance(1, 2) ? prng.Below(1ull << 27) : prng.Next();
    regs.arg3 = prng.Chance(1, 2) ? prng.Below(1ull << 20) : prng.Next();
    regs.arg4 = prng.Below(16);
    regs.arg5 = prng.Next();
    const CoreId core = static_cast<CoreId>(prng.Below(machine_->num_cores()));
    (void)Dispatch(monitor_.get(), core, regs);  // must never crash
    // Keep core state sane for the next round: unwind any transition the
    // fuzzer happened to perform.
    while (monitor_->CurrentDomain(core) != os_domain_ &&
           monitor_->ReturnFromDomain(core).ok()) {
    }
  }
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

}  // namespace
}  // namespace tyche
