// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/sandbox.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class SandboxTest : public BootedMachineTest {
 protected:
  SandboxTest() : BootedMachineTest(FixtureOptions{.with_nic = true}) {}
};

TEST_F(SandboxTest, SandboxSeesOnlyItsRegions) {
  SandboxOptions options;
  const AddrRange code = Scratch(kMiB, 64 * 1024);
  const AddrRange data = Scratch(2 * kMiB, 64 * 1024);
  options.regions = {{code, Perms(Perms::kRX)}, {data, Perms(Perms::kRW)}};
  options.entry = code.base;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto sandbox = Sandbox::Create(monitor_.get(), 0, "libfoo", options);
  ASSERT_TRUE(sandbox.ok()) << sandbox.status().ToString();

  ASSERT_TRUE(sandbox->Enter(1).ok());
  // Code is executable but not writable; data is RW; everything else faults.
  EXPECT_TRUE(machine_->CheckedFetch(1, code.base, 16).ok());
  EXPECT_FALSE(machine_->CheckedWrite64(1, code.base, 1).ok());
  EXPECT_TRUE(machine_->CheckedWrite64(1, data.base, 1).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, Scratch(8 * kMiB, 0).base).ok());
  ASSERT_TRUE(sandbox->Exit(1).ok());

  // Unlike an enclave: the creator KEEPS access to the shared regions.
  EXPECT_TRUE(machine_->CheckedRead64(0, code.base).ok());
  EXPECT_TRUE(machine_->CheckedWrite64(0, data.base, 2).ok());
}

TEST_F(SandboxTest, RegionRevocationShrinksTheSandbox) {
  SandboxOptions options;
  const AddrRange code = Scratch(kMiB, 64 * 1024);
  const AddrRange scratch = Scratch(2 * kMiB, 64 * 1024);
  options.regions = {{code, Perms(Perms::kRX)}, {scratch, Perms(Perms::kRW)}};
  options.entry = code.base;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto sandbox = Sandbox::Create(monitor_.get(), 0, "libbar", options);
  ASSERT_TRUE(sandbox.ok());

  ASSERT_TRUE(sandbox->Enter(1).ok());
  EXPECT_TRUE(machine_->CheckedWrite64(1, scratch.base, 42).ok());
  ASSERT_TRUE(sandbox->Exit(1).ok());

  // The app revokes the scratch window after the call returns.
  ASSERT_TRUE(sandbox->RevokeRegion(0, sandbox->region_caps()[1]).ok());
  ASSERT_TRUE(sandbox->Enter(1).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, scratch.base).ok());
  EXPECT_TRUE(machine_->CheckedFetch(1, code.base, 16).ok());
  ASSERT_TRUE(sandbox->Exit(1).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(SandboxTest, DestroyTearsDown) {
  SandboxOptions options;
  const AddrRange code = Scratch(kMiB, 64 * 1024);
  options.regions = {{code, Perms(Perms::kRX)}};
  options.entry = code.base;
  auto sandbox = Sandbox::Create(monitor_.get(), 0, "temp", options);
  ASSERT_TRUE(sandbox.ok());
  const DomainId id = sandbox->domain();
  ASSERT_TRUE(sandbox->Destroy(0).ok());
  EXPECT_EQ((*monitor_->GetDomain(id))->state, DomainState::kDead);
}

TEST_F(SandboxTest, SealedSandboxFreezesPolicy) {
  SandboxOptions options;
  const AddrRange code = Scratch(kMiB, 64 * 1024);
  options.regions = {{code, Perms(Perms::kRX)}};
  options.entry = code.base;
  options.seal = true;
  auto sandbox = Sandbox::Create(monitor_.get(), 0, "frozen", options);
  ASSERT_TRUE(sandbox.ok());
  // Adding another region now fails: the sandbox is sealed.
  const AddrRange extra = Scratch(2 * kMiB, 64 * 1024);
  const auto share =
      monitor_->ShareMemory(0, OsMemCap(extra), sandbox->handle(), extra,
                            Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  EXPECT_EQ(share.code(), ErrorCode::kDomainSealed);
}

TEST_F(SandboxTest, DriverSandboxConfinesDma) {
  // The kernel sandboxes an untrusted driver with a 1 MiB window and grants
  // it the NIC. Driver DMA inside the window works; DMA anywhere else is
  // blocked by the IOMMU.
  auto sandbox = os_->LoadDriverSandboxed(0, "nic-driver", kMiB,
                                          OsDeviceCap(kNicBdf.value), 1, OsCoreCap(1));
  ASSERT_TRUE(sandbox.ok()) << sandbox.status().ToString();

  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  ASSERT_NE(nic, nullptr);

  // Find the driver window (the sandbox's only memory region).
  const auto map = monitor_->engine().DomainMemoryMap(sandbox->domain());
  ASSERT_EQ(map.size(), 1u);
  const AddrRange window = map[0].range;

  // DMA within the window: OK.
  EXPECT_TRUE(nic->Copy(machine_.get(), window.base, window.base + kPageSize, 256).ok());
  // DMA targeting kernel memory outside the window: IOMMU fault.
  EXPECT_EQ(nic->Copy(machine_.get(), window.base, Scratch(8 * kMiB, 0).base, 256).code(),
            ErrorCode::kIommuFault);
  EXPECT_EQ(nic->Copy(machine_.get(), Scratch(8 * kMiB, 0).base, window.base, 256).code(),
            ErrorCode::kIommuFault);
}

TEST_F(SandboxTest, InKernelDriverDmaIsUnconfined) {
  // Baseline contrast: with the device still held by the OS (no sandbox),
  // driver DMA reaches ALL kernel memory.
  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  ASSERT_NE(nic, nullptr);
  ASSERT_TRUE(machine_->CheckedWrite64(0, managed_.base, 0x41).ok());
  EXPECT_TRUE(nic->Copy(machine_.get(), managed_.base, managed_.base + kPageSize, 256).ok());
}

}  // namespace
}  // namespace tyche
