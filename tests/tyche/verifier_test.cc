// Copyright 2026 The Tyche Reproduction Authors.
// Customer-side verification, including multi-domain deployment attestation
// (§4.2: "all communication paths are secured and attested").

#include "src/tyche/verifier.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class VerifierTest : public BootedMachineTest {};

// Builds the two-domain deployment used by the deployment tests: domain A
// (parent) with a nested domain B and one declared channel page.
struct TwoDomainWorld {
  LoadedDomain a;
  LoadedDomain b;
  AddrRange channel;
  DomainAttestation report_a;
  DomainAttestation report_b;
};

class DeploymentTest : public BootedMachineTest {
 protected:
  Result<TwoDomainWorld> Build() {
    TwoDomainWorld world;
    const TycheImage image_a = TycheImage::MakeDemo("a", 2 * kPageSize, 0);
    LoadOptions load_a;
    load_a.base = Scratch(kMiB, 0).base;
    load_a.size = 8 * kMiB;
    load_a.cores = {1};
    load_a.core_caps = {OsCoreCap(1)};
    load_a.seal = false;
    TYCHE_ASSIGN_OR_RETURN(world.a, LoadImage(monitor_.get(), 0, image_a, load_a));

    // From inside A: spawn B (unsealed), share the channel, seal both.
    TYCHE_RETURN_IF_ERROR(monitor_->Transition(1, world.a.handle));
    const DomainId a_id = monitor_->CurrentDomain(1);
    const TycheImage image_b = TycheImage::MakeDemo("b", kPageSize, 0);
    LoadOptions load_b;
    load_b.base = load_a.base + 4 * kMiB;
    load_b.size = kMiB;
    load_b.cores = {1};
    load_b.core_caps = {*FindUnitCap(*monitor_, a_id, ResourceKind::kCpuCore, 1)};
    load_b.seal = false;
    TYCHE_ASSIGN_OR_RETURN(world.b, LoadImage(monitor_.get(), 1, image_b, load_b));
    world.channel = AddrRange{load_a.base + 2 * kMiB, kPageSize};
    TYCHE_RETURN_IF_ERROR(
        monitor_
            ->ShareMemory(1, *FindMemoryCap(*monitor_, a_id, world.channel),
                          world.b.handle, world.channel, Perms(Perms::kRW), CapRights{},
                          RevocationPolicy(RevocationPolicy::kObfuscate))
            .status());
    TYCHE_RETURN_IF_ERROR(monitor_->Seal(1, world.b.handle));
    TYCHE_ASSIGN_OR_RETURN(world.report_b, monitor_->AttestDomain(1, world.b.handle, 2));
    TYCHE_RETURN_IF_ERROR(monitor_->ReturnFromDomain(1));
    TYCHE_RETURN_IF_ERROR(monitor_->Seal(0, world.a.handle));
    TYCHE_ASSIGN_OR_RETURN(world.report_a, monitor_->AttestDomain(0, world.a.handle, 1));
    return world;
  }

  DeploymentPolicy PolicyFor(const TwoDomainWorld& world) {
    DeploymentPolicy policy;
    policy.channels.push_back(
        DeploymentChannel{world.channel, {world.a.domain, world.b.domain}, 0});
    return policy;
  }
};

TEST_F(DeploymentTest, HonestDeploymentVerifies) {
  auto world = Build();
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  const DomainAttestation reports[] = {world->report_a, world->report_b};
  EXPECT_TRUE(VerifyDeployment(reports, PolicyFor(*world)).ok());
}

TEST_F(DeploymentTest, UndeclaredChannelRejected) {
  auto world = Build();
  ASSERT_TRUE(world.ok());
  const DomainAttestation reports[] = {world->report_a, world->report_b};
  // The customer declares NO channels: the existing one must be flagged.
  EXPECT_EQ(VerifyDeployment(reports, DeploymentPolicy{}).code(),
            ErrorCode::kPolicyViolation);
}

TEST_F(DeploymentTest, EavesdropperDetectedByRefCount) {
  auto world = Build();
  ASSERT_TRUE(world.ok());
  // Forge: the relaying OS doctors B's channel refcount down (hiding a
  // third party). Cross-checking still fails against A's honest report...
  DomainAttestation doctored_b = world->report_b;
  for (ResourceClaim& claim : doctored_b.resources) {
    if (world->channel.Contains(claim.range) && claim.ref_count == 2) {
      claim.ref_count = 3;  // pretend an eavesdropper joined
    }
  }
  const DomainAttestation reports[] = {world->report_a, doctored_b};
  EXPECT_EQ(VerifyDeployment(reports, PolicyFor(*world)).code(),
            ErrorCode::kPolicyViolation);
}

TEST_F(DeploymentTest, MissingEndpointReportRejected) {
  auto world = Build();
  ASSERT_TRUE(world.ok());
  const DomainAttestation reports[] = {world->report_a};  // B's report withheld
  EXPECT_EQ(VerifyDeployment(reports, PolicyFor(*world)).code(),
            ErrorCode::kPolicyViolation);
}

TEST_F(DeploymentTest, ChannelNeverEstablishedRejected) {
  auto world = Build();
  ASSERT_TRUE(world.ok());
  // The customer expects a SECOND channel that was never set up.
  DeploymentPolicy policy = PolicyFor(*world);
  policy.channels.push_back(DeploymentChannel{
      AddrRange{world->a.base + 3 * kMiB, kPageSize}, {world->a.domain, world->b.domain},
      0});
  const DomainAttestation reports[] = {world->report_a, world->report_b};
  EXPECT_EQ(VerifyDeployment(reports, policy).code(), ErrorCode::kPolicyViolation);
}

TEST_F(DeploymentTest, ExternalPartiesAccounted) {
  // A channel declared as "shared with 1 external party" (e.g. the OS): a
  // refcount of endpoints+1 is accepted, anything else rejected.
  const TycheImage image = TycheImage::MakeDemo("ext", 2 * kPageSize, 4 * kPageSize);
  LoadOptions load;
  load.base = Scratch(32 * kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {OsCoreCap(1)};
  auto loaded = LoadImage(monitor_.get(), 0, image, load);
  ASSERT_TRUE(loaded.ok());
  const AddrRange netbuf{load.base + image.segments()[1].offset, image.segments()[1].size};
  const auto report = monitor_->AttestDomain(0, loaded->handle, 5);
  ASSERT_TRUE(report.ok());

  DeploymentPolicy policy;
  policy.channels.push_back(DeploymentChannel{netbuf, {loaded->domain}, 1});
  const DomainAttestation reports[] = {*report};
  EXPECT_TRUE(VerifyDeployment(reports, policy).ok());
  policy.channels[0].external_parties = 0;
  EXPECT_FALSE(VerifyDeployment(reports, policy).ok());
}

TEST_F(VerifierTest, SharingPolicyWithExpectedShared) {
  const TycheImage image = TycheImage::MakeDemo("p", 2 * kPageSize, 4 * kPageSize);
  LoadOptions load;
  load.base = Scratch(2 * kMiB, 0).base;
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {OsCoreCap(1)};
  auto loaded = LoadImage(monitor_.get(), 0, image, load);
  ASSERT_TRUE(loaded.ok());
  const auto report = monitor_->AttestDomain(0, loaded->handle, 5);
  ASSERT_TRUE(report.ok());

  // Default policy (all exclusive) fails because of the shared segment...
  EXPECT_FALSE(CustomerVerifier::CheckSharingPolicy(*report, SharingPolicy{}).ok());
  // ... declaring it makes the report pass.
  SharingPolicy policy;
  policy.expected_shared = {
      AddrRange{load.base + image.segments()[1].offset, image.segments()[1].size}};
  EXPECT_TRUE(CustomerVerifier::CheckSharingPolicy(*report, policy).ok());
}

TEST_F(VerifierTest, Tier2BeforeTier1Refused) {
  CustomerVerifier customer(machine_->tpm().attestation_key(), golden_firmware_,
                            golden_monitor_);
  DomainAttestation report;
  EXPECT_EQ(customer.VerifyDomainAgainstImage(report, TycheImage("x"), 0, kPageSize, {}, 0)
                .code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(customer.monitor_verified());
}

}  // namespace
}  // namespace tyche
