// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/channel.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class ChannelTest : public BootedMachineTest {};

std::vector<uint8_t> Msg(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST_F(ChannelTest, CreateValidation) {
  EXPECT_FALSE(Channel::Create(monitor_.get(), 0, AddrRange{Scratch(0, 0).base, kPageSize})
                   .ok());
  EXPECT_FALSE(
      Channel::Create(monitor_.get(), 0, AddrRange{Scratch(0, 0).base + 1, 2 * kPageSize})
          .ok());
  EXPECT_TRUE(
      Channel::Create(monitor_.get(), 0, AddrRange{Scratch(0, 0).base, 2 * kPageSize}).ok());
}

TEST_F(ChannelTest, SendRecvRoundTrip) {
  auto channel = Channel::Create(monitor_.get(), 0, Scratch(kMiB, 4 * kPageSize));
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(channel->Send(0, Msg("hello")).ok());
  ASSERT_TRUE(channel->Send(0, Msg("world")).ok());
  EXPECT_EQ(*channel->Recv(0), Msg("hello"));
  EXPECT_EQ(*channel->Recv(0), Msg("world"));
  EXPECT_EQ(channel->Recv(0).code(), ErrorCode::kNotFound);  // empty
}

TEST_F(ChannelTest, WrapsAroundRing) {
  auto channel = Channel::Create(monitor_.get(), 0, Scratch(kMiB, 2 * kPageSize));
  ASSERT_TRUE(channel.ok());
  // Capacity is one page; cycle enough data to wrap several times.
  const std::vector<uint8_t> payload(1000, 0xab);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(channel->Send(0, payload).ok()) << i;
    const auto received = channel->Recv(0);
    ASSERT_TRUE(received.ok()) << i;
    EXPECT_EQ(*received, payload);
  }
}

TEST_F(ChannelTest, FullChannelRejectsSend) {
  auto channel = Channel::Create(monitor_.get(), 0, Scratch(kMiB, 2 * kPageSize));
  ASSERT_TRUE(channel.ok());
  const std::vector<uint8_t> big(3000, 1);
  ASSERT_TRUE(channel->Send(0, big).ok());
  EXPECT_EQ(channel->Send(0, big).code(), ErrorCode::kResourceExhausted);
  // Draining frees space.
  ASSERT_TRUE(channel->Recv(0).ok());
  EXPECT_TRUE(channel->Send(0, big).ok());
}

TEST_F(ChannelTest, CrossDomainChannelWithRefCountCheck) {
  // Build an enclave sharing a buffer region with the OS, lay a channel
  // over it, talk across the boundary.
  const TycheImage image = TycheImage::MakeDemo("peer", 2 * kPageSize, 4 * kPageSize);
  LoadOptions options;
  options.base = Scratch(2 * kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  const auto loaded = LoadImage(monitor_.get(), 0, image, options);
  ASSERT_TRUE(loaded.ok());

  const AddrRange shared{options.base + image.segments()[1].offset,
                         image.segments()[1].size};
  auto channel = Channel::Create(monitor_.get(), 0, shared);
  ASSERT_TRUE(channel.ok());
  EXPECT_TRUE(channel->VerifyRefCount(2));  // exactly OS + enclave

  // OS sends, enclave receives (and answers).
  ASSERT_TRUE(channel->Send(0, Msg("request")).ok());
  ASSERT_TRUE(monitor_->Transition(1, loaded->handle).ok());
  EXPECT_EQ(*channel->Recv(1), Msg("request"));
  ASSERT_TRUE(channel->Send(1, Msg("response")).ok());
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());
  EXPECT_EQ(*channel->Recv(0), Msg("response"));
}

TEST_F(ChannelTest, RefCountCheckDetectsEavesdropper) {
  const TycheImage image = TycheImage::MakeDemo("peer", 2 * kPageSize, 4 * kPageSize);
  LoadOptions options;
  options.base = Scratch(4 * kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  options.seal = false;  // leave open so the "attack" below is expressible
  const auto loaded = LoadImage(monitor_.get(), 0, image, options);
  ASSERT_TRUE(loaded.ok());
  const AddrRange shared{options.base + image.segments()[1].offset,
                         image.segments()[1].size};
  auto channel = Channel::Create(monitor_.get(), 0, shared);
  ASSERT_TRUE(channel.ok());
  EXPECT_TRUE(channel->VerifyRefCount(2));

  // The OS also shares the buffer with a third domain: the judiciary check
  // on the channel fails from then on.
  const auto third = monitor_->CreateDomain(0, "eavesdropper");
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(monitor_->ShareMemory(0, OsMemCap(shared), third->handle, shared,
                                    Perms(Perms::kRead), CapRights{}, RevocationPolicy{})
                  .ok());
  EXPECT_FALSE(channel->VerifyRefCount(2));
}

}  // namespace
}  // namespace tyche
