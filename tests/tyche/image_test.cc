// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/image.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

ImageSegment Seg(const std::string& name, uint64_t offset, uint64_t size, uint8_t perms,
                 bool shared = false, bool measured = false) {
  ImageSegment segment;
  segment.name = name;
  segment.offset = offset;
  segment.size = size;
  segment.perms = Perms(perms);
  segment.shared = shared;
  segment.measured = measured;
  return segment;
}

TEST(ImageTest, AddSegmentValidation) {
  TycheImage image("t");
  EXPECT_TRUE(image.AddSegment(Seg("a", 0, kPageSize, Perms::kRX)).ok());
  // Unaligned offset / size, zero size.
  EXPECT_FALSE(image.AddSegment(Seg("b", 100, kPageSize, Perms::kRX)).ok());
  EXPECT_FALSE(image.AddSegment(Seg("c", kPageSize, 100, Perms::kRX)).ok());
  EXPECT_FALSE(image.AddSegment(Seg("d", kPageSize, 0, Perms::kRX)).ok());
  // Overlap.
  EXPECT_EQ(image.AddSegment(Seg("e", 0, 2 * kPageSize, Perms::kRW)).code(),
            ErrorCode::kAlreadyExists);
}

TEST(ImageTest, DataMustFitReservedSize) {
  TycheImage image("t");
  ImageSegment segment = Seg("a", 0, kPageSize, Perms::kRW);
  segment.data.resize(kPageSize + 1);
  EXPECT_FALSE(image.AddSegment(segment).ok());
}

TEST(ImageTest, SegmentsKeptSorted) {
  TycheImage image("t");
  ASSERT_TRUE(image.AddSegment(Seg("hi", 4 * kPageSize, kPageSize, Perms::kRW)).ok());
  ASSERT_TRUE(image.AddSegment(Seg("lo", 0, kPageSize, Perms::kRX)).ok());
  ASSERT_EQ(image.segments().size(), 2u);
  EXPECT_EQ(image.segments()[0].name, "lo");
  EXPECT_EQ(image.segments()[1].name, "hi");
  EXPECT_EQ(image.extent(), 5 * kPageSize);
}

TEST(ImageTest, SerializeRoundTrip) {
  TycheImage image("roundtrip");
  image.set_entry_offset(kPageSize);
  ImageSegment code = Seg("text", 0, 2 * kPageSize, Perms::kRX, false, true);
  code.data = {1, 2, 3, 4, 5};
  code.ring = 0;
  ASSERT_TRUE(image.AddSegment(code).ok());
  ImageSegment shared = Seg("buf", 2 * kPageSize, kPageSize, Perms::kRW, true, false);
  shared.ring = 3;
  ASSERT_TRUE(image.AddSegment(shared).ok());

  const std::vector<uint8_t> bytes = image.Serialize();
  const auto parsed = TycheImage::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name(), "roundtrip");
  EXPECT_EQ(parsed->entry_offset(), kPageSize);
  ASSERT_EQ(parsed->segments().size(), 2u);
  EXPECT_EQ(parsed->segments()[0].name, "text");
  EXPECT_EQ(parsed->segments()[0].data, code.data);
  EXPECT_TRUE(parsed->segments()[0].measured);
  EXPECT_FALSE(parsed->segments()[0].shared);
  EXPECT_TRUE(parsed->segments()[1].shared);
  EXPECT_EQ(parsed->segments()[1].perms.mask, Perms::kRW);
}

TEST(ImageTest, DeserializeRejectsGarbage) {
  const std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(TycheImage::Deserialize(garbage).ok());
  std::vector<uint8_t> bad_magic(64, 0);
  EXPECT_FALSE(TycheImage::Deserialize(bad_magic).ok());
  // Truncated but valid magic.
  TycheImage image = TycheImage::MakeDemo("x", kPageSize, kPageSize);
  std::vector<uint8_t> bytes = image.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(TycheImage::Deserialize(bytes).ok());
}

TEST(ImageTest, MakeDemoShape) {
  const TycheImage image = TycheImage::MakeDemo("demo", 3000, 5000);
  ASSERT_EQ(image.segments().size(), 2u);
  EXPECT_EQ(image.segments()[0].size, kPageSize);  // 3000 rounded up
  EXPECT_TRUE(image.segments()[0].measured);
  EXPECT_FALSE(image.segments()[0].shared);
  EXPECT_TRUE(image.segments()[1].shared);
  EXPECT_EQ(image.extent(), kPageSize + 2 * kPageSize);
  // Demo content is deterministic.
  const TycheImage again = TycheImage::MakeDemo("demo", 3000, 5000);
  EXPECT_EQ(image.segments()[0].data, again.segments()[0].data);
}

}  // namespace
}  // namespace tyche
