// Copyright 2026 The Tyche Reproduction Authors.
// Tyche-enclave behaviour, including the three §4.2 improvements over SGX.

#include "src/tyche/enclave.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class EnclaveTest : public BootedMachineTest {
 protected:
  Result<Enclave> MakeEnclave(const std::string& name, uint64_t base_offset,
                              uint64_t size = 1ull << 20) {
    const TycheImage image = TycheImage::MakeDemo(name, 2 * kPageSize, kPageSize);
    LoadOptions options;
    options.base = Scratch(base_offset, 0).base;
    options.size = size;
    options.cores = {1};
    options.core_caps = {OsCoreCap(1)};
    return Enclave::Create(monitor_.get(), 0, image, options);
  }
};

TEST_F(EnclaveTest, ExplicitSharingOnly) {
  auto enclave = MakeEnclave("explicit", kMiB);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();
  // The enclave sees ONLY its own memory: entering it and touching OS
  // memory faults (nothing implicit, unlike SGX's host address space).
  ASSERT_TRUE(enclave->Enter(1).ok());
  EXPECT_TRUE(machine_->CheckedRead64(1, enclave->base()).ok());
  EXPECT_FALSE(machine_->CheckedRead64(1, managed_.base).ok());
  ASSERT_TRUE(enclave->Exit(1).ok());
}

TEST_F(EnclaveTest, AddressReuseAfterDestroy) {
  // SGX burns the ELRANGE; Tyche-enclaves reuse physical ranges freely.
  auto first = MakeEnclave("first", 2 * kMiB);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(monitor_->DestroyDomain(0, first->handle()).ok());
  auto second = MakeEnclave("second", 2 * kMiB);  // same range
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(EnclaveTest, ManyEnclavesSameProcess) {
  // Arbitrary number of enclaves for one host (here: the OS), limited only
  // by memory.
  std::vector<Enclave> enclaves;
  for (int i = 0; i < 8; ++i) {
    auto enclave = MakeEnclave("many", 4 * kMiB + static_cast<uint64_t>(i) * kMiB, kMiB);
    ASSERT_TRUE(enclave.ok()) << i << ": " << enclave.status().ToString();
    enclaves.push_back(std::move(*enclave));
  }
  EXPECT_EQ(monitor_->num_domains_alive(), 1u + 8u);
}

TEST_F(EnclaveTest, NestedEnclaveSpawnedFromInside) {
  auto parent = MakeEnclave("parent", 16 * kMiB, 4 * kMiB);
  ASSERT_TRUE(parent.ok()) << parent.status().ToString();

  // Enter the parent and spawn a nested enclave from its own memory -- the
  // parent is SEALED, yet may delegate to domains it creates (§4.2).
  ASSERT_TRUE(parent->Enter(1).ok());
  const TycheImage nested_image = TycheImage::MakeDemo("nested", kPageSize, 0);
  auto nested = parent->SpawnNested(1, nested_image, parent->base() + 2 * kMiB, kMiB, {1});
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();

  // The nested enclave's memory is exclusive: the parent lost access.
  EXPECT_FALSE(machine_->CheckedRead64(1, parent->base() + 2 * kMiB).ok());
  EXPECT_TRUE(monitor_->engine().ExclusivelyOwned(nested->domain(),
                                                  AddrRange{nested->base(), kMiB}));

  // Nested call chain: parent -> nested -> back.
  ASSERT_TRUE(nested->Enter(1).ok());
  EXPECT_EQ(monitor_->CurrentDomain(1), nested->domain());
  ASSERT_TRUE(nested->Exit(1).ok());
  EXPECT_EQ(monitor_->CurrentDomain(1), parent->domain());
  ASSERT_TRUE(parent->Exit(1).ok());
  EXPECT_EQ(monitor_->CurrentDomain(1), os_domain_);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(EnclaveTest, SpawnNestedRequiresBeingInside) {
  auto parent = MakeEnclave("outside", 24 * kMiB, 4 * kMiB);
  ASSERT_TRUE(parent.ok());
  const TycheImage nested_image = TycheImage::MakeDemo("nested", kPageSize, 0);
  // Called from the OS (core 0 runs the OS): must fail.
  EXPECT_EQ(parent->SpawnNested(0, nested_image, parent->base() + 2 * kMiB, kMiB, {1})
                .code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(EnclaveTest, SharedPagesWithNestedChildMakeAChannel) {
  auto parent = MakeEnclave("chan-parent", 32 * kMiB, 4 * kMiB);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(parent->Enter(1).ok());
  // Spawn the child UNSEALED, share an exclusively-owned page into it, then
  // seal -- the §4.2 "secured communication channel" recipe.
  const TycheImage nested_image = TycheImage::MakeDemo("chan-child", kPageSize, 0);
  auto child = parent->SpawnNested(1, nested_image, parent->base() + 2 * kMiB, kMiB, {1},
                                   /*seal=*/false);
  ASSERT_TRUE(child.ok()) << child.status().ToString();

  const AddrRange channel{parent->base() + kMiB, kPageSize};
  const auto shared = parent->ShareWithChild(1, child->handle(), channel, Perms(Perms::kRW));
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ASSERT_TRUE(monitor_->Seal(1, child->handle()).ok());
  EXPECT_EQ(monitor_->engine().MemoryRefCount(channel), 2u);

  // Both sides can use it; the OS cannot see it.
  ASSERT_TRUE(machine_->CheckedWrite64(1, channel.base, 0x5ec2e7).ok());
  ASSERT_TRUE(child->Enter(1).ok());
  EXPECT_EQ(*machine_->CheckedRead64(1, channel.base), 0x5ec2e7u);
  ASSERT_TRUE(child->Exit(1).ok());
  ASSERT_TRUE(parent->Exit(1).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, channel.base).ok());

  // Once sealed, the channel cannot be widened: sharing the same page to a
  // third domain the parent did not create is rejected, and the child's
  // attested refcounts stay stable.
  EXPECT_EQ(monitor_->engine().MemoryRefCount(channel), 2u);
}

TEST_F(EnclaveTest, SealedEnclaveCannotLeakToStranger) {
  // The dual of nesting: a sealed enclave CANNOT share with a pre-existing
  // domain (that would invalidate its attested sharing state).
  auto a = MakeEnclave("a", 40 * kMiB, 2 * kMiB);
  auto b = MakeEnclave("b", 44 * kMiB, 2 * kMiB);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Enter(1).ok());
  // From inside A, try to share A's memory with B. B's handle is owned by
  // the OS, so A cannot even name B -- and even with a handle the sealing
  // rule would block it. Use the handle directly to prove the second line
  // of defence.
  const auto result = a->ShareWithChild(1, b->handle(), AddrRange{a->base(), kPageSize},
                                        Perms(Perms::kRW));
  EXPECT_FALSE(result.ok());
  ASSERT_TRUE(a->Exit(1).ok());
}

TEST_F(EnclaveTest, FastCallsAfterArming) {
  auto enclave = MakeEnclave("fast", 48 * kMiB);
  ASSERT_TRUE(enclave.ok());
  ASSERT_TRUE(enclave->EnableFastCalls(1).ok());
  const uint64_t before = machine_->cycles().cycles();
  ASSERT_TRUE(enclave->FastEnter(1).ok());
  ASSERT_TRUE(enclave->FastExit(1).ok());
  const uint64_t round_trip = machine_->cycles().cycles() - before;
  EXPECT_EQ(round_trip, 2 * CostModel::Default().vmfunc_switch);
}

TEST_F(EnclaveTest, AttestationShowsChannelRefCounts) {
  auto enclave = MakeEnclave("attested", 52 * kMiB);
  ASSERT_TRUE(enclave.ok());
  const auto report = enclave->Attest(0, 7);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->sealed);
  // The shared demo segment has refcount 2 (OS + enclave); the text segment
  // and heap are exclusive.
  uint32_t exclusive = 0;
  uint32_t shared = 0;
  for (const ResourceClaim& claim : report->resources) {
    if (claim.kind != ResourceKind::kMemory) {
      continue;
    }
    if (claim.ref_count == 1) {
      ++exclusive;
    } else if (claim.ref_count == 2) {
      ++shared;
    }
  }
  EXPECT_GE(exclusive, 2u);
  EXPECT_EQ(shared, 1u);
}

}  // namespace
}  // namespace tyche
