// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/loader.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class LoaderTest : public BootedMachineTest {};

TEST_F(LoaderTest, LayoutCoversWholeRegion) {
  const TycheImage image = TycheImage::MakeDemo("demo", 2 * kPageSize, kPageSize);
  const auto layout = ComputeLoadLayout(image, 0x100000, 16 * kPageSize);
  ASSERT_TRUE(layout.ok());
  // text (confidential) + shared + heap tail.
  ASSERT_EQ(layout->size(), 3u);
  EXPECT_FALSE((*layout)[0].shared);
  EXPECT_TRUE((*layout)[1].shared);
  EXPECT_TRUE((*layout)[2].heap);
  uint64_t covered = 0;
  for (const LayoutRegion& region : *layout) {
    covered += region.range.size;
  }
  EXPECT_EQ(covered, 16 * kPageSize);
}

TEST_F(LoaderTest, LayoutRejectsOversizedImage) {
  const TycheImage image = TycheImage::MakeDemo("demo", 8 * kPageSize, 0);
  EXPECT_FALSE(ComputeLoadLayout(image, 0x100000, 4 * kPageSize).ok());
  EXPECT_FALSE(ComputeLoadLayout(image, 0x100001, 16 * kPageSize).ok());
}

TEST_F(LoaderTest, LoadImageBuildsSealedDomain) {
  const TycheImage image = TycheImage::MakeDemo("worker", 2 * kPageSize, kPageSize);
  LoadOptions options;
  options.base = Scratch(kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  const auto loaded = LoadImage(monitor_.get(), 0, image, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto domain = monitor_->GetDomain(loaded->domain);
  ASSERT_TRUE(domain.ok());
  EXPECT_TRUE((*domain)->sealed());
  EXPECT_EQ((*domain)->entry_point, options.base);

  // Segment content was copied into place (read through the domain itself).
  ASSERT_TRUE(monitor_->Transition(1, loaded->handle).ok());
  std::vector<uint8_t> buffer(16);
  ASSERT_TRUE(machine_->CheckedRead(1, options.base, std::span<uint8_t>(buffer)).ok());
  EXPECT_EQ(buffer[0], image.segments()[0].data[0]);
  ASSERT_TRUE(monitor_->ReturnFromDomain(1).ok());

  // The OS kept access to the shared segment but not to the text segment.
  const uint64_t shared_base = options.base + image.segments()[1].offset;
  EXPECT_TRUE(machine_->CheckedRead64(0, shared_base).ok());
  EXPECT_FALSE(machine_->CheckedRead64(0, options.base).ok());
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(LoaderTest, OfflineMeasurementMatchesAttestation) {
  const TycheImage image = TycheImage::MakeDemo("verified", 3 * kPageSize, 2 * kPageSize);
  LoadOptions options;
  options.base = Scratch(2 * kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  const auto loaded = LoadImage(monitor_.get(), 0, image, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto report = monitor_->AttestDomain(0, loaded->handle, 99);
  ASSERT_TRUE(report.ok());
  const auto golden =
      ComputeExpectedMeasurement(image, options.base, options.size, options.cores);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(report->measurement, *golden);
}

TEST_F(LoaderTest, MeasurementDetectsTamperedContent) {
  TycheImage image = TycheImage::MakeDemo("tamper", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(3 * kMiB, 0).base;
  options.size = 512 * 1024;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  // The OS tampers with the image before loading (supply-chain attack).
  TycheImage tampered = image;
  const_cast<std::vector<uint8_t>&>(tampered.segments()[0].data)[0] ^= 0xff;
  const auto loaded = LoadImage(monitor_.get(), 0, tampered, options);
  ASSERT_TRUE(loaded.ok());
  const auto report = monitor_->AttestDomain(0, loaded->handle, 1);
  const auto golden =
      ComputeExpectedMeasurement(image, options.base, options.size, options.cores);
  EXPECT_NE(report->measurement, *golden);
}

TEST_F(LoaderTest, MeasurementBindsConfiguration) {
  // Same image, different core set => different measurement: the attested
  // identity covers the isolation configuration, not just code.
  const TycheImage image = TycheImage::MakeDemo("cfg", 2 * kPageSize, 0);
  const uint64_t base = Scratch(4 * kMiB, 0).base;
  const auto a = ComputeExpectedMeasurement(image, base, kMiB, {1});
  const auto b = ComputeExpectedMeasurement(image, base, kMiB, {1, 2});
  const auto c = ComputeExpectedMeasurement(image, base, 2 * kMiB, {1});
  ASSERT_TRUE(a.ok());
  EXPECT_NE(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST_F(LoaderTest, SequentialLoadsDespiteSplitCapabilities) {
  // Loading several domains exercises capability rediscovery after grants
  // split the OS's root capability.
  for (int i = 0; i < 4; ++i) {
    const TycheImage image = TycheImage::MakeDemo("multi", 2 * kPageSize, kPageSize);
    LoadOptions options;
    options.base = Scratch(8 * kMiB + static_cast<uint64_t>(i) * kMiB, 0).base;
    options.size = kMiB;
    options.cores = {1};
    options.core_caps = {OsCoreCap(1)};
    const auto loaded = LoadImage(monitor_.get(), 0, image, options);
    ASSERT_TRUE(loaded.ok()) << "iteration " << i << ": " << loaded.status().ToString();
  }
  EXPECT_EQ(monitor_->num_domains_alive(), 1u + 4u);
  EXPECT_TRUE(*monitor_->AuditHardwareConsistency());
}

TEST_F(LoaderTest, CoreCapsMismatchRejected) {
  const TycheImage image = TycheImage::MakeDemo("bad", kPageSize, 0);
  LoadOptions options;
  options.base = Scratch(16 * kMiB, 0).base;
  options.size = kMiB;
  options.cores = {1, 2};
  options.core_caps = {OsCoreCap(1)};
  EXPECT_FALSE(LoadImage(monitor_.get(), 0, image, options).ok());
}

}  // namespace
}  // namespace tyche
