// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/confidential_vm.h"

#include <gtest/gtest.h>

#include "tests/testing/booted_machine.h"

namespace tyche {
namespace {

class ConfidentialVmTest : public BootedMachineTest {
 protected:
  ConfidentialVmTest() : BootedMachineTest(FixtureOptions{.with_nic = true}) {}

  TycheImage GuestKernel() {
    TycheImage image("guest-kernel");
    ImageSegment kernel;
    kernel.name = "kernel";
    kernel.offset = 0;
    kernel.size = 4 * kPageSize;
    kernel.perms = Perms(Perms::kRWX);
    kernel.measured = true;
    kernel.data.assign(4 * kPageSize, 0x90);
    (void)image.AddSegment(std::move(kernel));
    image.set_entry_offset(0);
    return image;
  }
};

TEST_F(ConfidentialVmTest, VmIsExclusiveAndMultiCore) {
  ConfidentialVmOptions options;
  options.base = Scratch(8 * kMiB, 0).base;
  options.size = 16 * kMiB;
  options.cores = {1, 2};
  options.core_caps = {OsCoreCap(1), OsCoreCap(2)};
  auto vm = ConfidentialVm::Create(monitor_.get(), 0, GuestKernel(), options);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();

  EXPECT_TRUE(vm->MemoryIsExclusive());
  // The host (cloud provider) cannot read guest memory.
  EXPECT_FALSE(machine_->CheckedRead64(0, options.base).ok());

  // Two vCPUs run concurrently on two cores.
  ASSERT_TRUE(vm->StartVcpu(1).ok());
  ASSERT_TRUE(vm->StartVcpu(2).ok());
  EXPECT_EQ(monitor_->CurrentDomain(1), vm->domain());
  EXPECT_EQ(monitor_->CurrentDomain(2), vm->domain());
  EXPECT_TRUE(machine_->CheckedWrite64(1, options.base + kMiB, 1).ok());
  EXPECT_TRUE(machine_->CheckedWrite64(2, options.base + 2 * kMiB, 2).ok());
  // Not on core 3 (never given to the VM).
  EXPECT_EQ(vm->StartVcpu(3).code(), ErrorCode::kTransitionDenied);
  ASSERT_TRUE(vm->StopVcpu(1).ok());
  ASSERT_TRUE(vm->StopVcpu(2).ok());
}

TEST_F(ConfidentialVmTest, DeviceGrantedExclusively) {
  ConfidentialVmOptions options;
  options.base = Scratch(8 * kMiB, 0).base;
  options.size = 8 * kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  options.device_caps = {OsDeviceCap(kNicBdf.value)};
  auto vm = ConfidentialVm::Create(monitor_.get(), 0, GuestKernel(), options);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();

  auto* nic = static_cast<DmaEngine*>(machine_->FindDevice(kNicBdf));
  // The NIC now DMAs with the VM's view: inside VM memory OK, host memory
  // faults.
  EXPECT_TRUE(nic->Copy(machine_.get(), options.base + kMiB, options.base + 2 * kMiB, 64)
                  .ok());
  EXPECT_EQ(nic->Copy(machine_.get(), options.base, managed_.base, 64).code(),
            ErrorCode::kIommuFault);
  // And the host no longer holds the device capability.
  EXPECT_FALSE(monitor_->engine().HasUnit(os_domain_, ResourceKind::kPciDevice,
                                          kNicBdf.value));
}

TEST_F(ConfidentialVmTest, VmAttestationVerifiesEndToEnd) {
  ConfidentialVmOptions options;
  options.base = Scratch(8 * kMiB, 0).base;
  options.size = 8 * kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  const TycheImage guest = GuestKernel();
  auto vm = ConfidentialVm::Create(monitor_.get(), 0, guest, options);
  ASSERT_TRUE(vm.ok());

  const auto report = vm->Attest(0, 1234);
  ASSERT_TRUE(report.ok());
  const auto golden =
      ComputeExpectedMeasurement(guest, options.base, options.size, options.cores);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(report->measurement, *golden);
  // Every memory claim exclusive.
  for (const ResourceClaim& claim : report->resources) {
    if (claim.kind == ResourceKind::kMemory) {
      EXPECT_EQ(claim.ref_count, 1u);
    }
  }
}

TEST_F(ConfidentialVmTest, TeardownReturnsMemoryZeroed) {
  ConfidentialVmOptions options;
  options.base = Scratch(8 * kMiB, 0).base;
  options.size = 8 * kMiB;
  options.cores = {1};
  options.core_caps = {OsCoreCap(1)};
  auto vm = ConfidentialVm::Create(monitor_.get(), 0, GuestKernel(), options);
  ASSERT_TRUE(vm.ok());

  // Guest writes a secret.
  ASSERT_TRUE(vm->StartVcpu(1).ok());
  ASSERT_TRUE(machine_->CheckedWrite64(1, options.base + kMiB, 0x5ec4e7).ok());
  ASSERT_TRUE(vm->StopVcpu(1).ok());

  ASSERT_TRUE(monitor_->DestroyDomain(0, vm->handle()).ok());
  // Obfuscating revocation policy: the host regains ZEROED memory.
  EXPECT_EQ(*machine_->CheckedRead64(0, options.base + kMiB), 0u);
}

}  // namespace
}  // namespace tyche
