// Copyright 2026 The Tyche Reproduction Authors.
// Shared fixture: a machine booted under the monitor with LinOS as the
// initial domain. Used by libtyche, OS, and integration tests.

#ifndef TESTS_TESTING_BOOTED_MACHINE_H_
#define TESTS_TESTING_BOOTED_MACHINE_H_

#include <gtest/gtest.h>

#include "src/monitor/boot.h"
#include "src/os/kernel.h"
#include "src/tyche/loader.h"

namespace tyche {

class BootedMachineTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMiB = 1ull << 20;

  struct FixtureOptions {
    IsaArch arch = IsaArch::kX86_64;
    uint64_t memory_bytes = 128ull << 20;
    uint32_t cores = 4;
    bool with_nic = false;  // DmaEngine at 0:3.0
    bool with_gpu = false;  // GpuDevice at 0:4.0
  };

  static constexpr PciBdf kNicBdf = PciBdf(0, 3, 0);
  static constexpr PciBdf kGpuBdf = PciBdf(0, 4, 0);

  BootedMachineTest() : BootedMachineTest(FixtureOptions{}) {}

  explicit BootedMachineTest(const FixtureOptions& fixture) {
    MachineConfig config;
    config.arch = fixture.arch;
    config.memory_bytes = fixture.memory_bytes;
    config.num_cores = fixture.cores;
    machine_ = std::make_unique<Machine>(config);
    if (fixture.with_nic) {
      EXPECT_TRUE(machine_->AddDevice(std::make_unique<DmaEngine>(kNicBdf, "nic0")).ok());
    }
    if (fixture.with_gpu) {
      EXPECT_TRUE(machine_->AddDevice(std::make_unique<GpuDevice>(kGpuBdf, "gpu0")).ok());
    }

    firmware_ = DemoFirmwareImage();
    monitor_image_ = DemoMonitorImage();
    BootParams params;
    params.firmware_image = firmware_;
    params.monitor_image = monitor_image_;
    auto outcome = MeasuredBoot(machine_.get(), params);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    monitor_ = std::move(outcome->monitor);
    os_domain_ = outcome->initial_domain;
    golden_firmware_ = outcome->firmware_measurement;
    golden_monitor_ = outcome->monitor_measurement;

    // LinOS manages the upper half of its memory through its allocator; the
    // lower half stays "kernel reserved" (and is where tests place enclaves
    // loaded directly, outside the allocator).
    const uint64_t os_base = monitor_->monitor_range().end();
    const uint64_t os_size = fixture.memory_bytes - os_base;
    managed_ = AddrRange{os_base + os_size / 2, os_size / 2};
    os_ = std::make_unique<LinOs>(monitor_.get(), os_domain_,
                                  *FindMemoryCap(*monitor_, os_domain_,
                                                 AddrRange{os_base, os_size}),
                                  managed_);
  }

  CapId OsMemCap(AddrRange range) { return *FindMemoryCap(*monitor_, os_domain_, range); }
  CapId OsCoreCap(CoreId core) {
    return *FindUnitCap(*monitor_, os_domain_, ResourceKind::kCpuCore, core);
  }
  CapId OsDeviceCap(uint16_t bdf) {
    return *FindUnitCap(*monitor_, os_domain_, ResourceKind::kPciDevice, bdf);
  }

  // Unmanaged scratch region for direct domain placement.
  AddrRange Scratch(uint64_t offset, uint64_t size) const {
    return AddrRange{monitor_->monitor_range().end() + offset, size};
  }

  std::vector<uint8_t> firmware_;
  std::vector<uint8_t> monitor_image_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<LinOs> os_;
  DomainId os_domain_ = kInvalidDomain;
  AddrRange managed_;
  Digest golden_firmware_;
  Digest golden_monitor_;
};

}  // namespace tyche

#endif  // TESTS_TESTING_BOOTED_MACHINE_H_
