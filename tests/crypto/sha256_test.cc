// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

TEST(Sha256Test, EmptyStringVector) {
  EXPECT_EQ(Sha256::Hash(std::string_view("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(Sha256::Hash(std::string_view("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  // FIPS 180-4 example: 56-byte message forcing two-block padding.
  EXPECT_EQ(
      Sha256::Hash(std::string_view("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, QuickBrownFox) {
  EXPECT_EQ(Sha256::Hash(std::string_view("The quick brown fox jumps over the lazy dog"))
                .ToHex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data(1000, 'x');
  Sha256 ctx;
  for (size_t i = 0; i < data.size(); i += 7) {
    ctx.Update(std::string_view(data).substr(i, 7));
  }
  EXPECT_EQ(ctx.Finalize(), Sha256::Hash(data));
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4: one million repetitions of 'a'.
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.Update(chunk);
  }
  EXPECT_EQ(ctx.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ResetAfterFinalize) {
  Sha256 ctx;
  ctx.Update(std::string_view("abc"));
  (void)ctx.Finalize();
  ctx.Update(std::string_view("abc"));
  EXPECT_EQ(ctx.Finalize(), Sha256::Hash(std::string_view("abc")));
}

TEST(Sha256Test, UpdateValueOrderSensitive) {
  Sha256 a;
  a.UpdateValue<uint64_t>(1);
  a.UpdateValue<uint64_t>(2);
  Sha256 b;
  b.UpdateValue<uint64_t>(2);
  b.UpdateValue<uint64_t>(1);
  EXPECT_NE(a.Finalize(), b.Finalize());
}

TEST(DigestTest, ZeroAndComparison) {
  Digest zero;
  EXPECT_TRUE(zero.IsZero());
  const Digest d = Sha256::Hash(std::string_view("x"));
  EXPECT_FALSE(d.IsZero());
  EXPECT_NE(d, zero);
  EXPECT_EQ(d, Sha256::Hash(std::string_view("x")));
}

TEST(DigestTest, HexIs64Chars) {
  EXPECT_EQ(Digest{}.ToHex().size(), 64u);
  EXPECT_EQ(Digest{}.ToHex(), std::string(64, '0'));
}

TEST(HmacTest, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string message = "what do ya want for nothing?";
  const Digest mac =
      HmacSha256(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(key.data()),
                                          key.size()),
                 std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(message.data()),
                                          message.size()));
  EXPECT_EQ(mac.ToHex(), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case1) {
  const std::vector<uint8_t> key(20, 0x0b);
  const std::string message = "Hi There";
  const Digest mac = HmacSha256(
      std::span<const uint8_t>(key),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(message.data()),
                               message.size()));
  EXPECT_EQ(mac.ToHex(), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const std::vector<uint8_t> long_key(131, 0xaa);
  const std::string message = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = HmacSha256(
      std::span<const uint8_t>(long_key),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(message.data()),
                               message.size()));
  EXPECT_EQ(mac.ToHex(), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace tyche
