// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/schnorr.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(SchnorrParamsTest, SafePrimeGroup) {
  const SchnorrParams& p = SchnorrParams::Default();
  EXPECT_EQ(p.p, 2 * p.q + 1);
  // g generates the order-q subgroup: g^q == 1 and g != 1.
  EXPECT_EQ(PowMod(p.g, p.q, p.p), 1u);
  EXPECT_NE(p.g, 1u);
}

TEST(ModArithTest, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod(7, 9, 13), 63 % 13);
  EXPECT_EQ(MulMod(0, 9, 13), 0u);
  // Large operands that would overflow 64-bit multiplication.
  const uint64_t big = 0x3ffffffffffff000ULL;
  EXPECT_EQ(MulMod(big, big, SchnorrParams::Default().p),
            static_cast<uint64_t>(static_cast<unsigned __int128>(big) * big %
                                  SchnorrParams::Default().p));
}

TEST(ModArithTest, PowModIdentities) {
  EXPECT_EQ(PowMod(5, 0, 97), 1u);
  EXPECT_EQ(PowMod(5, 1, 97), 5u);
  EXPECT_EQ(PowMod(2, 10, 100000), 1024u);
  // Fermat: a^(p-1) == 1 mod p for prime p.
  EXPECT_EQ(PowMod(1234567, SchnorrParams::Default().p - 1, SchnorrParams::Default().p), 1u);
}

TEST(ModArithTest, MulModNearOverflowBoundaries) {
  // Operands just below the 62-bit prime and its cofactors: these products
  // overflow 64 bits by ~60 bits and are exactly the inputs a non-widening
  // implementation would get wrong silently.
  const SchnorrParams& p = SchnorrParams::Default();
  const auto ref = [](uint64_t a, uint64_t b, uint64_t m) {
    return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b % m);
  };
  const uint64_t cases[] = {p.p - 1, p.p - 2, p.q, p.q - 1, p.q + 1,
                            (p.p - 1) / 2, 1ull << 61, (1ull << 62) - 1};
  for (const uint64_t a : cases) {
    for (const uint64_t b : cases) {
      EXPECT_EQ(MulMod(a, b, p.p), ref(a, b, p.p)) << a << " * " << b;
      EXPECT_EQ(MulMod(a, b, p.q), ref(a, b, p.q)) << a << " * " << b;
    }
  }
  // (p-1)^2 mod p == 1: the classic near-modulus identity.
  EXPECT_EQ(MulMod(p.p - 1, p.p - 1, p.p), 1u);
}

TEST(ModArithTest, PowModBoundaryExponents) {
  const SchnorrParams& p = SchnorrParams::Default();
  // Euler / Fermat at the group boundaries with near-modulus bases.
  EXPECT_EQ(PowMod(p.p - 1, 2, p.p), 1u);
  EXPECT_EQ(PowMod(p.p - 1, p.p - 1, p.p), 1u);  // (-1)^(even)
  EXPECT_EQ(PowMod(p.p - 2, p.p - 1, p.p), 1u);
  // g has order exactly q: g^q == 1, g^(q-1) == g^{-1} != 1.
  EXPECT_EQ(PowMod(p.g, p.q, p.p), 1u);
  const uint64_t g_inv = PowMod(p.g, p.q - 1, p.p);
  EXPECT_NE(g_inv, 1u);
  EXPECT_EQ(MulMod(g_inv, p.g, p.p), 1u);
  // Base >= modulus must reduce first.
  EXPECT_EQ(PowMod(p.p + 5, 3, p.p), PowMod(5, 3, p.p));
  EXPECT_EQ(PowMod(7, 0, 1), 0u);  // mod 1: everything is 0
}

TEST(ModArithTest, MultiExpModMatchesPowModProducts) {
  const SchnorrParams& p = SchnorrParams::Default();
  const uint64_t bases[] = {p.g, 123456789, p.p - 2, 42};
  const uint64_t exps[] = {p.q - 1, 0, 0xDEADBEEF, 1};
  uint64_t expected = 1;
  for (size_t i = 0; i < 4; ++i) {
    expected = MulMod(expected, PowMod(bases[i], exps[i], p.p), p.p);
  }
  EXPECT_EQ(MultiExpMod(bases, exps, p.p), expected);
  // All-zero exponents: the empty product.
  const uint64_t zeros[] = {0, 0, 0, 0};
  EXPECT_EQ(MultiExpMod(bases, zeros, p.p), 1u);
  EXPECT_EQ(MultiExpMod({}, {}, p.p), 1u);
}

TEST(SchnorrTest, DeriveIsDeterministic) {
  const SchnorrKeyPair a = DeriveKeyPair(Bytes("seed-a"));
  const SchnorrKeyPair b = DeriveKeyPair(Bytes("seed-a"));
  EXPECT_EQ(a.priv.x, b.priv.x);
  EXPECT_EQ(a.pub, b.pub);
  const SchnorrKeyPair c = DeriveKeyPair(Bytes("seed-c"));
  EXPECT_NE(a.priv.x, c.priv.x);
}

TEST(SchnorrTest, SignVerifyRoundTrip) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("tpm-endorsement"));
  const std::string message = "attestation report body";
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes(message));
  EXPECT_TRUE(SchnorrVerify(key.pub, Bytes(message), sig));
}

TEST(SchnorrTest, RejectsTamperedMessage) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("original"));
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("tampered"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k1"));
  const SchnorrKeyPair other = DeriveKeyPair(Bytes("k2"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  EXPECT_FALSE(SchnorrVerify(other.pub, Bytes("msg"), sig));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  sig.s ^= 1;
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), sig));
  SchnorrSignature sig2 = SchnorrSign(key.priv, Bytes("msg"));
  sig2.e.bytes[0] ^= 0x80;
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), sig2));
}

TEST(SchnorrTest, RejectsMalformedKeyOrScalar) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  EXPECT_FALSE(SchnorrVerify(SchnorrPublicKey{0}, Bytes("msg"), sig));
  SchnorrSignature oversize = sig;
  oversize.s = SchnorrParams::Default().q;  // out of range
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), oversize));
}

TEST(SchnorrTest, DeterministicSignature) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  EXPECT_EQ(SchnorrSign(key.priv, Bytes("m")), SchnorrSign(key.priv, Bytes("m")));
}

TEST(SchnorrTest, DigestOverloadMatchesBytes) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const Digest digest = Sha256::Hash(Bytes("payload"));
  const SchnorrSignature a = SchnorrSign(key.priv, Bytes("payload"));
  const SchnorrSignature b = SchnorrSign(key.priv, digest);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(SchnorrVerify(key.pub, digest, a));
}

std::vector<SchnorrBatchItem> MakeBatch(size_t n, const std::string& key_seed) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes(key_seed));
  std::vector<SchnorrBatchItem> items;
  for (size_t i = 0; i < n; ++i) {
    const Digest digest = Sha256::Hash(Bytes("quote-" + std::to_string(i)));
    items.push_back(SchnorrBatchItem{key.pub, digest, SchnorrSign(key.priv, digest)});
  }
  return items;
}

TEST(SchnorrBatchTest, EmptyBatchIsValid) {
  const SchnorrBatchOutcome outcome = SchnorrBatchVerify({});
  EXPECT_TRUE(outcome.all_valid);
  EXPECT_FALSE(outcome.used_fallback);
  EXPECT_TRUE(outcome.invalid.empty());
}

TEST(SchnorrBatchTest, AllValidBatchSkipsFallback) {
  for (const size_t n : {2u, 3u, 8u, 17u}) {
    const auto items = MakeBatch(n, "monitor-key");
    const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
    EXPECT_TRUE(outcome.all_valid) << n;
    EXPECT_FALSE(outcome.used_fallback) << n;
    EXPECT_TRUE(outcome.invalid.empty()) << n;
  }
}

TEST(SchnorrBatchTest, BatchOfOneEqualsSingleVerify) {
  auto items = MakeBatch(1, "k");
  EXPECT_TRUE(SchnorrBatchVerify(items).all_valid);
  // Forge it: outcome must match SchnorrVerify exactly.
  items[0].sig.s ^= 1;
  const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 1u);
  EXPECT_EQ(outcome.invalid[0], 0u);
  EXPECT_FALSE(SchnorrVerify(items[0].pub, items[0].message_digest, items[0].sig));
}

TEST(SchnorrBatchTest, OneForgedSignatureIsAlwaysIdentified) {
  // Every forgery position, several forgery shapes: the batch must drop to
  // fallback and attribute the failure to exactly the culprit index.
  for (size_t n : {2u, 4u, 8u}) {
    for (size_t victim = 0; victim < n; ++victim) {
      for (int shape = 0; shape < 4; ++shape) {
        auto items = MakeBatch(n, "monitor-key");
        switch (shape) {
          case 0:
            items[victim].sig.s ^= 1;  // corrupt response scalar
            break;
          case 1:
            items[victim].sig.e.bytes[3] ^= 0x40;  // corrupt challenge
            break;
          case 2:
            items[victim].sig.r ^= 2;  // corrupt commitment
            break;
          case 3:
            items[victim].message_digest.bytes[0] ^= 0x01;  // wrong message
            break;
        }
        const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
        EXPECT_FALSE(outcome.all_valid) << n << "/" << victim << "/" << shape;
        ASSERT_EQ(outcome.invalid.size(), 1u) << n << "/" << victim << "/" << shape;
        EXPECT_EQ(outcome.invalid[0], victim) << n << "/" << victim << "/" << shape;
      }
    }
  }
}

TEST(SchnorrBatchTest, MultipleForgeriesAllAttributed) {
  auto items = MakeBatch(6, "monitor-key");
  items[1].sig.s ^= 1;
  items[4].sig.e.bytes[0] ^= 0x01;
  const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
  EXPECT_FALSE(outcome.all_valid);
  EXPECT_TRUE(outcome.used_fallback);
  ASSERT_EQ(outcome.invalid.size(), 2u);
  EXPECT_EQ(outcome.invalid[0], 1u);
  EXPECT_EQ(outcome.invalid[1], 4u);
}

TEST(SchnorrBatchTest, MixedKeysVerify) {
  // A batch spanning several signers (distinct monitor instances) still
  // verifies as one combined equation.
  auto items = MakeBatch(3, "key-a");
  const auto more = MakeBatch(3, "key-b");
  items.insert(items.end(), more.begin(), more.end());
  EXPECT_TRUE(SchnorrBatchVerify(items).all_valid);
  // Swapping two items' public keys forges both.
  std::swap(items[0].pub, items[3].pub);
  const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 2u);
  EXPECT_EQ(outcome.invalid[0], 0u);
  EXPECT_EQ(outcome.invalid[1], 3u);
}

TEST(SchnorrBatchTest, LegacySignatureWithoutCommitmentFallsBack) {
  // A signature deserialized from a pre-batching wire format has r == 0:
  // the batch cannot use it, but the fallback still verifies it singly.
  auto items = MakeBatch(4, "monitor-key");
  items[2].sig.r = 0;
  const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
  EXPECT_TRUE(outcome.all_valid);  // the signature itself is genuine
  EXPECT_TRUE(outcome.used_fallback);
  EXPECT_TRUE(outcome.invalid.empty());
}

TEST(SchnorrBatchTest, SignatureCarriesCommitment) {
  // SchnorrSign stores r = g^k; single verify reconstructs the same value.
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  const SchnorrParams& p = SchnorrParams::Default();
  EXPECT_NE(sig.r, 0u);
  EXPECT_LT(sig.r, p.p);
  // r is in the order-q subgroup (it is a power of g).
  EXPECT_EQ(PowMod(sig.r, p.q, p.p), 1u);
}

TEST(DhTest, SharedSecretAgreesAndBindsToKeys) {
  const SchnorrKeyPair a = DeriveKeyPair(Bytes("party-a"));
  const SchnorrKeyPair b = DeriveKeyPair(Bytes("party-b"));
  const Digest ab = DhSharedSecret(a.priv, b.pub);
  const Digest ba = DhSharedSecret(b.priv, a.pub);
  EXPECT_EQ(ab, ba);
  // A third party computes something else.
  const SchnorrKeyPair eve = DeriveKeyPair(Bytes("party-e"));
  EXPECT_NE(DhSharedSecret(eve.priv, a.pub), ab);
  EXPECT_NE(DhSharedSecret(eve.priv, b.pub), ab);
  // Different peers give different secrets.
  EXPECT_NE(DhSharedSecret(a.priv, eve.pub), ab);
}

}  // namespace
}  // namespace tyche
