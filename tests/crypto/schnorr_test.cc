// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/schnorr.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(SchnorrParamsTest, SafePrimeGroup) {
  const SchnorrParams& p = SchnorrParams::Default();
  EXPECT_EQ(p.p, 2 * p.q + 1);
  // g generates the order-q subgroup: g^q == 1 and g != 1.
  EXPECT_EQ(PowMod(p.g, p.q, p.p), 1u);
  EXPECT_NE(p.g, 1u);
}

TEST(ModArithTest, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod(7, 9, 13), 63 % 13);
  EXPECT_EQ(MulMod(0, 9, 13), 0u);
  // Large operands that would overflow 64-bit multiplication.
  const uint64_t big = 0x3ffffffffffff000ULL;
  EXPECT_EQ(MulMod(big, big, SchnorrParams::Default().p),
            static_cast<uint64_t>(static_cast<unsigned __int128>(big) * big %
                                  SchnorrParams::Default().p));
}

TEST(ModArithTest, PowModIdentities) {
  EXPECT_EQ(PowMod(5, 0, 97), 1u);
  EXPECT_EQ(PowMod(5, 1, 97), 5u);
  EXPECT_EQ(PowMod(2, 10, 100000), 1024u);
  // Fermat: a^(p-1) == 1 mod p for prime p.
  EXPECT_EQ(PowMod(1234567, SchnorrParams::Default().p - 1, SchnorrParams::Default().p), 1u);
}

TEST(SchnorrTest, DeriveIsDeterministic) {
  const SchnorrKeyPair a = DeriveKeyPair(Bytes("seed-a"));
  const SchnorrKeyPair b = DeriveKeyPair(Bytes("seed-a"));
  EXPECT_EQ(a.priv.x, b.priv.x);
  EXPECT_EQ(a.pub, b.pub);
  const SchnorrKeyPair c = DeriveKeyPair(Bytes("seed-c"));
  EXPECT_NE(a.priv.x, c.priv.x);
}

TEST(SchnorrTest, SignVerifyRoundTrip) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("tpm-endorsement"));
  const std::string message = "attestation report body";
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes(message));
  EXPECT_TRUE(SchnorrVerify(key.pub, Bytes(message), sig));
}

TEST(SchnorrTest, RejectsTamperedMessage) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("original"));
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("tampered"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k1"));
  const SchnorrKeyPair other = DeriveKeyPair(Bytes("k2"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  EXPECT_FALSE(SchnorrVerify(other.pub, Bytes("msg"), sig));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  sig.s ^= 1;
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), sig));
  SchnorrSignature sig2 = SchnorrSign(key.priv, Bytes("msg"));
  sig2.e.bytes[0] ^= 0x80;
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), sig2));
}

TEST(SchnorrTest, RejectsMalformedKeyOrScalar) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const SchnorrSignature sig = SchnorrSign(key.priv, Bytes("msg"));
  EXPECT_FALSE(SchnorrVerify(SchnorrPublicKey{0}, Bytes("msg"), sig));
  SchnorrSignature oversize = sig;
  oversize.s = SchnorrParams::Default().q;  // out of range
  EXPECT_FALSE(SchnorrVerify(key.pub, Bytes("msg"), oversize));
}

TEST(SchnorrTest, DeterministicSignature) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  EXPECT_EQ(SchnorrSign(key.priv, Bytes("m")), SchnorrSign(key.priv, Bytes("m")));
}

TEST(SchnorrTest, DigestOverloadMatchesBytes) {
  const SchnorrKeyPair key = DeriveKeyPair(Bytes("k"));
  const Digest digest = Sha256::Hash(Bytes("payload"));
  const SchnorrSignature a = SchnorrSign(key.priv, Bytes("payload"));
  const SchnorrSignature b = SchnorrSign(key.priv, digest);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(SchnorrVerify(key.pub, digest, a));
}

TEST(DhTest, SharedSecretAgreesAndBindsToKeys) {
  const SchnorrKeyPair a = DeriveKeyPair(Bytes("party-a"));
  const SchnorrKeyPair b = DeriveKeyPair(Bytes("party-b"));
  const Digest ab = DhSharedSecret(a.priv, b.pub);
  const Digest ba = DhSharedSecret(b.priv, a.pub);
  EXPECT_EQ(ab, ba);
  // A third party computes something else.
  const SchnorrKeyPair eve = DeriveKeyPair(Bytes("party-e"));
  EXPECT_NE(DhSharedSecret(eve.priv, a.pub), ab);
  EXPECT_NE(DhSharedSecret(eve.priv, b.pub), ab);
  // Different peers give different secrets.
  EXPECT_NE(DhSharedSecret(a.priv, eve.pub), ab);
}

}  // namespace
}  // namespace tyche
