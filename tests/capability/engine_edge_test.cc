// Copyright 2026 The Tyche Reproduction Authors.
// Second batch of capability-engine tests: unit-resource lineage, restore
// semantics, view limits, purge interactions -- the paths the first batch
// and the property test exercise only incidentally.

#include <gtest/gtest.h>

#include "src/capability/engine.h"
#include "src/support/faults.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

class EngineEdgeTest : public ::testing::Test {
 protected:
  EngineEdgeTest() {
    engine_.RegisterDomain(0, CapabilityEngine::kNoCreator);
    engine_.RegisterDomain(1, 0);
    engine_.RegisterDomain(2, 0);
  }

  CapabilityEngine engine_;
};

TEST_F(EngineEdgeTest, GrantUnitRevokeRestoresHolder) {
  const CapId core = *engine_.MintUnit(0, ResourceKind::kCpuCore, 3,
                                       CapRights(CapRights::kAll));
  const auto grant = engine_.GrantUnit(0, core, 1, CapRights(CapRights::kAll),
                                       RevocationPolicy{});
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(engine_.HasUnit(0, ResourceKind::kCpuCore, 3));
  EXPECT_TRUE(engine_.HasUnit(1, ResourceKind::kCpuCore, 3));

  const auto revoke = engine_.Revoke(0, grant->granted);
  ASSERT_TRUE(revoke.ok());
  EXPECT_NE(revoke->restored, kInvalidCap);
  EXPECT_TRUE(engine_.HasUnit(0, ResourceKind::kCpuCore, 3));
  EXPECT_FALSE(engine_.HasUnit(1, ResourceKind::kCpuCore, 3));
  // The restore effect names the unit for the backend.
  bool saw_attach = false;
  for (const CapEffect& effect : revoke->effects.effects) {
    if (effect.kind == CapEffect::Kind::kAttachUnit && effect.domain == 0) {
      saw_attach = true;
      EXPECT_EQ(effect.unit, 3u);
    }
  }
  EXPECT_TRUE(saw_attach);
}

TEST_F(EngineEdgeTest, RevokeOfRestoreCreatesNoSecondRestore) {
  const CapId core = *engine_.MintUnit(0, ResourceKind::kCpuCore, 1,
                                       CapRights(CapRights::kAll));
  const auto grant = engine_.GrantUnit(0, core, 1, CapRights(CapRights::kAll),
                                       RevocationPolicy{});
  const auto first = engine_.Revoke(0, grant->granted);
  ASSERT_TRUE(first.ok());
  const auto second = engine_.Revoke(0, first->restored);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->restored, kInvalidCap);  // dropping a restore is final
  EXPECT_FALSE(engine_.HasUnit(0, ResourceKind::kCpuCore, 1));
}

TEST_F(EngineEdgeTest, DomainHandlesAreShareableUnits) {
  const CapId handle = *engine_.MintUnit(0, ResourceKind::kDomain, 2,
                                         CapRights(CapRights::kAll));
  CapEffects effects;
  const auto shared = engine_.ShareUnit(0, handle, 1, CapRights(CapRights::kManage),
                                        RevocationPolicy{}, &effects);
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(engine_.HasUnit(1, ResourceKind::kDomain, 2));
  // Attenuation holds for handles too.
  EXPECT_FALSE((*engine_.Get(*shared))->rights.CanShare());
  EXPECT_TRUE((*engine_.Get(*shared))->rights.CanManage());
}

TEST_F(EngineEdgeTest, MemoryViewHonoursLimit) {
  (void)*engine_.MintMemory(0, AddrRange{0, 4 * kMiB}, Perms(Perms::kRW),
                            CapRights(CapRights::kAll));
  (void)*engine_.MintMemory(0, AddrRange{64 * kMiB, 4 * kMiB}, Perms(Perms::kRW),
                            CapRights(CapRights::kAll));
  const auto full = engine_.MemoryView();
  const auto limited = engine_.MemoryView(8 * kMiB);
  EXPECT_EQ(full.size(), 2u);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].range.base, 0u);
}

TEST_F(EngineEdgeTest, PurgeRestoresGrantorsOfReceivedGrants) {
  // Domain 1 received a grant from domain 0. Purging domain 1 must give the
  // memory back to domain 0 (with the restore capability).
  const CapId root = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  const auto grant = engine_.GrantMemory(0, root, 1, AddrRange{0, kMiB},
                                         Perms(Perms::kRW), CapRights(CapRights::kAll),
                                         RevocationPolicy{});
  ASSERT_TRUE(grant.ok());
  ASSERT_TRUE(engine_.EffectivePerms(0, 0).empty());
  const auto purge = engine_.PurgeDomain(1);
  ASSERT_TRUE(purge.ok());
  // The restore carries the PARENT capability's permissions: the grantor
  // regains what it originally had (RWX), not the attenuated grant.
  EXPECT_EQ(engine_.EffectivePerms(0, 0).mask, Perms::kRWX);
  EXPECT_FALSE(engine_.IsRegistered(1));
}

TEST_F(EngineEdgeTest, PurgeUnregisteredDomainFails) {
  EXPECT_EQ(engine_.PurgeDomain(42).code(), ErrorCode::kNotFound);
}

TEST_F(EngineEdgeTest, CaptureRestoreRoundTripsAfterPurge) {
  // Lineage nodes are never deleted, so after a purge the engine legitimately
  // holds inactive caps owned by a now-unregistered domain. Capture of that
  // state must round-trip through Restore (regression: migration staging
  // rejected any destination that had ever been a migration source).
  const CapId root = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  const auto grant = engine_.GrantMemory(0, root, 1, AddrRange{0, kMiB},
                                         Perms(Perms::kRW), CapRights(CapRights::kAll),
                                         RevocationPolicy{});
  ASSERT_TRUE(grant.ok());
  ASSERT_TRUE(engine_.PurgeDomain(1).ok());
  ASSERT_FALSE(engine_.IsRegistered(1));

  CapabilityEngine copy;
  ASSERT_TRUE(copy.Restore(engine_.Capture()).ok());
  EXPECT_EQ(copy.EffectivePerms(0, 0).mask, Perms::kRWX);
  EXPECT_FALSE(copy.IsRegistered(1));
  // An ACTIVE cap with an unregistered owner is still corruption.
  EngineImage bad = engine_.Capture();
  for (Capability& cap : bad.caps) {
    if (cap.owner == 1 && !cap.active()) {
      cap.state = CapState::kActive;
      break;
    }
  }
  CapabilityEngine reject;
  EXPECT_EQ(reject.Restore(bad).code(), ErrorCode::kInvalidArgument);
}

TEST_F(EngineEdgeTest, RevokeAuthorizationViaParentNeedsRevokeRight) {
  const CapId root = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  CapEffects effects;
  // Domain 1 gets a cap WITHOUT revoke rights, shares onward to domain 2.
  const CapId mid = *engine_.ShareMemory(0, root, 1, AddrRange{0, kMiB},
                                         Perms(Perms::kRW),
                                         CapRights(CapRights::kShare), RevocationPolicy{},
                                         &effects);
  const CapId leaf = *engine_.ShareMemory(1, mid, 2, AddrRange{0, kMiB},
                                          Perms(Perms::kRead), CapRights{},
                                          RevocationPolicy{}, &effects);
  // Domain 1 owns `mid` (leaf's parent) but lacks kRevoke: it cannot revoke
  // the leaf...
  EXPECT_EQ(engine_.Revoke(1, leaf).code(), ErrorCode::kCapabilityRightsViolation);
  // ... though domain 2 may always drop its own.
  EXPECT_TRUE(engine_.Revoke(2, leaf).ok());
}

TEST_F(EngineEdgeTest, ShareUnitValidation) {
  const CapId mem = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                        CapRights(CapRights::kAll));
  CapEffects effects;
  // Memory caps must go through ShareMemory.
  EXPECT_EQ(engine_.ShareUnit(0, mem, 1, CapRights{}, RevocationPolicy{}, &effects).code(),
            ErrorCode::kInvalidArgument);
  const CapId core = *engine_.MintUnit(0, ResourceKind::kCpuCore, 0, CapRights{});
  // Without the share right.
  EXPECT_EQ(engine_.ShareUnit(0, core, 1, CapRights{}, RevocationPolicy{}, &effects).code(),
            ErrorCode::kCapabilityRightsViolation);
  // Unit caps must not go through ShareMemory.
  const CapId core2 = *engine_.MintUnit(0, ResourceKind::kCpuCore, 1,
                                        CapRights(CapRights::kAll));
  EXPECT_EQ(engine_
                .ShareMemory(0, core2, 1, AddrRange{0, kMiB}, Perms(Perms::kRW),
                             CapRights{}, RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EngineEdgeTest, ExclusivelyOwnedNeedsFullCoverage) {
  (void)*engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRW),
                            CapRights(CapRights::kAll));
  (void)*engine_.MintMemory(0, AddrRange{2 * kMiB, kMiB}, Perms(Perms::kRW),
                            CapRights(CapRights::kAll));
  // The hole at [1M, 2M) breaks coverage.
  EXPECT_FALSE(engine_.ExclusivelyOwned(0, AddrRange{0, 3 * kMiB}));
  EXPECT_TRUE(engine_.ExclusivelyOwned(0, AddrRange{0, kMiB}));
  EXPECT_TRUE(engine_.ExclusivelyOwned(0, AddrRange{2 * kMiB, kMiB}));
}

TEST_F(EngineEdgeTest, RevokeRootOfCircularShareKillsTheWholeLoop) {
  // 0 -> 1 -> 2 -> 1: a cycle in the domain graph, still a tree in the
  // lineage graph. Revoking the root must cascade through every cap in the
  // loop -- including the one 1 received "back" from 2.
  const CapId root = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  CapEffects effects;
  const CapId to_1 = *engine_.ShareMemory(0, root, 1, AddrRange{0, kMiB},
                                          Perms(Perms::kRW), CapRights(CapRights::kAll),
                                          RevocationPolicy{}, &effects);
  const CapId to_2 = *engine_.ShareMemory(1, to_1, 2, AddrRange{0, kMiB / 2},
                                          Perms(Perms::kRW), CapRights(CapRights::kAll),
                                          RevocationPolicy{}, &effects);
  const CapId back_to_1 = *engine_.ShareMemory(2, to_2, 1, AddrRange{0, kMiB / 4},
                                               Perms(Perms::kRead), CapRights{},
                                               RevocationPolicy{}, &effects);
  ASSERT_FALSE(engine_.EffectivePerms(2, 0).empty());

  const auto revoked = engine_.Revoke(0, to_1);
  ASSERT_TRUE(revoked.ok());
  EXPECT_EQ(revoked->revoked_count, 3u);  // to_1, to_2, back_to_1
  for (const CapId cap : {to_1, to_2, back_to_1}) {
    EXPECT_FALSE((*engine_.Get(cap))->active());
  }
  EXPECT_TRUE(engine_.EffectivePerms(1, 0).empty());
  EXPECT_TRUE(engine_.EffectivePerms(2, 0).empty());
  // The root itself survives with full access.
  EXPECT_EQ(engine_.EffectivePerms(0, 0).mask, Perms::kRWX);
}

TEST_F(EngineEdgeTest, PurgeDomainInsideCircularShareLeavesPeersSound) {
  // 1 and 2 hold slices of each other's view; purging 1 must deactivate the
  // whole derivation chain that passes through 1, even the part owned by 2,
  // without touching what 2 holds independently.
  const CapId root = *engine_.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  CapEffects effects;
  const CapId to_1 = *engine_.ShareMemory(0, root, 1, AddrRange{0, kMiB},
                                          Perms(Perms::kRW), CapRights(CapRights::kAll),
                                          RevocationPolicy{}, &effects);
  const CapId to_2 = *engine_.ShareMemory(1, to_1, 2, AddrRange{0, kMiB / 2},
                                          Perms(Perms::kRW), CapRights(CapRights::kAll),
                                          RevocationPolicy{}, &effects);
  (void)*engine_.ShareMemory(2, to_2, 1, AddrRange{0, kMiB / 4}, Perms(Perms::kRead),
                             CapRights{}, RevocationPolicy{}, &effects);
  // 2 also holds an independent slice straight from 0.
  const CapId direct_to_2 = *engine_.ShareMemory(0, root, 2,
                                                 AddrRange{kMiB / 2, kMiB / 2},
                                                 Perms(Perms::kRead), CapRights{},
                                                 RevocationPolicy{}, &effects);

  const auto purge = engine_.PurgeDomain(1);
  ASSERT_TRUE(purge.ok());
  EXPECT_FALSE(engine_.IsRegistered(1));
  // Everything derived through 1 is dead -- including 2's received slice.
  EXPECT_FALSE((*engine_.Get(to_2))->active());
  EXPECT_TRUE(engine_.EffectivePerms(2, 0).empty());
  // The independent slice survives untouched.
  EXPECT_TRUE((*engine_.Get(direct_to_2))->active());
  EXPECT_EQ(engine_.EffectivePerms(2, kMiB / 2).mask, Perms::kRead);
  // Purge-generated effects must name the SURVIVING domain's lost range so
  // the backend resyncs it -- not just the purged domain's.
  bool unmaps_peer = false;
  for (const CapEffect& effect : purge->effects.effects) {
    if (effect.kind == CapEffect::Kind::kUnmapMemory && effect.domain == 2) {
      unmaps_peer = true;
    }
  }
  EXPECT_TRUE(unmaps_peer);
}

TEST_F(EngineEdgeTest, CapToStringIsInformative) {
  const CapId mem = *engine_.MintMemory(0, AddrRange{0x1000, 0x1000}, Perms(Perms::kRW),
                                        CapRights(CapRights::kAll));
  const std::string text = (*engine_.Get(mem))->ToString();
  EXPECT_NE(text.find("memory"), std::string::npos);
  EXPECT_NE(text.find("rw-"), std::string::npos);
  EXPECT_NE(text.find("active"), std::string::npos);
  const CapId core = *engine_.MintUnit(0, ResourceKind::kCpuCore, 5, CapRights{});
  EXPECT_NE((*engine_.Get(core))->ToString().find("unit=5"), std::string::npos);
}

TEST_F(EngineEdgeTest, SealedDomainMayGrantToOwnChild) {
  // The nested-enclave allowance covers grants, not just shares.
  engine_.RegisterDomain(7, /*creator=*/1);
  const CapId root = *engine_.MintMemory(1, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                         CapRights(CapRights::kAll));
  engine_.SealDomain(1);
  const auto grant = engine_.GrantMemory(1, root, 7, AddrRange{0, kMiB},
                                         Perms(Perms::kRW), CapRights(CapRights::kAll),
                                         RevocationPolicy{});
  EXPECT_TRUE(grant.ok());
  // But not to a stranger (domain 2, created by 0).
  engine_.RegisterDomain(8, 1);
  const CapId root2 = *engine_.MintMemory(8, AddrRange{2 * kMiB, kMiB},
                                          Perms(Perms::kRWX), CapRights(CapRights::kAll));
  engine_.SealDomain(8);
  const auto leak = engine_.GrantMemory(8, root2, 2, AddrRange{2 * kMiB, kMiB},
                                        Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  EXPECT_EQ(leak.code(), ErrorCode::kDomainSealed);
}

TEST_F(EngineEdgeTest, PurgeFailureLeavesDomainRegisteredAndNothingOrphaned) {
  // Regression: PurgeDomain used to drop a failed per-root revoke on the
  // floor and erase the domain anyway, leaving its remaining caps active but
  // ownerless. Now a mid-purge failure must propagate, keep the domain
  // registered, and report exactly the roots that DID commit.
  const CapId a = *engine_.MintMemory(1, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                      CapRights(CapRights::kAll));
  const CapId b = *engine_.MintMemory(1, AddrRange{2 * kMiB, kMiB}, Perms(Perms::kRW),
                                      CapRights(CapRights::kAll));
  const CapId c = *engine_.MintMemory(1, AddrRange{4 * kMiB, kMiB}, Perms(Perms::kRW),
                                      CapRights(CapRights::kAll));
  // Give root b a child so its (committed) cascade is visible in the outcome.
  CapEffects effects;
  const CapId child = *engine_.ShareMemory(1, b, 2, AddrRange{2 * kMiB, kPageSize},
                                           Perms(Perms::kRW), CapRights(CapRights::kAll),
                                           RevocationPolicy{}, &effects);

  std::vector<std::pair<CapId, RevokeOutcome>> partial;
  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kEnginePurgeRevoke, /*trigger=*/3,
                                           ErrorCode::kResourceExhausted));
    const auto purge = engine_.PurgeDomain(1, &partial);
    ASSERT_FALSE(purge.ok());
    EXPECT_EQ(purge.code(), ErrorCode::kResourceExhausted);
  }
  // The domain survived; the committed prefix (a, then b with its cascade)
  // is reported and really revoked; the rest is untouched.
  EXPECT_TRUE(engine_.IsRegistered(1));
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[0].first, a);
  EXPECT_EQ(partial[1].first, b);
  EXPECT_EQ(partial[1].second.revoked_count, 2u);  // b + the shared child
  EXPECT_FALSE((*engine_.Get(a))->active());
  EXPECT_FALSE((*engine_.Get(b))->active());
  EXPECT_FALSE((*engine_.Get(child))->active());
  EXPECT_TRUE((*engine_.Get(c))->active());
  EXPECT_EQ(engine_.DomainCaps(1).size(), 1u);

  // A retry purges the remainder and unregisters the domain for good.
  const auto retry = engine_.PurgeDomain(1);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->revoked_count, 1u);
  EXPECT_FALSE(engine_.IsRegistered(1));
  EXPECT_TRUE(engine_.DomainCaps(1).empty());
  EXPECT_FALSE((*engine_.Get(c))->active());
}

TEST_F(EngineEdgeTest, PurgeFailureOnFirstRootCommitsNothing) {
  const CapId a = *engine_.MintMemory(1, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                      CapRights(CapRights::kAll));
  std::vector<std::pair<CapId, RevokeOutcome>> partial;
  {
    ScopedFaultPlan plan(FaultPlan::Single(faults::kEnginePurgeRevoke, /*trigger=*/1,
                                           ErrorCode::kInternal));
    EXPECT_FALSE(engine_.PurgeDomain(1, &partial).ok());
  }
  EXPECT_TRUE(partial.empty());
  EXPECT_TRUE(engine_.IsRegistered(1));
  EXPECT_TRUE((*engine_.Get(a))->active());
}

}  // namespace
}  // namespace tyche
