// Copyright 2026 The Tyche Reproduction Authors.
// Graph-export tests: DOT/JSON escaping helpers, revoked-history rendering,
// and a JSON refcount round-trip over a deep lineage tree.

#include "src/capability/graph_export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tyche {
namespace {

constexpr CapDomainId kOs = 0;
constexpr uint64_t kMiB = 1ull << 20;

TEST(GraphEscapeTest, DotLabelEscaping) {
  EXPECT_EQ(EscapeGraphLabel("plain"), "plain");
  EXPECT_EQ(EscapeGraphLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeGraphLabel("a\\b"), "a\\\\b");
  // Raw newlines become the two-character DOT line break; CR is dropped.
  EXPECT_EQ(EscapeGraphLabel("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeGraphLabel("a\r\nb"), "a\\nb");
  // A label that already contains "\n" must not gain an unescaped backslash.
  EXPECT_EQ(EscapeGraphLabel("a\\nb"), "a\\\\nb");
}

TEST(GraphEscapeTest, JsonStringEscaping) {
  EXPECT_EQ(EscapeJsonString("plain"), "plain");
  EXPECT_EQ(EscapeJsonString("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(EscapeJsonString("a\nb\rc\td"), "a\\nb\\rc\\td");
  EXPECT_EQ(EscapeJsonString(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(EscapeJsonString("\x1f"), "\\u001f");
}

class GraphExportTest : public ::testing::Test {
 protected:
  GraphExportTest() {
    engine_.RegisterDomain(kOs, CapabilityEngine::kNoCreator);
    root_ = *engine_.MintMemory(kOs, AddrRange{0, 64 * kMiB}, Perms(Perms::kRWX),
                                CapRights(CapRights::kAll));
  }

  CapabilityEngine engine_;
  CapId root_ = kInvalidCap;
};

TEST_F(GraphExportTest, RevokedHistoryRendersGreyedAndIsOmittedWhenFiltered) {
  engine_.RegisterDomain(1, kOs);
  const CapId child =
      *engine_.ShareMemory(kOs, root_, 1, AddrRange{0, kMiB}, Perms(Perms::kRW),
                           CapRights(CapRights::kAll), RevocationPolicy{}, nullptr);
  ASSERT_TRUE(engine_.Revoke(kOs, child).ok());

  const std::string with_history = ExportCapabilityGraphDot(engine_);
  EXPECT_NE(with_history.find("fillcolor=gray80"), std::string::npos);
  EXPECT_NE(with_history.find("cap" + std::to_string(root_) + " -> cap" +
                              std::to_string(child)),
            std::string::npos);

  GraphExportOptions live_only;
  live_only.include_inactive = false;
  const std::string without_history = ExportCapabilityGraphDot(engine_, live_only);
  EXPECT_EQ(without_history.find("fillcolor=gray80"), std::string::npos);
  EXPECT_EQ(without_history.find("cap" + std::to_string(child) + " "), std::string::npos);
  // The root itself is still there.
  EXPECT_NE(without_history.find("cap" + std::to_string(root_) + " "), std::string::npos);
}

// Extracts `"key":<number>` occurrences from a JSON export. Enough structure
// for round-trip assertions without a JSON parser in the test.
std::vector<uint64_t> NumbersFor(const std::string& json, const std::string& key) {
  std::vector<uint64_t> out;
  const std::string needle = "\"" + key + "\":";
  for (size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + 1)) {
    out.push_back(std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10));
  }
  return out;
}

TEST_F(GraphExportTest, JsonRefcountsRoundTripOnDeepLineage) {
  // Chain: root -> d1 -> d2 -> ... -> d8, every share over the same MiB, so
  // the memory refcount of that range counts all nine distinct domains.
  constexpr int kDepth = 8;
  CapId prev = root_;
  for (int d = 1; d <= kDepth; ++d) {
    engine_.RegisterDomain(d, d - 1);
    prev = *engine_.ShareMemory(d - 1, prev, d, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                CapRights(CapRights::kAll), RevocationPolicy{}, nullptr);
  }
  EXPECT_EQ(engine_.MemoryRefCount(AddrRange{0, kMiB}), kDepth + 1);

  const std::string json = ExportCapabilityGraphJson(engine_);
  // Every node carrying the shared MiB reports the same refcount the engine
  // computes; the lineage chain appears as kDepth edges.
  const std::vector<uint64_t> refcounts = NumbersFor(json, "ref_count");
  ASSERT_EQ(refcounts.size(), static_cast<size_t>(kDepth + 1));
  for (size_t i = 1; i < refcounts.size(); ++i) {  // node 0 is the 64 MiB root
    EXPECT_EQ(refcounts[i], static_cast<uint64_t>(kDepth + 1));
  }
  EXPECT_EQ(NumbersFor(json, "parent").size(), static_cast<size_t>(kDepth));

  // Revoke the first share: the whole chain cascades away and the JSON
  // refcounts drop back to the owner alone, in lockstep with the engine.
  const std::vector<uint64_t> ids = NumbersFor(json, "id");
  ASSERT_GE(ids.size(), 2u);
  ASSERT_TRUE(engine_.Revoke(kOs, ids[1]).ok());
  GraphExportOptions live_only;
  live_only.include_inactive = false;
  const std::string after = ExportCapabilityGraphJson(engine_, live_only);
  const std::vector<uint64_t> after_refcounts = NumbersFor(after, "ref_count");
  ASSERT_EQ(after_refcounts.size(), 1u);
  EXPECT_EQ(after_refcounts[0], 1u);
  EXPECT_TRUE(NumbersFor(after, "parent").empty());
}

}  // namespace
}  // namespace tyche
