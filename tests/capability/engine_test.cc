// Copyright 2026 The Tyche Reproduction Authors.
// Unit tests for the capability engine: share/grant/revoke semantics,
// reference counts, sealing rules, lineage behaviour.

#include "src/capability/engine.h"

#include <gtest/gtest.h>

namespace tyche {
namespace {

constexpr CapDomainId kOs = 0;
constexpr CapDomainId kApp = 1;
constexpr CapDomainId kEnclave = 2;

constexpr uint64_t kMiB = 1ull << 20;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    engine_.RegisterDomain(kOs, CapabilityEngine::kNoCreator);
    engine_.RegisterDomain(kApp, kOs);
    engine_.RegisterDomain(kEnclave, kApp);
    root_ = *engine_.MintMemory(kOs, AddrRange{0, 64 * kMiB}, Perms(Perms::kRWX),
                                CapRights(CapRights::kAll));
  }

  CapabilityEngine engine_;
  CapId root_ = kInvalidCap;
};

TEST_F(EngineTest, MintValidation) {
  EXPECT_FALSE(engine_.MintMemory(99, AddrRange{0, kMiB}, Perms(Perms::kRead),
                                  CapRights(CapRights::kAll))
                   .ok());
  EXPECT_FALSE(engine_.MintMemory(kOs, AddrRange{1, kMiB}, Perms(Perms::kRead),
                                  CapRights(CapRights::kAll))
                   .ok());
  EXPECT_FALSE(engine_.MintMemory(kOs, AddrRange{0, 0}, Perms(Perms::kRead),
                                  CapRights(CapRights::kAll))
                   .ok());
  EXPECT_FALSE(
      engine_.MintUnit(kOs, ResourceKind::kMemory, 0, CapRights(CapRights::kAll)).ok());
}

TEST_F(EngineTest, ShareCreatesChildAndEffect) {
  CapEffects effects;
  const AddrRange sub{4 * kMiB, kMiB};
  const auto child = engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                         CapRights(CapRights::kShare), RevocationPolicy{},
                                         &effects);
  ASSERT_TRUE(child.ok());
  const Capability* cap = *engine_.Get(*child);
  EXPECT_EQ(cap->owner, kApp);
  EXPECT_EQ(cap->range, sub);
  EXPECT_EQ(cap->origin, CapOrigin::kShare);
  EXPECT_EQ(cap->parent, root_);
  ASSERT_EQ(effects.effects.size(), 1u);
  EXPECT_EQ(effects.effects[0].kind, CapEffect::Kind::kMapMemory);
  EXPECT_EQ(effects.effects[0].domain, kApp);
  // Source stays active: this is duplication, not transfer.
  EXPECT_TRUE((*engine_.Get(root_))->active());
}

TEST_F(EngineTest, ShareValidatesEverything) {
  CapEffects effects;
  const AddrRange sub{4 * kMiB, kMiB};
  // Requester must own the cap.
  EXPECT_EQ(engine_
                .ShareMemory(kApp, root_, kEnclave, sub, Perms(Perms::kRead), CapRights{},
                             RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kCapabilityNotOwned);
  // Sub-range must be inside.
  EXPECT_EQ(engine_
                .ShareMemory(kOs, root_, kApp, AddrRange{63 * kMiB, 2 * kMiB},
                             Perms(Perms::kRead), CapRights{}, RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kOutOfRange);
  // Page alignment.
  EXPECT_EQ(engine_
                .ShareMemory(kOs, root_, kApp, AddrRange{4 * kMiB + 1, kMiB},
                             Perms(Perms::kRead), CapRights{}, RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kInvalidArgument);
  // Unknown destination.
  EXPECT_EQ(engine_
                .ShareMemory(kOs, root_, 42, sub, Perms(Perms::kRead), CapRights{},
                             RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kNotFound);
  // Empty permissions are meaningless.
  EXPECT_FALSE(engine_
                   .ShareMemory(kOs, root_, kApp, sub, Perms{}, CapRights{},
                                RevocationPolicy{}, &effects)
                   .ok());
}

TEST_F(EngineTest, PermsAndRightsAttenuateMonotonically) {
  CapEffects effects;
  const AddrRange sub{4 * kMiB, kMiB};
  const CapId child = *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRead),
                                           CapRights(CapRights::kShare), RevocationPolicy{},
                                           &effects);
  // The child cannot re-share with MORE permissions or rights.
  EXPECT_EQ(engine_
                .ShareMemory(kApp, child, kEnclave, sub, Perms(Perms::kRW),
                             CapRights(CapRights::kShare), RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kCapabilityRightsViolation);
  EXPECT_EQ(engine_
                .ShareMemory(kApp, child, kEnclave, sub, Perms(Perms::kRead),
                             CapRights(CapRights::kAll), RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kCapabilityRightsViolation);
  // Equal or smaller is fine.
  EXPECT_TRUE(engine_
                  .ShareMemory(kApp, child, kEnclave, sub, Perms(Perms::kRead),
                               CapRights(CapRights::kShare), RevocationPolicy{}, &effects)
                  .ok());
}

TEST_F(EngineTest, ShareWithoutShareRightFails) {
  CapEffects effects;
  const AddrRange sub{4 * kMiB, kMiB};
  const CapId child =
      *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRead), CapRights{},
                           RevocationPolicy{}, &effects);
  EXPECT_EQ(engine_
                .ShareMemory(kApp, child, kEnclave, sub, Perms(Perms::kRead), CapRights{},
                             RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kCapabilityRightsViolation);
}

TEST_F(EngineTest, GrantMovesOwnershipAndSplits) {
  const AddrRange sub{4 * kMiB, kMiB};
  const auto outcome = engine_.GrantMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                           CapRights(CapRights::kAll), RevocationPolicy{});
  ASSERT_TRUE(outcome.ok());
  // Source donated.
  EXPECT_EQ((*engine_.Get(root_))->state, CapState::kDonated);
  // Granted piece owned by kApp.
  EXPECT_EQ((*engine_.Get(outcome->granted))->owner, kApp);
  // Two remainder pieces (before and after), owned by kOs.
  ASSERT_EQ(outcome->remainders.size(), 2u);
  EXPECT_EQ((*engine_.Get(outcome->remainders[0]))->range, (AddrRange{0, 4 * kMiB}));
  EXPECT_EQ((*engine_.Get(outcome->remainders[1]))->range,
            (AddrRange{5 * kMiB, 59 * kMiB}));
  // Effects: unmap for grantor, map for recipient.
  ASSERT_EQ(outcome->effects.effects.size(), 2u);
  EXPECT_EQ(outcome->effects.effects[0].kind, CapEffect::Kind::kUnmapMemory);
  EXPECT_EQ(outcome->effects.effects[1].kind, CapEffect::Kind::kMapMemory);
  // Grantor no longer has access to the granted bytes, recipient does.
  EXPECT_TRUE(engine_.EffectivePerms(kOs, 4 * kMiB).empty());
  EXPECT_EQ(engine_.EffectivePerms(kApp, 4 * kMiB).mask, Perms::kRW);
  EXPECT_EQ(engine_.EffectivePerms(kOs, 0).mask, Perms::kRWX);
}

TEST_F(EngineTest, GrantWholeRangeLeavesNoRemainder) {
  const auto outcome =
      engine_.GrantMemory(kOs, root_, kApp, AddrRange{0, 64 * kMiB}, Perms(Perms::kRWX),
                          CapRights(CapRights::kAll), RevocationPolicy{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->remainders.empty());
  EXPECT_TRUE(engine_.EffectivePerms(kOs, 0).empty());
}

TEST_F(EngineTest, GrantedCapRefusesFurtherUseOfSource) {
  const AddrRange sub{4 * kMiB, kMiB};
  ASSERT_TRUE(engine_
                  .GrantMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                               CapRights(CapRights::kAll), RevocationPolicy{})
                  .ok());
  CapEffects effects;
  // The donated source cannot be used again.
  EXPECT_EQ(engine_
                .ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRead), CapRights{},
                             RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kCapabilityRevoked);
}

TEST_F(EngineTest, RefCountTracksDistinctHolders) {
  const AddrRange sub{4 * kMiB, kMiB};
  EXPECT_EQ(engine_.MemoryRefCount(sub), 1u);
  CapEffects effects;
  const CapId to_app = *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                            CapRights(CapRights::kShare),
                                            RevocationPolicy{}, &effects);
  EXPECT_EQ(engine_.MemoryRefCount(sub), 2u);
  // Sharing to the same domain twice does not increase the count.
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRead), CapRights{},
                               RevocationPolicy{}, &effects)
                  .ok());
  EXPECT_EQ(engine_.MemoryRefCount(sub), 2u);
  ASSERT_TRUE(engine_
                  .ShareMemory(kApp, to_app, kEnclave, sub, Perms(Perms::kRead),
                               CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  EXPECT_EQ(engine_.MemoryRefCount(sub), 3u);
}

TEST_F(EngineTest, RevokeCascadesThroughDescendants) {
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  const CapId to_app = *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                            CapRights(CapRights::kShare),
                                            RevocationPolicy{}, &effects);
  const CapId to_enclave = *engine_.ShareMemory(kApp, to_app, kEnclave, sub,
                                                Perms(Perms::kRead),
                                                CapRights(CapRights::kShare),
                                                RevocationPolicy{}, &effects);
  ASSERT_EQ(engine_.MemoryRefCount(sub), 3u);

  const auto outcome = engine_.Revoke(kOs, to_app);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->revoked_count, 2u);
  EXPECT_FALSE((*engine_.Get(to_app))->active());
  EXPECT_FALSE((*engine_.Get(to_enclave))->active());
  EXPECT_EQ(engine_.MemoryRefCount(sub), 1u);
  EXPECT_TRUE(engine_.EffectivePerms(kApp, 4 * kMiB).empty());
  EXPECT_TRUE(engine_.EffectivePerms(kEnclave, 4 * kMiB).empty());
}

TEST_F(EngineTest, RevokeRequiresAuthorization) {
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  const CapId to_app =
      *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                           CapRights(CapRights::kShare), RevocationPolicy{}, &effects);
  // kEnclave is a stranger: cannot revoke.
  EXPECT_EQ(engine_.Revoke(kEnclave, to_app).code(),
            ErrorCode::kCapabilityRightsViolation);
  // The owner may always drop its own capability.
  EXPECT_TRUE(engine_.Revoke(kApp, to_app).ok());
  EXPECT_EQ(engine_.Revoke(kApp, to_app).code(), ErrorCode::kCapabilityRevoked);
}

TEST_F(EngineTest, RevokeGrantRestoresGrantor) {
  const AddrRange sub{4 * kMiB, kMiB};
  const auto grant = engine_.GrantMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                         CapRights(CapRights::kAll), RevocationPolicy{});
  ASSERT_TRUE(grant.ok());
  ASSERT_TRUE(engine_.EffectivePerms(kOs, 4 * kMiB).empty());

  const auto outcome = engine_.Revoke(kOs, grant->granted);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->restored, kInvalidCap);
  const Capability* restored = *engine_.Get(outcome->restored);
  EXPECT_EQ(restored->owner, kOs);
  EXPECT_EQ(restored->origin, CapOrigin::kRestore);
  // Grantor regains access with the parent's permissions.
  EXPECT_EQ(engine_.EffectivePerms(kOs, 4 * kMiB).mask, Perms::kRWX);
  EXPECT_TRUE(engine_.EffectivePerms(kApp, 4 * kMiB).empty());
}

TEST_F(EngineTest, RevocationPolicyEmitsCleanupEffects) {
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  const CapId to_app = *engine_.ShareMemory(
      kOs, root_, kApp, sub, Perms(Perms::kRW), CapRights{},
      RevocationPolicy(RevocationPolicy::kObfuscate), &effects);
  const auto outcome = engine_.Revoke(kOs, to_app);
  ASSERT_TRUE(outcome.ok());
  bool saw_zero = false;
  bool saw_flush = false;
  for (const CapEffect& effect : outcome->effects.effects) {
    saw_zero |= effect.kind == CapEffect::Kind::kZeroMemory;
    saw_flush |= effect.kind == CapEffect::Kind::kFlushCache;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_flush);
}

TEST_F(EngineTest, CircularSharingRevocationTerminates) {
  // A shares to B, B shares back to A, A shares that back to B... then
  // revoking the first share must terminate and kill the whole chain.
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  CapId cap = *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                   CapRights(CapRights::kShare), RevocationPolicy{},
                                   &effects);
  const CapId first = cap;
  CapDomainId owners[2] = {kEnclave, kApp};
  for (int i = 0; i < 10; ++i) {
    const CapDomainId from = i % 2 == 0 ? kApp : kEnclave;
    cap = *engine_.ShareMemory(from, cap, owners[i % 2], sub, Perms(Perms::kRW),
                               CapRights(CapRights::kShare), RevocationPolicy{}, &effects);
  }
  ASSERT_EQ(engine_.MemoryRefCount(sub), 3u);
  const auto outcome = engine_.Revoke(kOs, first);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->revoked_count, 11u);
  EXPECT_EQ(engine_.MemoryRefCount(sub), 1u);
}

TEST_F(EngineTest, SealedDomainCannotReceive) {
  engine_.SealDomain(kApp);
  CapEffects effects;
  EXPECT_EQ(engine_
                .ShareMemory(kOs, root_, kApp, AddrRange{4 * kMiB, kMiB},
                             Perms(Perms::kRead), CapRights{}, RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kDomainSealed);
}

TEST_F(EngineTest, SealedDomainCannotShareOnwardExceptToChildren) {
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  const CapId app_cap = *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                                             CapRights(CapRights::kAll), RevocationPolicy{},
                                             &effects);
  engine_.SealDomain(kApp);
  // kEnclave was created by kApp: delegation allowed (nested enclaves §4.2).
  EXPECT_TRUE(engine_
                  .ShareMemory(kApp, app_cap, kEnclave, sub, Perms(Perms::kRead),
                               CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  // But sharing back to a pre-existing domain is not.
  engine_.RegisterDomain(7, kOs);
  EXPECT_EQ(engine_
                .ShareMemory(kApp, app_cap, 7, sub, Perms(Perms::kRead), CapRights{},
                             RevocationPolicy{}, &effects)
                .code(),
            ErrorCode::kDomainSealed);
}

TEST_F(EngineTest, UnitShareAndGrant) {
  const CapId core_cap =
      *engine_.MintUnit(kOs, ResourceKind::kCpuCore, 2, CapRights(CapRights::kAll));
  CapEffects effects;
  const CapId shared = *engine_.ShareUnit(
      kOs, core_cap, kApp, CapRights(CapRights::kShare | CapRights::kGrant),
      RevocationPolicy{}, &effects);
  EXPECT_TRUE(engine_.HasUnit(kApp, ResourceKind::kCpuCore, 2));
  EXPECT_TRUE(engine_.HasUnit(kOs, ResourceKind::kCpuCore, 2));
  EXPECT_EQ(engine_.UnitRefCount(ResourceKind::kCpuCore, 2), 2u);

  const auto grant = engine_.GrantUnit(kApp, shared, kEnclave,
                                       CapRights(CapRights::kShare), RevocationPolicy{});
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(engine_.HasUnit(kApp, ResourceKind::kCpuCore, 2));
  EXPECT_TRUE(engine_.HasUnit(kEnclave, ResourceKind::kCpuCore, 2));
}

TEST_F(EngineTest, ExclusiveOwnership) {
  const AddrRange sub{4 * kMiB, kMiB};
  EXPECT_TRUE(engine_.ExclusivelyOwned(kOs, sub));
  EXPECT_FALSE(engine_.ExclusivelyOwned(kApp, sub));
  CapEffects effects;
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW), CapRights{},
                               RevocationPolicy{}, &effects)
                  .ok());
  EXPECT_FALSE(engine_.ExclusivelyOwned(kOs, sub));
  EXPECT_FALSE(engine_.ExclusivelyOwned(kApp, sub));
  EXPECT_FALSE(engine_.ExclusivelyOwned(kOs, AddrRange{0, 0}));
}

TEST_F(EngineTest, MemoryViewReconstructsFigure4) {
  // Rebuild Figure 4's shape: confidential regions (count 1), a region
  // shared by two domains, and one visible to many.
  const AddrRange shared2{8 * kMiB, kMiB};
  const AddrRange shared4{16 * kMiB, kMiB};
  CapEffects effects;
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, shared2, Perms(Perms::kRW), CapRights{},
                               RevocationPolicy{}, &effects)
                  .ok());
  for (CapDomainId d : {kApp, kEnclave, 9u}) {
    if (d == 9u) {
      engine_.RegisterDomain(9, kOs);
    }
    ASSERT_TRUE(engine_
                    .ShareMemory(kOs, root_, d, shared4, Perms(Perms::kRead), CapRights{},
                                 RevocationPolicy{}, &effects)
                    .ok());
  }
  const auto view = engine_.MemoryView();
  // Find the regions and check counts.
  uint32_t count_shared2 = 0;
  uint32_t count_shared4 = 0;
  for (const RegionView& region : view) {
    if (region.range.Contains(shared2)) {
      count_shared2 = region.ref_count();
    }
    if (region.range.Contains(shared4)) {
      count_shared4 = region.ref_count();
    }
  }
  EXPECT_EQ(count_shared2, 2u);
  EXPECT_EQ(count_shared4, 4u);
}

TEST_F(EngineTest, DomainMemoryMapMergesAndSplits) {
  CapEffects effects;
  // Give kApp two adjacent regions with equal perms and one with different.
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, AddrRange{4 * kMiB, kMiB},
                               Perms(Perms::kRW), CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, AddrRange{5 * kMiB, kMiB},
                               Perms(Perms::kRW), CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, AddrRange{6 * kMiB, kMiB},
                               Perms(Perms::kRead), CapRights{}, RevocationPolicy{},
                               &effects)
                  .ok());
  const auto map = engine_.DomainMemoryMap(kApp);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map[0].range, (AddrRange{4 * kMiB, 2 * kMiB}));
  EXPECT_EQ(map[0].perms.mask, Perms::kRW);
  EXPECT_EQ(map[1].range, (AddrRange{6 * kMiB, kMiB}));
  EXPECT_EQ(map[1].perms.mask, Perms::kRead);
}

TEST_F(EngineTest, PurgeDomainRevokesEverything) {
  const AddrRange sub{4 * kMiB, kMiB};
  CapEffects effects;
  const CapId to_app =
      *engine_.ShareMemory(kOs, root_, kApp, sub, Perms(Perms::kRW),
                           CapRights(CapRights::kShare), RevocationPolicy{}, &effects);
  ASSERT_TRUE(engine_
                  .ShareMemory(kApp, to_app, kEnclave, sub, Perms(Perms::kRead),
                               CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  const auto outcome = engine_.PurgeDomain(kApp);
  ASSERT_TRUE(outcome.ok());
  // kApp's cap and its child in kEnclave are both gone.
  EXPECT_TRUE(engine_.EffectivePerms(kApp, 4 * kMiB).empty());
  EXPECT_TRUE(engine_.EffectivePerms(kEnclave, 4 * kMiB).empty());
  EXPECT_FALSE(engine_.IsRegistered(kApp));
  EXPECT_EQ(engine_.MemoryRefCount(sub), 1u);
}

TEST_F(EngineTest, DumpTreeShowsLineage) {
  CapEffects effects;
  ASSERT_TRUE(engine_
                  .ShareMemory(kOs, root_, kApp, AddrRange{4 * kMiB, kMiB},
                               Perms(Perms::kRW), CapRights{}, RevocationPolicy{}, &effects)
                  .ok());
  const std::string dump = engine_.DumpTree();
  EXPECT_NE(dump.find("cap#1"), std::string::npos);
  EXPECT_NE(dump.find("owner=1"), std::string::npos);
  EXPECT_NE(dump.find("active"), std::string::npos);
}

}  // namespace
}  // namespace tyche
