// Copyright 2026 The Tyche Reproduction Authors.
// Property tests: a randomized workload of share / grant / revoke operations
// is mirrored into an independent shadow model (a flat list of "who can
// access what"), and the engine's aggregate queries must agree with the
// shadow after every step. Lineage-structural invariants are checked too.

#include <gtest/gtest.h>

#include <map>

#include "src/capability/engine.h"
#include "src/support/prng.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kTotal = 64 * kMiB;
constexpr int kNumDomains = 6;

// Shadow model entry: an active capability as the spec describes it.
struct ShadowCap {
  CapDomainId owner;
  AddrRange range;
  Perms perms;
};

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, RandomWorkloadAgreesWithShadowModel) {
  Prng prng(GetParam());
  CapabilityEngine engine;
  for (CapDomainId d = 0; d < kNumDomains; ++d) {
    engine.RegisterDomain(d, d == 0 ? CapabilityEngine::kNoCreator : 0);
  }
  const CapId root = *engine.MintMemory(0, AddrRange{0, kTotal}, Perms(Perms::kRWX),
                                        CapRights(CapRights::kAll));

  std::map<CapId, ShadowCap> shadow;  // active caps only
  shadow[root] = ShadowCap{0, AddrRange{0, kTotal}, Perms(Perms::kRWX)};

  // Track lineage children for shadow revocation.
  std::map<CapId, std::vector<CapId>> children;

  auto shadow_revoke_subtree = [&](CapId id, auto&& self) -> void {
    shadow.erase(id);
    for (const CapId child : children[id]) {
      self(child, self);
    }
  };

  const int kSteps = 300;
  for (int step = 0; step < kSteps; ++step) {
    const int op = static_cast<int>(prng.Below(3));
    // Pick a random active cap.
    if (shadow.empty()) {
      break;
    }
    auto it = shadow.begin();
    std::advance(it, static_cast<long>(prng.Below(shadow.size())));
    const CapId src = it->first;
    const ShadowCap src_shadow = it->second;
    const CapDomainId dst = static_cast<CapDomainId>(prng.Below(kNumDomains));

    // Random page-aligned sub-range of the source.
    const uint64_t pages = src_shadow.range.size / kPageSize;
    const uint64_t off = prng.Below(pages) * kPageSize;
    const uint64_t len = (1 + prng.Below(pages - off / kPageSize)) * kPageSize;
    const AddrRange sub{src_shadow.range.base + off, len};
    const Perms perms = src_shadow.perms;

    if (op == 0) {
      CapEffects effects;
      const auto result = engine.ShareMemory(src_shadow.owner, src, dst, sub, perms,
                                             CapRights(CapRights::kAll), RevocationPolicy{},
                                             &effects);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      shadow[*result] = ShadowCap{dst, sub, perms};
      children[src].push_back(*result);
    } else if (op == 1) {
      const auto result = engine.GrantMemory(src_shadow.owner, src, dst, sub, perms,
                                             CapRights(CapRights::kAll), RevocationPolicy{});
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      shadow.erase(src);  // donated
      shadow[result->granted] = ShadowCap{dst, sub, perms};
      children[src].push_back(result->granted);
      for (const CapId rem : result->remainders) {
        shadow[rem] = ShadowCap{src_shadow.owner, (*engine.Get(rem))->range, perms};
        children[src].push_back(rem);
      }
    } else {
      // Owner drops the capability (always authorized).
      const auto result = engine.Revoke(src_shadow.owner, src);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      shadow_revoke_subtree(src, shadow_revoke_subtree);
      if (result->restored != kInvalidCap) {
        const Capability* restored = *engine.Get(result->restored);
        shadow[result->restored] =
            ShadowCap{restored->owner, restored->range, restored->perms};
        children[restored->parent].push_back(result->restored);
      }
    }

    // --- Invariant 1: active cap count agrees with shadow. ---
    ASSERT_EQ(engine.active_caps(), shadow.size()) << "step " << step;

    // --- Invariant 2: per-domain effective perms agree at sampled points.---
    for (int sample = 0; sample < 8; ++sample) {
      const uint64_t addr = prng.Below(kTotal);
      for (CapDomainId d = 0; d < kNumDomains; ++d) {
        uint8_t expected = Perms::kNone;
        for (const auto& [id, cap] : shadow) {
          if (cap.owner == d && cap.range.Contains(addr)) {
            expected |= cap.perms.mask;
          }
        }
        ASSERT_EQ(engine.EffectivePerms(d, addr).mask, expected)
            << "step " << step << " addr " << addr << " domain " << d;
      }
    }

    // --- Invariant 3: reference counts agree at sampled ranges. ---
    for (int sample = 0; sample < 4; ++sample) {
      const uint64_t base = AlignDown(prng.Below(kTotal), kPageSize);
      const AddrRange probe{base, kPageSize};
      std::set<CapDomainId> holders;
      for (const auto& [id, cap] : shadow) {
        if (cap.range.Overlaps(probe)) {
          holders.insert(cap.owner);
        }
      }
      ASSERT_EQ(engine.MemoryRefCount(probe), holders.size()) << "step " << step;
    }
  }

  // --- Invariant 4: lineage structure is consistent at the end. ---
  engine.ForEachActive([&](const Capability& cap) {
    if (cap.parent != kInvalidCap) {
      const auto parent = engine.Get(cap.parent);
      ASSERT_TRUE(parent.ok());
      // A memory child is always contained in its parent's range.
      if (cap.kind == ResourceKind::kMemory &&
          (*parent)->kind == ResourceKind::kMemory) {
        EXPECT_TRUE((*parent)->range.Contains(cap.range)) << cap.ToString();
      }
      // Parent must list this cap among its children.
      const auto& siblings = (*parent)->children;
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), cap.id), siblings.end());
    }
  });

  // --- Invariant 5: revoking everything leaves no active caps and every
  //     domain with zero access. ---
  for (CapDomainId d = 0; d < kNumDomains; ++d) {
    std::vector<CapId> to_revoke;
    engine.ForEachActive([&](const Capability& cap) {
      if (cap.owner == d) {
        to_revoke.push_back(cap.id);
      }
    });
    for (const CapId id : to_revoke) {
      const auto cap = engine.Get(id);
      if (cap.ok() && (*cap)->active() && (*cap)->origin != CapOrigin::kRestore) {
        (void)engine.Revoke(d, id);
      }
    }
  }
  // Restore caps created by revoking grants may remain; drop them too until
  // quiescent.
  for (int round = 0; round < 64 && engine.active_caps() > 0; ++round) {
    std::vector<std::pair<CapDomainId, CapId>> leftovers;
    engine.ForEachActive(
        [&](const Capability& cap) { leftovers.emplace_back(cap.owner, cap.id); });
    for (const auto& [owner, id] : leftovers) {
      (void)engine.Revoke(owner, id);
    }
  }
  EXPECT_EQ(engine.active_caps(), 0u);
  for (CapDomainId d = 0; d < kNumDomains; ++d) {
    EXPECT_TRUE(engine.EffectivePerms(d, 0).empty());
    EXPECT_TRUE(engine.DomainMemoryMap(d).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace tyche
